//! Sampling from the a-posteriori (forward–backward adapted) model.
//!
//! Section 5.2.3: "Once the transition matrices F^o(t) for each point of time
//! t have been computed, the actual sampling process is simple: For each
//! object o, each sampling iteration starts at the initial position θ_1 at
//! time t_1. Then, random transitions are performed, using F^o(t) until the
//! final observation of o is reached."
//!
//! Every draw needs exactly one pass over the covered interval and is, by
//! construction, consistent with all observations.

use rand::Rng;
use ust_markov::AdaptedModel;
use ust_trajectory::Trajectory;

/// Samples certain trajectories from an object's a-posteriori model.
#[derive(Debug, Clone)]
pub struct PosteriorSampler<'a> {
    model: &'a AdaptedModel,
}

impl<'a> PosteriorSampler<'a> {
    /// Creates a sampler over the given adapted model.
    pub fn new(model: &'a AdaptedModel) -> Self {
        PosteriorSampler { model }
    }

    /// The adapted model this sampler draws from.
    pub fn model(&self) -> &AdaptedModel {
        self.model
    }

    /// Draws one trajectory covering `[start, end]` of the adapted model.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Trajectory {
        let start = self.model.start();
        let mut states = Vec::with_capacity((self.model.end() - start) as usize + 1);
        self.walk(rng, &mut states);
        Trajectory::new(start, states)
    }

    /// Draws one trajectory *into* an existing buffer, reusing its state
    /// allocation. Consumes the RNG exactly like [`sample`](Self::sample), so
    /// a loop of `sample_into` calls produces bit-identical worlds to a loop
    /// of `sample` calls — just without one heap allocation per draw.
    pub fn sample_into<R: Rng>(&self, rng: &mut R, out: &mut Trajectory) {
        self.sample_prefix_into(rng, out, self.model.end());
    }

    /// Draws the trajectory prefix covering `[start, min(horizon, end)]` into
    /// an existing buffer.
    ///
    /// Every step of the chain consumes exactly one RNG draw *whether or not
    /// its transition is materialised*, so this method burns the draws of the
    /// steps past `horizon` without paying their row lookup and alias draw:
    /// the RNG stream — and therefore every subsequent
    /// object and world — stays bit-identical to a full
    /// [`sample_into`](Self::sample_into). A query engine whose last query
    /// timestamp is `horizon` reads identical states either way; the
    /// Monte-Carlo loop saves the tail of every walk.
    pub fn sample_prefix_into<R: Rng>(&self, rng: &mut R, out: &mut Trajectory, horizon: u32) {
        let start = self.model.start();
        let end = self.model.end();
        let keep_until = horizon.min(end);
        out.refill(start, |states| {
            states.reserve((keep_until.saturating_sub(start)) as usize + 1);
            let first = self.model.observations()[0].1;
            states.push(first);
            let mut current = first;
            for t in start..end {
                let u = rng.gen::<f64>();
                if t >= keep_until {
                    // Draw consumed, transition skipped: states past the
                    // horizon are never read.
                    continue;
                }
                // `rng.gen::<f64>()` yields u ∈ [0, 1) (53-bit mantissa over
                // 2⁻⁵³ steps), satisfying the alias kernel's contract.
                let next = self
                    .model
                    .sample_transition(t, current, u)
                    .expect("reachable states always have an adapted transition row");
                states.push(next);
                current = next;
            }
        });
    }

    /// The random walk of [`sample`](Self::sample).
    fn walk<R: Rng>(&self, rng: &mut R, states: &mut Vec<u32>) {
        let start = self.model.start();
        let end = self.model.end();
        let first = self.model.observations()[0].1;
        states.reserve((end - start) as usize + 1);
        states.push(first);
        let mut current = first;
        for t in start..end {
            let next = self
                .model
                .sample_transition(t, current, rng.gen::<f64>())
                .expect("reachable states always have an adapted transition row");
            states.push(next);
            current = next;
        }
    }

    /// Draws `n` independent trajectories.
    pub fn sample_many<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Trajectory> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rustc_hash::FxHashMap;
    use ust_markov::{CsrMatrix, MarkovModel};

    /// The Figure 1 chain of object o1: s2 -> {s1, s3}, s3 -> {s1, s3},
    /// s1 and s4 absorbing; states s1=0, s2=1, s3=2, s4=3.
    fn o1_model() -> MarkovModel {
        MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(3, 1.0)],
        ]))
    }

    #[test]
    fn samples_start_and_end_at_the_observations() {
        let model = o1_model();
        let adapted = AdaptedModel::build(&model, &[(1, 1), (3, 0)]).unwrap();
        let sampler = PosteriorSampler::new(&adapted);
        let mut rng = StdRng::seed_from_u64(0);
        for tr in sampler.sample_many(200, &mut rng) {
            assert_eq!(tr.start(), 1);
            assert_eq!(tr.end(), 3);
            assert_eq!(tr.state_at(1), Some(1));
            assert_eq!(tr.state_at(3), Some(0));
            assert!(tr.consistent_with(adapted.observations()));
        }
    }

    #[test]
    fn samples_pass_through_intermediate_observations() {
        let model = o1_model();
        let adapted = AdaptedModel::build(&model, &[(0, 1), (2, 2), (4, 0)]).unwrap();
        let sampler = PosteriorSampler::new(&adapted);
        let mut rng = StdRng::seed_from_u64(7);
        for tr in sampler.sample_many(100, &mut rng) {
            assert_eq!(tr.state_at(2), Some(2));
        }
    }

    #[test]
    fn empirical_frequencies_match_conditional_world_probabilities() {
        // o1 of Figure 1 observed only at t=1 (state s2). The three possible
        // trajectories and their probabilities are listed in the paper:
        // (s2,s1,s1) -> 0.5, (s2,s3,s1) -> 0.25, (s2,s3,s3) -> 0.25.
        let model = o1_model();
        let adapted = AdaptedModel::build(&model, &[(1, 1), (3, 0)]);
        // With an end observation at s1 the conditional probabilities change;
        // use only one observation via a trick: first and last are the same
        // single observation, so instead adapt over [1,1] -- horizon 0. To
        // exercise real sampling use the two-observation case and compare to
        // hand-computed conditional probabilities.
        let adapted = match adapted {
            Ok(a) => a,
            Err(e) => panic!("adaptation failed: {e}"),
        };
        // Given the final observation s1 at t=3, possible worlds are
        // (s2,s1,s1) with prior 0.5 and (s2,s3,s1) with prior 0.25; conditioned
        // probabilities are 2/3 and 1/3.
        let sampler = PosteriorSampler::new(&adapted);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 30_000;
        let mut counts: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for tr in sampler.sample_many(n, &mut rng) {
            *counts.entry(tr.states().to_vec()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 2, "exactly two possible worlds");
        let p_direct = counts.get(&vec![1, 0, 0]).copied().unwrap_or(0) as f64 / n as f64;
        let p_detour = counts.get(&vec![1, 2, 0]).copied().unwrap_or(0) as f64 / n as f64;
        assert!((p_direct - 2.0 / 3.0).abs() < 0.02, "p_direct = {p_direct}");
        assert!((p_detour - 1.0 / 3.0).abs() < 0.02, "p_detour = {p_detour}");
    }

    #[test]
    fn prefix_sampling_keeps_the_rng_stream_and_prefix_states_identical() {
        let model = o1_model();
        let adapted = AdaptedModel::build(&model, &[(0, 1), (2, 2), (6, 0)]).unwrap();
        let sampler = PosteriorSampler::new(&adapted);
        for horizon in [0u32, 1, 3, 6, 100] {
            let mut rng_full = StdRng::seed_from_u64(31);
            let mut rng_prefix = StdRng::seed_from_u64(31);
            let mut prefix = Trajectory::new(0, vec![0]);
            for _ in 0..50 {
                let full = sampler.sample(&mut rng_full);
                sampler.sample_prefix_into(&mut rng_prefix, &mut prefix, horizon);
                assert_eq!(prefix.start(), full.start());
                assert_eq!(prefix.end(), full.end().min(horizon.max(full.start())));
                for t in prefix.start()..=prefix.end() {
                    assert_eq!(prefix.state_at(t), full.state_at(t), "t={t} horizon={horizon}");
                }
            }
            // Both streams must have consumed the same number of draws.
            assert_eq!(rng_full.gen::<u64>(), rng_prefix.gen::<u64>());
        }
    }

    #[test]
    fn single_observation_model_yields_degenerate_trajectory() {
        let model = o1_model();
        let adapted = AdaptedModel::build(&model, &[(7, 2)]).unwrap();
        let sampler = PosteriorSampler::new(&adapted);
        let mut rng = StdRng::seed_from_u64(1);
        let tr = sampler.sample(&mut rng);
        assert_eq!(tr.start(), 7);
        assert_eq!(tr.end(), 7);
        assert_eq!(tr.state_at(7), Some(2));
    }
}
