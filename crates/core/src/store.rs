//! Cold-starting a query engine from an on-disk store, and growing that
//! store incrementally through the write-ahead log.
//!
//! [`QueryEngine`] borrows its database, so something has
//! to *own* the state a store file yields. That is [`EngineStore`]: it holds
//! the decoded database, the UST-tree behind an [`Arc`], and the adapted
//! models, and mints borrowing engines on demand. Every engine minted from
//! one store shares the same tree allocation (no per-engine rebuild or
//! clone), and its adaptation cache starts pre-warmed with the stored
//! models — the two expensive start-up phases the store exists to skip.
//!
//! ```no_run
//! use ust_core::{EngineConfig, EngineStore};
//!
//! let store = EngineStore::load("fig06.ustore")?;
//! let engine = store.engine(EngineConfig::default());
//! # Ok::<(), ust_persist::StoreError>(())
//! ```
//!
//! # Incremental ingest
//!
//! A file-backed store also accepts appends without rewriting the container:
//! [`EngineStore::append_batch`] durably logs one batch of observations to
//! the sidecar WAL (`<store>.wal`, see [`ust_persist::wal`]) *before*
//! applying it in memory, and [`EngineStore::checkpoint`] folds the log back
//! into a freshly written container (temp file + atomic rename) and drops
//! it. [`EngineStore::load`] replays whatever the log holds — truncating a
//! torn tail at the last valid frame — so a crash at any point recovers to
//! either the pre-batch or the post-batch state, never a third one. The
//! crash matrix in `crates/bench/tests/store_recovery.rs` proves exactly
//! that for every cataloged fault point.
//!
//! Appends invalidate derived state: the persisted UST-tree (engines minted
//! afterwards rebuild it over the grown database) and the adapted models of
//! every touched object (their observation history changed, so the cached
//! a-posteriori matrices are stale; untouched objects keep their models).

use crate::engine::{AdaptedModels, EngineConfig, QueryEngine};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use ust_index::UstTree;
use ust_persist::{wal, LoadedStore, StoreContents, StoreError, StoreStats, WalAppendStats};
use ust_trajectory::{ObjectId, Observation, TrajectoryDatabase};

/// What [`EngineStore::load`] replayed from the sidecar WAL (all zero when
/// no WAL was present).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplayStats {
    /// Valid frames replayed.
    pub frames: usize,
    /// Observations actually applied to the database.
    pub observations: usize,
    /// Observations skipped because the container already held them (the
    /// idempotent-replay rule: a checkpoint that crashed before truncating
    /// its WAL leaves frames behind that are already folded in).
    pub skipped_observations: usize,
    /// Bytes of torn tail truncated off the WAL during recovery.
    pub torn_bytes: u64,
    /// Valid WAL bytes after recovery (0 when no WAL was present).
    pub wal_bytes: u64,
}

/// An owning, ready-to-query view of a decoded store: the counterpart of
/// [`QueryEngine::save_store`](crate::QueryEngine::save_store).
#[derive(Debug)]
pub struct EngineStore {
    database: TrajectoryDatabase,
    index: Option<Arc<UstTree>>,
    models: AdaptedModels,
    stats: StoreStats,
    path: Option<PathBuf>,
    wal: WalReplayStats,
}

impl EngineStore {
    /// Reads, decodes and validates a store file, then replays its sidecar
    /// WAL (if one exists) into the database. A torn WAL tail is truncated
    /// at the last valid frame — on disk too, so subsequent appends land on
    /// a frame boundary. Corruption beyond a torn tail is a typed error.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let mut store = Self::from_loaded(ust_persist::read_store(path)?);
        store.path = Some(path.to_path_buf());
        store.replay_wal()?;
        Ok(store)
    }

    /// Decodes and validates a store from raw bytes. The result is not
    /// file-backed: [`Self::append_batch`] and [`Self::checkpoint`] return
    /// [`StoreError::NotFileBacked`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Ok(Self::from_loaded(ust_persist::decode_store(bytes)?))
    }

    fn from_loaded(loaded: LoadedStore) -> Self {
        EngineStore {
            database: loaded.database,
            index: loaded.index.map(Arc::new),
            models: loaded.models,
            stats: loaded.stats,
            path: None,
            wal: WalReplayStats::default(),
        }
    }

    /// Replays the sidecar WAL into the in-memory database and repairs a
    /// torn tail on disk. Called once from [`Self::load`].
    fn replay_wal(&mut self) -> Result<(), StoreError> {
        let Some(path) = self.path.clone() else { return Ok(()) };
        let wal_file = wal::wal_path(&path);
        let Some(contents) = wal::read_wal(&wal_file)? else { return Ok(()) };
        if contents.torn_bytes() > 0 {
            wal::repair_wal(&wal_file, contents.valid_len)?;
        }
        let mut stats = WalReplayStats {
            frames: contents.batches.len(),
            torn_bytes: contents.torn_bytes(),
            wal_bytes: contents.valid_len,
            ..WalReplayStats::default()
        };
        let mut touched: Vec<ObjectId> = Vec::new();
        for batch in &contents.batches {
            for (id, observations) in batch {
                let (applied, skipped) = replay_append(&mut self.database, *id, observations)?;
                stats.observations += applied;
                stats.skipped_observations += skipped;
                if applied > 0 {
                    touched.push(*id);
                }
            }
        }
        self.invalidate(&touched);
        self.wal = stats;
        Ok(())
    }

    /// Durably appends one batch of observations: the batch is validated
    /// against the current database, written to the WAL as one fsynced frame
    /// (the atomic unit), and only then applied in memory. Per entry, the
    /// observations extend the identified object's chronological tail — or
    /// create the object if the id is new. A rejected batch (typed error)
    /// leaves the log, the database and the derived state untouched.
    ///
    /// Appending invalidates the stored UST-tree and the adapted models of
    /// the touched objects (see the module docs); minted engines rebuild
    /// both lazily. [`Self::checkpoint`] folds the log back into the
    /// container once the batch stream quiets down.
    pub fn append_batch(
        &mut self,
        batch: &[(ObjectId, Vec<Observation>)],
    ) -> Result<WalAppendStats, StoreError> {
        let Some(path) = self.path.clone() else { return Err(StoreError::NotFileBacked) };
        self.validate_batch(batch)?;
        // Durability first: the frame hits the log (write + fsync) before
        // memory changes. A fault between the two is recovered by replay.
        let stats = wal::append_frame(&wal::wal_path(&path), batch)?;
        let mut touched: Vec<ObjectId> = Vec::with_capacity(batch.len());
        for (id, observations) in batch {
            // validate_batch proved every entry; a failure here would mean
            // the validation and application disagree — surface it as the
            // typed error rather than panicking.
            self.database
                .append_observations(*id, observations)
                .map_err(|_| StoreError::Malformed { context: "wal batch failed to apply" })?;
            touched.push(*id);
        }
        self.invalidate(&touched);
        Ok(stats)
    }

    /// Folds the WAL back into the container: rewrites the `.ustore` with
    /// the current state (staged temp file + fsync + atomic rename, see
    /// [`ust_persist::write_store`]), then removes the log. A fault after
    /// the rename but before the removal leaves a stale WAL whose frames the
    /// container already holds — harmless, because replay skips exact
    /// duplicates (and errs on any disagreement).
    pub fn checkpoint(&mut self) -> Result<StoreStats, StoreError> {
        let Some(path) = self.path.clone() else { return Err(StoreError::NotFileBacked) };
        let contents = StoreContents {
            database: &self.database,
            index: self.index.as_deref(),
            models: &self.models,
        };
        let written = ust_persist::write_store(&path, &contents)?;
        wal::truncate_wal(&wal::wal_path(&path))?;
        self.stats = written.clone();
        self.wal = WalReplayStats::default();
        Ok(written)
    }

    /// Validates a whole batch against the current database without touching
    /// it: every entry non-empty, every state inside the state space, every
    /// time strictly increasing — within the entry, past the object's stored
    /// tail, and past earlier entries of the same batch that touch the same
    /// object.
    fn validate_batch(&self, batch: &[(ObjectId, Vec<Observation>)]) -> Result<(), StoreError> {
        if batch.is_empty() {
            return Err(StoreError::Malformed { context: "wal frame with zero appends" });
        }
        let num_states = self.database.state_space().len();
        for (i, (id, observations)) in batch.iter().enumerate() {
            let Some(first) = observations.first() else {
                return Err(StoreError::Malformed { context: "wal append with zero observations" });
            };
            for w in observations.windows(2) {
                if let [a, b] = w {
                    if a.time >= b.time {
                        return Err(StoreError::Malformed {
                            context: "wal append times not strictly increasing",
                        });
                    }
                }
            }
            for o in observations {
                if (o.state as usize) >= num_states {
                    return Err(StoreError::Malformed { context: "wal append state out of range" });
                }
            }
            let prior_in_batch = batch
                .iter()
                .take(i)
                .filter(|(pid, _)| pid == id)
                .filter_map(|(_, obs)| obs.last().map(|o| o.time))
                .max();
            let stored = self.database.object(*id).map(|o| o.last_time());
            if let Some(last) = prior_in_batch.into_iter().chain(stored).max() {
                if first.time <= last {
                    return Err(StoreError::Malformed {
                        context: "appended observation time not after the object's last",
                    });
                }
            }
        }
        Ok(())
    }

    /// Drops derived state made stale by appends to `touched`: the persisted
    /// UST-tree (its diamonds no longer cover the grown trajectories) and
    /// the adapted models of exactly the touched objects.
    fn invalidate(&mut self, touched: &[ObjectId]) {
        if touched.is_empty() {
            return;
        }
        self.index = None;
        let mut ids: Vec<ObjectId> = touched.to_vec();
        ids.sort_unstable();
        ids.dedup();
        self.models.retain(|(id, _)| ids.binary_search(id).is_err());
    }

    /// The decoded trajectory database (with any WAL frames replayed).
    pub fn database(&self) -> &TrajectoryDatabase {
        &self.database
    }

    /// The decoded UST-tree, if the store carried one and no append has
    /// invalidated it. The `Arc` is the same allocation every minted engine
    /// shares.
    pub fn index(&self) -> Option<&Arc<UstTree>> {
        self.index.as_ref()
    }

    /// The decoded adapted models, sorted by object id (minus those dropped
    /// by appends to their objects).
    pub fn models(&self) -> &AdaptedModels {
        &self.models
    }

    /// Size, shape and load timing of the store this was decoded from (or
    /// last checkpointed to).
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// What [`Self::load`] replayed from the WAL, plus what
    /// [`Self::append_batch`] has since appended to it. Reset to zero by a
    /// successful [`Self::checkpoint`].
    pub fn wal_stats(&self) -> &WalReplayStats {
        &self.wal
    }

    /// The store file backing this instance (`None` when decoded from raw
    /// bytes via [`Self::from_bytes`]).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Mints a query engine over the stored state. If the store carries a
    /// UST-tree and `config.use_index` is set, the engine shares it (no
    /// rebuild); a tree-less store with `use_index` set falls back to
    /// building one, exactly like [`QueryEngine::new`]. The engine's
    /// adaptation cache starts pre-warmed with the stored models.
    pub fn engine(&self, config: EngineConfig) -> QueryEngine<'_> {
        let engine = match (&self.index, config.use_index) {
            (Some(tree), true) => QueryEngine::with_index(&self.database, tree.clone(), config),
            _ => QueryEngine::new(&self.database, config),
        };
        engine.preload_models(self.models.iter().cloned());
        engine
    }
}

/// Applies one replayed WAL entry to the database, idempotently: a leading
/// run of observations at or before the object's stored tail must match the
/// stored values exactly (the checkpoint already holds them — skipped), the
/// rest is appended. Any disagreement with the stored data, an out-of-range
/// state, or a tail the append API rejects is a typed error — a
/// checksum-valid frame that contradicts its own store is corruption, not a
/// torn write. Returns `(applied, skipped)` observation counts.
fn replay_append(
    db: &mut TrajectoryDatabase,
    id: ObjectId,
    observations: &[Observation],
) -> Result<(usize, usize), StoreError> {
    let num_states = db.state_space().len();
    for o in observations {
        if (o.state as usize) >= num_states {
            return Err(StoreError::Malformed { context: "wal append state out of range" });
        }
    }
    let skipped = match db.object(id) {
        Some(existing) => {
            let last = existing.last_time();
            let skipped = observations.partition_point(|o| o.time <= last);
            for o in observations.iter().take(skipped) {
                if existing.observed_state_at(o.time) != Some(o.state) {
                    return Err(StoreError::Malformed {
                        context: "wal frame disagrees with the stored database",
                    });
                }
            }
            skipped
        }
        None => 0,
    };
    let fresh = observations.get(skipped..).unwrap_or(&[]);
    if fresh.is_empty() {
        return Ok((0, skipped));
    }
    db.append_observations(id, fresh)
        .map_err(|_| StoreError::Malformed { context: "wal batch failed to apply" })?;
    Ok((fresh.len(), skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::{CsrMatrix, MarkovModel};
    use ust_spatial::{Point, StateSpace};
    use ust_trajectory::UncertainObject;

    fn tiny_database() -> TrajectoryDatabase {
        let space = StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let matrix = CsrMatrix::from_rows(vec![
            vec![(0, 0.5), (1, 0.5)],
            vec![(1, 0.25), (2, 0.75)],
            vec![(0, 1.0)],
        ]);
        let objects = vec![
            UncertainObject::from_pairs(7, vec![(0, 0), (2, 2), (5, 1)]).unwrap(),
            UncertainObject::from_pairs(9, vec![(1, 1), (3, 0)]).unwrap(),
        ];
        TrajectoryDatabase::with_objects(
            Arc::new(space),
            Arc::new(MarkovModel::homogeneous(matrix)),
            objects,
        )
    }

    fn temp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ust_core_store_{}_{tag}.ustore", std::process::id()))
    }

    fn write_tiny_store(path: &Path) {
        let db = tiny_database();
        let contents = StoreContents { database: &db, index: None, models: &[] };
        ust_persist::write_store(path, &contents).unwrap();
    }

    fn obs(pairs: &[(u32, u32)]) -> Vec<Observation> {
        pairs.iter().map(|&(t, s)| Observation::new(t, s)).collect()
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(wal::wal_path(path));
    }

    #[test]
    fn append_batch_logs_then_applies_and_reload_replays() {
        let path = temp_store("append");
        cleanup(&path);
        write_tiny_store(&path);

        let mut store = EngineStore::load(&path).unwrap();
        assert_eq!(store.wal_stats(), &WalReplayStats::default());
        let batch = vec![(7u32, obs(&[(6, 2), (8, 0)])), (21u32, obs(&[(1, 1)]))];
        let stats = store.append_batch(&batch).unwrap();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.observations, 3);
        assert!(wal::wal_path(&path).exists(), "the batch hit the log");
        assert_eq!(store.database().object(7).unwrap().last_time(), 8);
        assert_eq!(store.database().object(21).unwrap().first_time(), 1);

        // "Kill" the process: a fresh load replays the WAL into the same state.
        drop(store);
        let recovered = EngineStore::load(&path).unwrap();
        assert_eq!(recovered.wal_stats().frames, 1);
        assert_eq!(recovered.wal_stats().observations, 3);
        assert_eq!(recovered.wal_stats().skipped_observations, 0);
        assert_eq!(recovered.database().object(7).unwrap().last_time(), 8);
        assert_eq!(recovered.database().object(21).unwrap().first_time(), 1);
        assert_eq!(recovered.database().len(), 3);
        cleanup(&path);
    }

    #[test]
    fn rejected_batches_leave_log_and_memory_untouched() {
        let path = temp_store("reject");
        cleanup(&path);
        write_tiny_store(&path);
        let mut store = EngineStore::load(&path).unwrap();

        // Object 7's tail is t=5: an append at t=5 must be rejected.
        let err = store.append_batch(&[(7, obs(&[(5, 1)]))]).unwrap_err();
        assert!(matches!(err, StoreError::Malformed { .. }));
        // Batch-internal ordering across entries of the same object.
        let err = store
            .append_batch(&[(7, obs(&[(6, 1)])), (7, obs(&[(6, 2)]))])
            .unwrap_err();
        assert!(matches!(err, StoreError::Malformed { .. }));
        // Out-of-range state.
        let err = store.append_batch(&[(7, obs(&[(6, 99)]))]).unwrap_err();
        assert_eq!(err, StoreError::Malformed { context: "wal append state out of range" });
        // Empty batch and empty entry.
        assert!(store.append_batch(&[]).is_err());
        assert!(store.append_batch(&[(7, vec![])]).is_err());

        assert!(!wal::wal_path(&path).exists(), "no rejected batch reached the log");
        assert_eq!(store.database().object(7).unwrap().num_observations(), 3);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_folds_the_log_into_the_container() {
        let path = temp_store("checkpoint");
        cleanup(&path);
        write_tiny_store(&path);
        let mut store = EngineStore::load(&path).unwrap();
        store.append_batch(&[(9, obs(&[(10, 2)]))]).unwrap();
        let written = store.checkpoint().unwrap();
        assert!(written.bytes > 0);
        assert!(!wal::wal_path(&path).exists(), "a checkpoint retires the log");
        assert_eq!(store.wal_stats(), &WalReplayStats::default());

        let reloaded = EngineStore::load(&path).unwrap();
        assert_eq!(reloaded.database().object(9).unwrap().last_time(), 10);
        assert_eq!(reloaded.wal_stats().frames, 0);
        cleanup(&path);
    }

    #[test]
    fn stale_wal_replay_after_checkpoint_is_idempotent() {
        let path = temp_store("stale");
        cleanup(&path);
        write_tiny_store(&path);
        let mut store = EngineStore::load(&path).unwrap();
        store.append_batch(&[(7, obs(&[(6, 2), (9, 1)]))]).unwrap();

        // Simulate a checkpoint that crashed after the rename but before the
        // WAL removal: keep the log aside, checkpoint, put it back.
        let wal_file = wal::wal_path(&path);
        let stale = std::fs::read(&wal_file).unwrap();
        store.checkpoint().unwrap();
        std::fs::write(&wal_file, &stale).unwrap();

        let recovered = EngineStore::load(&path).unwrap();
        assert_eq!(recovered.wal_stats().frames, 1);
        assert_eq!(recovered.wal_stats().observations, 0, "everything already checkpointed");
        assert_eq!(recovered.wal_stats().skipped_observations, 2);
        assert_eq!(recovered.database().object(7).unwrap().num_observations(), 5);

        // A frame that *disagrees* with the store is corruption, not a skip.
        let mut bytes = ust_persist::wal::encode_wal_header();
        bytes.extend_from_slice(&ust_persist::wal::encode_frame(&[(7, obs(&[(6, 0)]))]));
        std::fs::write(&wal_file, &bytes).unwrap();
        let err = EngineStore::load(&path).unwrap_err();
        assert_eq!(
            err,
            StoreError::Malformed { context: "wal frame disagrees with the stored database" }
        );
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_truncated_on_load() {
        let path = temp_store("torn");
        cleanup(&path);
        write_tiny_store(&path);
        let mut store = EngineStore::load(&path).unwrap();
        store.append_batch(&[(7, obs(&[(6, 2)]))]).unwrap();
        store.append_batch(&[(9, obs(&[(11, 0)]))]).unwrap();
        drop(store);

        // Tear mid-way through the second frame.
        let wal_file = wal::wal_path(&path);
        let full = std::fs::read(&wal_file).unwrap();
        std::fs::write(&wal_file, &full[..full.len() - 2]).unwrap();

        let recovered = EngineStore::load(&path).unwrap();
        assert_eq!(recovered.wal_stats().frames, 1, "the torn frame is gone");
        assert_eq!(recovered.wal_stats().torn_bytes, full.len() as u64 - 2 - recovered.wal_stats().wal_bytes);
        assert_eq!(recovered.database().object(7).unwrap().last_time(), 6);
        assert_eq!(recovered.database().object(9).unwrap().last_time(), 3, "torn batch not applied");
        // The file itself was repaired: a second load sees a clean log.
        assert_eq!(
            std::fs::metadata(&wal_file).unwrap().len(),
            recovered.wal_stats().wal_bytes
        );
        let again = EngineStore::load(&path).unwrap();
        assert_eq!(again.wal_stats().torn_bytes, 0);
        cleanup(&path);
    }

    #[test]
    fn byte_backed_stores_reject_appends_and_checkpoints() {
        let db = tiny_database();
        let contents = StoreContents { database: &db, index: None, models: &[] };
        let bytes = ust_persist::encode_store(&contents);
        let mut store = EngineStore::from_bytes(&bytes).unwrap();
        assert_eq!(store.path(), None);
        assert_eq!(
            store.append_batch(&[(7, obs(&[(6, 1)]))]).unwrap_err(),
            StoreError::NotFileBacked
        );
        assert_eq!(store.checkpoint().unwrap_err(), StoreError::NotFileBacked);
    }
}
