//! Whole-store encoding, decoding and file I/O.
//!
//! A store is the magic/version header followed by checksummed sections (see
//! [`crate::format`]): the trajectory database (required), the built UST-tree
//! and the adapted-model cache (both optional). Sections may appear in any
//! order on disk; decoding always resolves the database first because the
//! tree and the models are validated against it.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::codec;
use crate::error::StoreError;
use crate::format::{fnv1a64, section, ByteReader, ByteWriter, FORMAT_VERSION, MAGIC};
use ust_index::UstTree;
use ust_markov::AdaptedModel;
use ust_trajectory::{ObjectId, TrajectoryDatabase};

/// Borrowed view of everything one store can hold. The database is required;
/// the index and the adapted models ride along when present (an empty model
/// slice writes no MODELS section at all).
#[derive(Debug, Clone, Copy)]
pub struct StoreContents<'a> {
    /// The trajectory database (state space, a-priori models, objects).
    pub database: &'a TrajectoryDatabase,
    /// The built UST-tree, if one should be persisted.
    pub index: Option<&'a UstTree>,
    /// Adapted models to persist, typically from
    /// `AdaptationCache::snapshot_models` — `(object id, model)` pairs.
    pub models: &'a [(ObjectId, Arc<AdaptedModel>)],
}

/// Size and shape of a store, plus the wall time of the operation that
/// produced these stats (decode/read time for loads, zero for writes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total container size in bytes.
    pub bytes: u64,
    /// Number of sections present.
    pub sections: usize,
    /// Objects in the database section.
    pub objects: usize,
    /// Diamonds in the tree section (0 if absent).
    pub diamonds: usize,
    /// Adapted models in the models section (0 if absent).
    pub models: usize,
    /// Wall time spent loading (decode plus file read, where applicable).
    pub load_time: Duration,
}

/// A fully decoded and validated store, ready to query.
#[derive(Debug)]
pub struct LoadedStore {
    /// The trajectory database.
    pub database: TrajectoryDatabase,
    /// The UST-tree, if the store carried one.
    pub index: Option<UstTree>,
    /// Adapted models, sorted by object id (empty if the store carried none).
    pub models: Vec<(ObjectId, Arc<AdaptedModel>)>,
    /// Size, shape and load timing.
    pub stats: StoreStats,
}

/// Encodes `contents` into the versioned, checksummed container format.
pub fn encode_store(contents: &StoreContents<'_>) -> Vec<u8> {
    let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(3);
    let mut sw = ByteWriter::new();
    codec::encode_database(&mut sw, contents.database);
    sections.push((section::DATABASE, sw.into_bytes()));
    if let Some(tree) = contents.index {
        let mut sw = ByteWriter::new();
        codec::encode_tree(&mut sw, tree);
        sections.push((section::TREE, sw.into_bytes()));
    }
    if !contents.models.is_empty() {
        let mut sw = ByteWriter::new();
        codec::encode_models(&mut sw, contents.models);
        sections.push((section::MODELS, sw.into_bytes()));
    }

    let mut w = ByteWriter::new();
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(sections.len() as u32);
    for (id, payload) in sections {
        w.u32(id);
        w.u64(payload.len() as u64);
        w.u64(fnv1a64(&payload));
        w.bytes(&payload);
    }
    w.into_bytes()
}

/// Decodes and validates a store from raw bytes.
///
/// Hostile input yields a typed [`StoreError`]; this function never panics
/// and never sizes an allocation from a length the input cannot back.
pub fn decode_store(bytes: &[u8]) -> Result<LoadedStore, StoreError> {
    let started = Instant::now();
    let mut r = ByteReader::new(bytes, "store header");
    if r.bytes(MAGIC.len())? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let section_count = r.u32()?;

    // Each frame consumes at least 20 bytes of input, so pushing per parsed
    // frame (instead of pre-allocating `section_count` slots) keeps a hostile
    // count from turning into a giant reservation.
    let mut frames: Vec<(u32, &[u8])> = Vec::new();
    for _ in 0..section_count {
        // Chaos hook: a torn read surfacing mid-container, after the header
        // already validated (see tests/chaos.rs at the workspace root).
        if let Some(message) = ust_fault::inject("persist.read.section") {
            return Err(StoreError::Io { message });
        }
        r.set_context("section frame");
        let id = r.u32()?;
        let length = r.u64()?;
        let checksum = r.u64()?;
        if !matches!(id, section::DATABASE | section::TREE | section::MODELS) {
            return Err(StoreError::UnknownSection { section: id });
        }
        if frames.iter().any(|&(seen, _)| seen == id) {
            return Err(StoreError::DuplicateSection { section: id });
        }
        if length > r.remaining() as u64 {
            return Err(StoreError::SectionOverflow { section: id, length });
        }
        let payload = r.bytes(length as usize)?;
        if fnv1a64(payload) != checksum {
            return Err(StoreError::ChecksumMismatch { section: id });
        }
        frames.push((id, payload));
    }
    r.expect_end("store container")?;

    let find = |id: u32| frames.iter().find(|&&(fid, _)| fid == id).map(|&(_, p)| p);
    let db_payload = find(section::DATABASE)
        .ok_or(StoreError::MissingSection { section: section::DATABASE })?;
    let mut dr = ByteReader::new(db_payload, "database section");
    let database = codec::decode_database(&mut dr)?;
    dr.expect_end("database section")?;

    let index = match find(section::TREE) {
        Some(payload) => {
            let mut tr = ByteReader::new(payload, "tree section");
            let tree = codec::decode_tree(&mut tr, &database)?;
            tr.expect_end("tree section")?;
            Some(tree)
        }
        None => None,
    };
    let models = match find(section::MODELS) {
        Some(payload) => {
            let mut mr = ByteReader::new(payload, "models section");
            let models = codec::decode_models(&mut mr, &database)?;
            mr.expect_end("models section")?;
            models
        }
        None => Vec::new(),
    };

    let stats = StoreStats {
        bytes: bytes.len() as u64,
        sections: frames.len(),
        objects: database.len(),
        diamonds: index.as_ref().map_or(0, UstTree::num_diamonds),
        models: models.len(),
        load_time: started.elapsed(),
    };
    Ok(LoadedStore { database, index, models, stats })
}

/// Upper bound on transparent retries of an I/O operation that failed with
/// [`std::io::ErrorKind::Interrupted`]. Signal-interrupted reads and writes
/// are transient by contract (the kernel made no progress), so retrying is
/// always safe; the bound keeps a pathological signal storm — or an armed
/// `persist.*.interrupted` fault with a large `times` — from looping forever.
const MAX_IO_RETRIES: usize = 8;

/// Runs `op`, transparently retrying up to [`MAX_IO_RETRIES`] times while it
/// fails with `ErrorKind::Interrupted`. `fault` names the injection point
/// that feeds synthetic interruptions into the same retry path the real
/// signal would take, so the chaos suite can prove both the absorb case
/// (few injections → `Ok`) and the exhaustion case (typed error, no hang).
fn retry_interrupted<T>(
    fault: &'static str,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut retries = 0usize;
    loop {
        let result = match ust_fault::inject(fault) {
            Some(message) => Err(std::io::Error::new(std::io::ErrorKind::Interrupted, message)),
            None => op(),
        };
        match result {
            Err(error)
                if error.kind() == std::io::ErrorKind::Interrupted
                    && retries < MAX_IO_RETRIES =>
            {
                retries += 1;
            }
            other => return other,
        }
    }
}

/// The temp-file sibling a store write stages its bytes in:
/// `fig08.ustore` → `fig08.ustore.tmp`.
fn tmp_write_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// The crash-safe body of [`write_store`]: stage the bytes in the temp file,
/// fsync, then atomically rename over the destination. Fault points:
/// `persist.write.interrupted` (feeds the temp write's retry loop),
/// `persist.write.sync` (before the fsync) and `persist.write.rename`
/// (before the rename). A failure at any step leaves a pre-existing store at
/// `path` untouched.
fn stage_sync_rename(tmp: &Path, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    retry_interrupted("persist.write.interrupted", || std::fs::write(tmp, bytes))?;
    if let Some(message) = ust_fault::inject("persist.write.sync") {
        return Err(StoreError::Io { message });
    }
    std::fs::File::open(tmp)?.sync_data()?;
    if let Some(message) = ust_fault::inject("persist.write.rename") {
        return Err(StoreError::Io { message });
    }
    std::fs::rename(tmp, path)?;
    Ok(())
}

/// Encodes `contents` and writes the store to `path` crash-safely: the bytes
/// are staged in a `<path>.tmp` sibling, fsynced and atomically renamed into
/// place, so a crash (or injected fault) at any point leaves either the old
/// store or the new one — never a truncated hybrid. Signal-interrupted
/// writes are retried (see `retry_interrupted`); other I/O failures surface
/// as [`StoreError::Io`], with the staging file best-effort removed.
pub fn write_store(
    path: impl AsRef<Path>,
    contents: &StoreContents<'_>,
) -> Result<StoreStats, StoreError> {
    let path = path.as_ref();
    let bytes = encode_store(contents);
    if let Some(message) = ust_fault::inject("persist.write.file") {
        return Err(StoreError::Io { message });
    }
    let tmp = tmp_write_path(path);
    let staged = stage_sync_rename(&tmp, path, &bytes);
    if staged.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    staged?;
    Ok(StoreStats {
        bytes: bytes.len() as u64,
        sections: 1
            + usize::from(contents.index.is_some())
            + usize::from(!contents.models.is_empty()),
        objects: contents.database.len(),
        diamonds: contents.index.map_or(0, UstTree::num_diamonds),
        models: contents.models.len(),
        load_time: Duration::ZERO,
    })
}

/// Reads, decodes and validates a store file. The returned
/// [`StoreStats::load_time`] covers the file read plus the decode.
/// Signal-interrupted reads are retried (see `retry_interrupted`); other
/// I/O failures surface as [`StoreError::Io`].
pub fn read_store(path: impl AsRef<Path>) -> Result<LoadedStore, StoreError> {
    let started = Instant::now();
    if let Some(message) = ust_fault::inject("persist.read.file") {
        return Err(StoreError::Io { message });
    }
    let bytes = retry_interrupted("persist.read.interrupted", || std::fs::read(&path))?;
    let mut loaded = decode_store(&bytes)?;
    loaded.stats.load_time = started.elapsed();
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::{CsrMatrix, MarkovModel};
    use ust_spatial::{Point, StateSpace};
    use ust_trajectory::UncertainObject;

    fn tiny_database() -> TrajectoryDatabase {
        let space = StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let matrix = CsrMatrix::from_rows(vec![
            vec![(0, 0.5), (1, 0.5)],
            vec![(1, 0.25), (2, 0.75)],
            vec![(0, 1.0)],
        ]);
        let objects = vec![
            UncertainObject::from_pairs(7, vec![(0, 0), (2, 2), (5, 1)]).unwrap(),
            UncertainObject::from_pairs(9, vec![(1, 1), (3, 0)]).unwrap(),
        ];
        let mut db = TrajectoryDatabase::with_objects(
            Arc::new(space),
            Arc::new(MarkovModel::homogeneous(matrix)),
            objects,
        );
        db.set_object_model(
            9,
            Arc::new(MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
                vec![(1, 1.0)],
                vec![(2, 1.0)],
                vec![(0, 1.0)],
            ]))),
        );
        db
    }

    #[test]
    fn database_only_store_roundtrips_to_identical_bytes() {
        let db = tiny_database();
        let contents = StoreContents { database: &db, index: None, models: &[] };
        let bytes = encode_store(&contents);
        let loaded = decode_store(&bytes).unwrap();
        assert!(loaded.index.is_none());
        assert!(loaded.models.is_empty());
        assert_eq!(loaded.stats.sections, 1);
        assert_eq!(loaded.stats.objects, 2);
        let again = encode_store(&StoreContents {
            database: &loaded.database,
            index: None,
            models: &[],
        });
        assert_eq!(bytes, again);
    }

    #[test]
    fn header_errors_are_typed() {
        assert_eq!(
            decode_store(b"USTST").unwrap_err(),
            StoreError::Truncated { context: "store header" }
        );
        assert_eq!(
            decode_store(b"NOTSTORE\x01\x00\x00\x00\x00\x00\x00\x00").unwrap_err(),
            StoreError::BadMagic
        );
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u32(FORMAT_VERSION + 41);
        w.u32(0);
        assert_eq!(
            decode_store(&w.into_bytes()).unwrap_err(),
            StoreError::UnsupportedVersion { found: FORMAT_VERSION + 41 }
        );
    }

    #[test]
    fn frame_errors_are_typed() {
        let db = tiny_database();
        let contents = StoreContents { database: &db, index: None, models: &[] };
        let good = encode_store(&contents);

        // A frame announcing more payload than the store holds.
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(1);
        w.u32(section::DATABASE);
        w.u64(u64::MAX / 2);
        w.u64(0);
        assert_eq!(
            decode_store(&w.into_bytes()).unwrap_err(),
            StoreError::SectionOverflow { section: section::DATABASE, length: u64::MAX / 2 }
        );

        // A flipped payload bit fails the checksum.
        let mut corrupt = good.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert_eq!(
            decode_store(&corrupt).unwrap_err(),
            StoreError::ChecksumMismatch { section: section::DATABASE }
        );

        // Trailing garbage after the last section.
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            decode_store(&trailing).unwrap_err(),
            StoreError::Malformed { context: "store container" }
        );

        // A store with zero sections is missing its database.
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(0);
        assert_eq!(
            decode_store(&w.into_bytes()).unwrap_err(),
            StoreError::MissingSection { section: section::DATABASE }
        );
    }

    #[test]
    fn file_roundtrip_reports_stats() {
        let db = tiny_database();
        let contents = StoreContents { database: &db, index: None, models: &[] };
        let dir = std::env::temp_dir();
        let path = dir.join("ust_persist_store_unit_test.ustore");
        let written = write_store(&path, &contents).unwrap();
        assert!(written.bytes > 0);
        assert_eq!(written.sections, 1);
        let loaded = read_store(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.stats.bytes, written.bytes);
        assert_eq!(loaded.stats.objects, 2);
        assert!(loaded.stats.load_time > Duration::ZERO);
    }

    #[test]
    fn write_stages_through_a_temp_file_and_replaces_atomically() {
        let db = tiny_database();
        let contents = StoreContents { database: &db, index: None, models: &[] };
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ust_persist_atomic_{}.ustore", std::process::id()));
        let tmp = tmp_write_path(&path);
        write_store(&path, &contents).unwrap();
        assert!(!tmp.exists(), "the staging file is renamed away on success");
        let first = std::fs::read(&path).unwrap();
        // Overwriting an existing store goes through the same staged path.
        write_store(&path, &contents).unwrap();
        assert!(!tmp.exists());
        assert_eq!(std::fs::read(&path).unwrap(), first, "canonical encode is byte-stable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_store("/nonexistent/ust-persist-test.ustore").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }
}
