//! Spatial pruning with `dmin`/`dmax` bounds (Section 6).
//!
//! For a query `q` with timestamps `T`, pruning classifies database objects:
//!
//! * **Candidates** `C∀(q)`: objects that can possibly be the nearest neighbor
//!   of `q` at *every* timestamp of `T`,
//!   `C∀(q) = {o | ∀t ∈ T: dmin(o(t), q(t)) ≤ min_{o'} dmax(o'(t), q(t))}`.
//! * **Influence objects** `I∀(q)`: objects that can possibly be the nearest
//!   neighbor at *some* timestamp; these may reduce the probabilities of
//!   candidates (and are the refinement set of the P∃NN query),
//!   `I∀(q) = {o | ∃t ∈ T: dmin(o(t), q(t)) ≤ min_{o'} dmax(o'(t), q(t))}`.
//!
//! Objects that are not alive (have no observation segment) at a timestamp
//! neither prune nor qualify at that timestamp; objects that are not alive at
//! *every* timestamp cannot be ∀-candidates.

use crate::{ObjectId, Timestamp};
use rustc_hash::FxHashMap;

/// Outcome of the UST-tree filter step for one query.
#[derive(Debug, Clone)]
pub struct PruningResult {
    /// The query timestamps (ascending) the pruning was computed for.
    pub times: Vec<Timestamp>,
    /// Objects that may be the NN at every timestamp (`C∀(q)`).
    pub candidates: Vec<ObjectId>,
    /// Objects that may be the NN at some timestamp (`I∀(q)`), a superset of
    /// `candidates`.
    pub influencers: Vec<ObjectId>,
    /// Per timestamp, the pruning distance `min_o dmax(o(t), q(t))`
    /// (`f64::INFINITY` where no object is alive).
    pub prune_distances: Vec<f64>,
}

impl PruningResult {
    /// Number of ∀-candidates, `|C(q)|` in the figures of the paper.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of influence objects, `|I(q)|` in the figures of the paper.
    pub fn num_influencers(&self) -> usize {
        self.influencers.len()
    }

    /// Whether an object survived as a ∀-candidate.
    pub fn is_candidate(&self, id: ObjectId) -> bool {
        self.candidates.contains(&id)
    }

    /// Whether an object survived as an influence object.
    pub fn is_influencer(&self, id: ObjectId) -> bool {
        self.influencers.contains(&id)
    }
}

/// Sentinel for "object not alive at this query timestamp": no real record
/// can produce it, since distances are non-negative (`dmin ≥ 0 > -∞`).
const ABSENT: (f64, f64) = (f64::NEG_INFINITY, f64::INFINITY);

/// Per-object distance bounds collected from the index, used to evaluate the
/// pruning predicates.
///
/// Bounds live in one flat arena `bounds[slot * num_times + time_idx]`
/// indexed by a per-query object-slot interner, so the filter hot loop
/// (one entry per diamond per covered timestamp) costs a vector write
/// instead of a hash lookup. Slots are handed out in first-touch order —
/// the deterministic R\*-tree streaming order — and the evaluated
/// candidate/influence sets are sorted by object id, so results are
/// independent of the interning order.
#[derive(Debug, Default)]
pub(crate) struct BoundsTable {
    /// Object id → arena slot, interned once per diamond (not per timestamp).
    slot_of: FxHashMap<ObjectId, u32>,
    /// Arena slot → object id.
    objects: Vec<ObjectId>,
    /// `num_times` bounds per slot; [`ABSENT`] where the object has none.
    bounds: Vec<(f64, f64)>,
    num_times: usize,
}

impl BoundsTable {
    pub(crate) fn new(num_times: usize) -> Self {
        BoundsTable {
            slot_of: FxHashMap::default(),
            objects: Vec::new(),
            bounds: Vec::new(),
            num_times,
        }
    }

    /// Interns an object into its arena slot (one hash lookup per *diamond*;
    /// the per-timestamp records then index the arena directly).
    pub(crate) fn slot(&mut self, object: ObjectId) -> u32 {
        match self.slot_of.entry(object) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = self.objects.len() as u32;
                e.insert(slot);
                self.objects.push(object);
                self.bounds.extend(std::iter::repeat_n(ABSENT, self.num_times));
                slot
            }
        }
    }

    /// Records bounds for `(slot, time index)`. If the slot already has
    /// bounds at that index (e.g. two adjacent segments sharing an observation
    /// timestamp), the tighter bounds are kept — which is also what turns the
    /// [`ABSENT`] sentinel into the recorded bounds on first touch.
    #[inline]
    pub(crate) fn record_at(&mut self, slot: u32, time_idx: usize, dmin: f64, dmax: f64) {
        let b = &mut self.bounds[slot as usize * self.num_times + time_idx];
        b.0 = b.0.max(dmin);
        b.1 = b.1.min(dmax);
    }

    /// [`Self::slot`] + [`Self::record_at`] in one call, for callers (tests,
    /// the brute-force reference) that do not batch per object.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn record(&mut self, object: ObjectId, time_idx: usize, dmin: f64, dmax: f64) {
        let slot = self.slot(object);
        self.record_at(slot, time_idx, dmin, dmax);
    }

    /// Evaluates the pruning predicates for 1-NN queries.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn evaluate(&self, times: &[Timestamp]) -> PruningResult {
        self.evaluate_knn(times, 1)
    }

    /// Evaluates the pruning predicates for k-NN queries: the pruning distance
    /// at every timestamp is the k-th smallest `dmax` (an object can only be
    /// part of the k-NN set if its `dmin` does not exceed it), selected in
    /// `O(n)` via `select_nth_unstable` instead of a full sort.
    pub(crate) fn evaluate_knn(&self, times: &[Timestamp], k: usize) -> PruningResult {
        if self.num_times == 0 {
            return PruningResult {
                times: Vec::new(),
                candidates: Vec::new(),
                influencers: Vec::new(),
                prune_distances: Vec::new(),
            };
        }
        let k = k.max(1);
        let mut prune_distances = vec![f64::INFINITY; self.num_times];
        let mut column: Vec<f64> = Vec::with_capacity(self.objects.len());
        for (i, prune) in prune_distances.iter_mut().enumerate() {
            column.clear();
            column.extend(
                self.bounds
                    .iter()
                    .skip(i)
                    .step_by(self.num_times)
                    .filter(|b| b.0 >= 0.0)
                    .map(|b| b.1),
            );
            if column.is_empty() {
                continue;
            }
            let nth = (k - 1).min(column.len() - 1);
            column.select_nth_unstable_by(nth, f64::total_cmp);
            *prune = column[nth];
        }
        let mut candidates = Vec::new();
        let mut influencers = Vec::new();
        for (slot, &object) in self.objects.iter().enumerate() {
            let row = &self.bounds[slot * self.num_times..(slot + 1) * self.num_times];
            let mut qualifies_everywhere = true;
            let mut qualifies_somewhere = false;
            for (i, b) in row.iter().enumerate() {
                if b.0 >= 0.0 && b.0 <= prune_distances[i] {
                    qualifies_somewhere = true;
                } else {
                    qualifies_everywhere = false;
                }
            }
            if qualifies_somewhere {
                influencers.push(object);
                if qualifies_everywhere {
                    candidates.push(object);
                }
            }
        }
        candidates.sort_unstable();
        influencers.sort_unstable();
        PruningResult { times: times.to_vec(), candidates, influencers, prune_distances }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_requires_qualification_at_every_time() {
        let times = vec![10, 11, 12];
        let mut table = BoundsTable::new(3);
        // Object 1: close at every time.
        for i in 0..3 {
            table.record(1, i, 0.0, 1.0);
        }
        // Object 2: close at time 0 only, far otherwise.
        table.record(2, 0, 0.5, 2.0);
        table.record(2, 1, 5.0, 6.0);
        table.record(2, 2, 5.0, 6.0);
        // Object 3: always far.
        for i in 0..3 {
            table.record(3, i, 10.0, 11.0);
        }
        let result = table.evaluate(&times);
        assert_eq!(result.candidates, vec![1]);
        assert_eq!(result.influencers, vec![1, 2]);
        assert!(result.is_candidate(1));
        assert!(!result.is_candidate(2));
        assert!(result.is_influencer(2));
        assert!(!result.is_influencer(3));
        assert_eq!(result.num_candidates(), 1);
        assert_eq!(result.num_influencers(), 2);
        // Pruning distances are the minima of the dmax values.
        assert_eq!(result.prune_distances, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn objects_missing_a_timestamp_cannot_be_candidates() {
        let times = vec![0, 1];
        let mut table = BoundsTable::new(2);
        table.record(1, 0, 0.0, 1.0);
        // Object 1 has no bounds at time 1 (not alive there).
        table.record(2, 0, 0.2, 3.0);
        table.record(2, 1, 0.2, 3.0);
        let result = table.evaluate(&times);
        assert_eq!(result.candidates, vec![2]);
        let mut inf = result.influencers.clone();
        inf.sort_unstable();
        assert_eq!(inf, vec![1, 2]);
    }

    #[test]
    fn tie_on_the_pruning_distance_keeps_both_objects() {
        let times = vec![0];
        let mut table = BoundsTable::new(1);
        table.record(1, 0, 1.0, 1.0);
        table.record(2, 0, 1.0, 1.0);
        let result = table.evaluate(&times);
        assert_eq!(result.candidates, vec![1, 2]);
    }

    #[test]
    fn overlapping_segment_bounds_are_tightened() {
        let mut table = BoundsTable::new(1);
        table.record(1, 0, 0.0, 5.0);
        table.record(1, 0, 1.0, 3.0);
        let result = table.evaluate(&[7]);
        assert_eq!(result.prune_distances, vec![3.0]);
    }

    #[test]
    fn empty_table_prunes_everything() {
        let table = BoundsTable::new(2);
        let result = table.evaluate(&[0, 1]);
        assert!(result.candidates.is_empty());
        assert!(result.influencers.is_empty());
        assert!(result.prune_distances.iter().all(|d| d.is_infinite()));
    }
}
