//! Shared workload builder for the persist integration tests: a seeded,
//! fully deterministic database + UST-tree + adapted-model triple, built
//! from the crate's own dependencies (no generator crate involved).

// Each integration-test binary compiles its own copy of this module and not
// all of them touch every helper.
#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ust_index::{UstTree, UstTreeConfig};
use ust_markov::{AdaptedModel, CsrMatrix, MarkovModel};
use ust_spatial::{Point, StateId, StateSpace};
use ust_trajectory::{ObjectId, Timestamp, TrajectoryDatabase, UncertainObject};

/// A complete store workload.
pub struct Workload {
    pub db: TrajectoryDatabase,
    pub tree: UstTree,
    pub models: Vec<(ObjectId, Arc<AdaptedModel>)>,
}

/// Builds a strongly connected sparse chain over `num_states` grid states:
/// every state keeps a self-loop, an edge to its ring successor and one
/// seeded extra edge, so random walks always have somewhere to go and the
/// forward–backward adaptation of walk observations cannot hit a
/// contradiction.
fn chain(num_states: usize, rng: &mut StdRng) -> CsrMatrix {
    let rows: Vec<Vec<(StateId, f64)>> = (0..num_states)
        .map(|i| {
            let succ = ((i + 1) % num_states) as StateId;
            let extra = rng.gen_range(0..num_states) as StateId;
            let mut row = vec![(i as StateId, 0.2), (succ, 0.5), (extra, 0.3)];
            row.sort_unstable_by_key(|&(s, _)| s);
            row.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            row
        })
        .collect();
    CsrMatrix::from_rows(rows)
}

/// A copy of `matrix` with the same support but freshly seeded positive
/// weights. Used as a per-object model override: sharing the support keeps
/// every walk of the original chain realizable under the override, so
/// adaptation still succeeds.
fn perturb(matrix: &CsrMatrix, rng: &mut StdRng) -> CsrMatrix {
    let rows: Vec<Vec<(StateId, f64)>> = (0..matrix.num_states())
        .map(|i| {
            let (cols, _) = matrix.row(i as StateId);
            cols.iter().map(|&c| (c, rng.gen_range(0.1f64..1.0))).collect()
        })
        .collect();
    CsrMatrix::from_rows(rows)
}

/// Walks the chain from a random start, recording every `gap`-th state as an
/// observation — observations lie on a realizable path, so adaptation always
/// succeeds.
fn walk(
    matrix: &CsrMatrix,
    rng: &mut StdRng,
    num_obs: usize,
    gap: u32,
) -> Vec<(Timestamp, StateId)> {
    let mut state = rng.gen_range(0..matrix.num_states()) as StateId;
    let mut t: Timestamp = rng.gen_range(0u32..5);
    let mut obs = Vec::with_capacity(num_obs);
    obs.push((t, state));
    for _ in 1..num_obs {
        for _ in 0..gap {
            let (cols, _) = matrix.row(state);
            state = cols[rng.gen_range(0..cols.len())];
        }
        t += gap;
        obs.push((t, state));
    }
    obs
}

/// Builds a deterministic workload: `num_objects` random walks over a
/// `num_states`-state chain, the UST-tree over them (per-timestamp MBRs
/// toggled by the seed's parity, serial build for machine-independent
/// stats), adapted models for the first half of the objects, and one
/// per-object a-priori model override.
pub fn build_workload(
    num_states: usize,
    num_objects: usize,
    obs_per_object: usize,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (num_states as f64).sqrt().ceil() as usize;
    let positions: Vec<Point> = (0..num_states)
        .map(|i| Point::new((i % side) as f64, (i / side) as f64))
        .collect();
    let space = Arc::new(StateSpace::from_points(positions));
    let matrix = chain(num_states, &mut rng);
    let shared = Arc::new(MarkovModel::homogeneous(matrix.clone()));

    let objects: Vec<UncertainObject> = (0..num_objects)
        .map(|i| {
            let pairs = walk(&matrix, &mut rng, obs_per_object, 1 + (i as u32 % 3));
            UncertainObject::from_pairs(i as ObjectId * 3 + 1, pairs).expect("walks are valid")
        })
        .collect();
    let ids: Vec<ObjectId> = objects.iter().map(|o| o.id()).collect();
    let mut db = TrajectoryDatabase::with_objects(space, shared, objects);
    db.set_object_model(ids[0], Arc::new(MarkovModel::homogeneous(perturb(&matrix, &mut rng))));

    let cfg = UstTreeConfig {
        per_timestamp_mbrs: seed.is_multiple_of(2),
        build_threads: 1,
        ..Default::default()
    };
    let tree = UstTree::build_with(&db, &cfg);

    let models: Vec<(ObjectId, Arc<AdaptedModel>)> = ids
        .iter()
        .take(num_objects.div_ceil(2))
        .map(|&id| {
            let pairs = db.object(id).expect("just inserted").observation_pairs();
            let model = AdaptedModel::build(db.model_for(id).as_ref(), &pairs)
                .expect("walk observations adapt cleanly");
            (id, Arc::new(model))
        })
        .collect();

    Workload { db, tree, models }
}
