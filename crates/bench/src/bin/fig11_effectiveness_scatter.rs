//! Figure 11: precision of the probability estimates.
//!
//! The sampling approach of the paper (SA) and the snapshot competitor of \[19\]
//! (SS) are compared against a high-budget reference (REF). The paper shows SA
//! hugging the diagonal of the scatter plot while SS systematically
//! underestimates P∀NN and overestimates P∃NN. The harness prints the scatter
//! points followed by summary rows with the mean signed bias and mean absolute
//! error of both estimators.

use ust_bench::datasets::{build_synthetic, ScaleParams};
use ust_bench::effectiveness::{measure_estimate_precision, ScatterOutcome};
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};
use ust_generator::{QueryWorkload, QueryWorkloadConfig};

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig11_effectiveness_scatter");
    settings.reject_store_flag("fig11_effectiveness_scatter");
    settings.reject_wal_flags("fig11_effectiveness_scatter");
    settings.reject_deadline_flag("fig11_effectiveness_scatter");
    let mut params = ScaleParams::for_scale(settings.scale);
    // The paper uses v = 0.2 and |T| = 5 for this experiment.
    params.lag = 0.2;
    params.interval_len = 5;
    let (sa_samples, ref_samples, num_objects, num_queries) = match settings.scale {
        RunScale::Quick => (200, 1_000, 50, 3),
        RunScale::Default => (2_000, 20_000, 200, 5),
        RunScale::Paper => (10_000, 100_000, 1_000, 10),
    };
    let dataset = build_synthetic(&params, params.num_states, params.branching, num_objects, settings.seed);
    let queries = QueryWorkload::generate_covered(
        &dataset.network,
        &dataset.database,
        &QueryWorkloadConfig {
            num_queries,
            interval_length: params.interval_len,
            horizon: params.horizon,
            seed: settings.seed.wrapping_add(3),
        },
        2,
    );
    let outcome = measure_estimate_precision(&dataset, &queries, sa_samples, ref_samples, settings.seed);

    let mut report = ExperimentReport::new(
        "figure11_effectiveness_scatter",
        "Estimated vs. reference probabilities for P∀NN and P∃NN \
         (paper: Figure 11; SA = this paper's sampling, SS = snapshot competitor [19], \
         REF = high-budget sampling reference)",
    );
    for p in &outcome.forall {
        report.push(
            Row::new(format!("forall q{} o{}", p.query, p.object))
                .with("REF", p.reference)
                .with("SA", p.sampled)
                .with("SS", p.snapshot),
        );
    }
    for p in &outcome.exists {
        report.push(
            Row::new(format!("exists q{} o{}", p.query, p.object))
                .with("REF", p.reference)
                .with("SA", p.sampled)
                .with("SS", p.snapshot),
        );
    }
    report.push(
        Row::new("summary forall bias")
            .with("SA", ScatterOutcome::mean_bias(&outcome.forall, false))
            .with("SS", ScatterOutcome::mean_bias(&outcome.forall, true))
            .with("points", outcome.forall.len() as f64),
    );
    report.push(
        Row::new("summary exists bias")
            .with("SA", ScatterOutcome::mean_bias(&outcome.exists, false))
            .with("SS", ScatterOutcome::mean_bias(&outcome.exists, true))
            .with("points", outcome.exists.len() as f64),
    );
    report.push(
        Row::new("summary forall mean abs error")
            .with("SA", ScatterOutcome::mean_abs_error(&outcome.forall, false))
            .with("SS", ScatterOutcome::mean_abs_error(&outcome.forall, true))
            .with("points", outcome.forall.len() as f64),
    );
    report.push(
        Row::new("summary exists mean abs error")
            .with("SA", ScatterOutcome::mean_abs_error(&outcome.exists, false))
            .with("SS", ScatterOutcome::mean_abs_error(&outcome.exists, true))
            .with("points", outcome.exists.len() as f64),
    );
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
