//! D001 negative fixture: hash iteration reaching output with no sort.
//! Findings pinned by `tests/rules_fixtures.rs` — keep line numbers stable.

fn emit_in_hash_order(input: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
    for &(k, v) in input {
        *acc.entry(k).or_insert(0.0) += v;
    }
    let mut out = Vec::new();
    for (k, v) in acc.iter() {
        out.push((*k, *v));
    }
    out
}

fn sum_in_hash_order(weights: FxHashSet<u64>) -> u64 {
    weights.into_iter().sum()
}
