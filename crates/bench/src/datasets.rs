//! Scaled dataset construction shared by the figure binaries.
//!
//! The paper's default setting is `|S| = 100 000`, `b = 8`, `|D| = 10 000`,
//! object lifetime 100 over a horizon of 1 000 timestamps, 11 observations per
//! object and 10 000 sampled worlds per query. Those sizes are reproducible
//! with `--paper-scale` but take long on a development machine; the default
//! and quick scales shrink every cardinality while keeping all ratios (object
//! density, observations per object, interval length) intact, so the
//! qualitative behaviour of every figure is preserved.

use crate::args::RunScale;
use ust_generator::{
    Dataset, ObjectWorkloadConfig, QueryWorkload, QueryWorkloadConfig, RoadNetworkConfig,
    SyntheticNetworkConfig, TaxiWorkloadConfig,
};

/// All size parameters of one experimental configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScaleParams {
    /// Number of states of the synthetic state space.
    pub num_states: usize,
    /// Average branching factor.
    pub branching: f64,
    /// Number of database objects.
    pub num_objects: usize,
    /// Number of sampled possible worlds per query.
    pub num_samples: usize,
    /// Number of queries to average over.
    pub num_queries: usize,
    /// Query interval length `|T|`.
    pub interval_len: u32,
    /// Database time horizon.
    pub horizon: u32,
    /// Object lifetime.
    pub lifetime: u32,
    /// Time between observations.
    pub observation_interval: u32,
    /// Lag parameter `v`.
    pub lag: f64,
    /// Road-network grid side length for the simulated taxi data.
    pub taxi_grid: usize,
}

impl ScaleParams {
    /// Parameters for the given scale.
    pub fn for_scale(scale: RunScale) -> Self {
        match scale {
            RunScale::Quick => ScaleParams {
                num_states: 2_000,
                branching: 8.0,
                num_objects: 100,
                num_samples: 200,
                num_queries: 3,
                interval_len: 10,
                horizon: 300,
                lifetime: 50,
                observation_interval: 10,
                lag: 0.5,
                taxi_grid: 30,
            },
            RunScale::Default => ScaleParams {
                num_states: 10_000,
                branching: 8.0,
                num_objects: 1_000,
                num_samples: 2_000,
                num_queries: 5,
                interval_len: 10,
                horizon: 1_000,
                lifetime: 100,
                observation_interval: 10,
                lag: 0.5,
                taxi_grid: 80,
            },
            RunScale::Paper => ScaleParams {
                num_states: 100_000,
                branching: 8.0,
                num_objects: 10_000,
                num_samples: 10_000,
                num_queries: 10,
                interval_len: 10,
                horizon: 1_000,
                lifetime: 100,
                observation_interval: 10,
                lag: 0.5,
                taxi_grid: 200,
            },
        }
    }

    /// The index-build stress target per scale as `(num_states, num_objects)`:
    /// the *maxima* of the paper's fig06/fig08 sweep axes rather than the
    /// mid-point defaults above, because the UST-tree build is what gates
    /// reaching those sweeps' end points. At paper scale this is the full
    /// 500k-state / 20k-object workload of the paper's experiments.
    pub fn index_build_target(scale: RunScale) -> (usize, usize) {
        match scale {
            RunScale::Quick => (4_000, 200),
            RunScale::Default => (50_000, 4_000),
            RunScale::Paper => (500_000, 20_000),
        }
    }
}

/// Builds a synthetic dataset with explicit overrides of the state-space size,
/// branching factor and object count (the swept parameters of Figures 6-8).
pub fn build_synthetic(
    params: &ScaleParams,
    num_states: usize,
    branching: f64,
    num_objects: usize,
    seed: u64,
) -> Dataset {
    let net = SyntheticNetworkConfig { num_states, branching_factor: branching, seed };
    let obj = ObjectWorkloadConfig {
        num_objects,
        lifetime: params.lifetime,
        horizon: params.horizon,
        observation_interval: params.observation_interval,
        lag: params.lag,
        standing_fraction: 0.0,
        seed: seed.wrapping_add(1),
    };
    Dataset::synthetic(&net, &obj, 1.0)
}

/// Builds the simulated taxi dataset (Figures 9 and 12).
pub fn build_taxi(params: &ScaleParams, num_objects: usize, seed: u64) -> Dataset {
    let road = RoadNetworkConfig {
        grid_width: params.taxi_grid,
        grid_height: params.taxi_grid,
        seed,
        ..Default::default()
    };
    let taxi = TaxiWorkloadConfig {
        num_objects,
        lifetime: params.lifetime,
        horizon: params.horizon,
        observation_interval: 8,
        lag: params.lag,
        standing_fraction: 0.1,
        training_trips: (num_objects * 2).max(500),
        center_bias: 2.0,
        smoothing: 0.05,
        seed: seed.wrapping_add(2),
    };
    Dataset::taxi(&road, &taxi)
}

/// Generates the query workload used by the efficiency experiments.
pub fn build_queries(dataset: &Dataset, params: &ScaleParams, seed: u64) -> QueryWorkload {
    let cfg = QueryWorkloadConfig {
        num_queries: params.num_queries,
        interval_length: params.interval_len,
        horizon: params.horizon,
        seed: seed.wrapping_add(3),
    };
    QueryWorkload::generate_covered(&dataset.network, &dataset.database, &cfg, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = ScaleParams::for_scale(RunScale::Quick);
        let d = ScaleParams::for_scale(RunScale::Default);
        let p = ScaleParams::for_scale(RunScale::Paper);
        assert!(q.num_states < d.num_states && d.num_states < p.num_states);
        assert!(q.num_objects < d.num_objects && d.num_objects < p.num_objects);
        assert_eq!(p.num_samples, 10_000, "paper scale uses the paper's sample count");
    }

    #[test]
    fn index_build_targets_cover_the_paper_sweep_maxima() {
        assert_eq!(ScaleParams::index_build_target(RunScale::Paper), (500_000, 20_000));
        let (qs, qo) = ScaleParams::index_build_target(RunScale::Quick);
        let (ds, do_) = ScaleParams::index_build_target(RunScale::Default);
        assert!(qs < ds && qo < do_);
    }

    #[test]
    fn quick_synthetic_dataset_builds() {
        let params = ScaleParams::for_scale(RunScale::Quick);
        let ds = build_synthetic(&params, 500, 8.0, 20, 7);
        assert_eq!(ds.database.len(), 20);
        let queries = build_queries(&ds, &params, 7);
        assert_eq!(queries.queries.len(), params.num_queries);
    }
}
