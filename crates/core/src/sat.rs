//! The NP-hardness construction of Section 4.1: reducing k-SAT to P∃NN.
//!
//! Lemma 1 of the paper proves that computing `P∃NN(o, q, D, T)` is NP-hard by
//! mapping a boolean formula in conjunctive normal form to a set of uncertain
//! objects with time-inhomogeneous Markov chains:
//!
//! * every variable `x_i` becomes an uncertain object `o'_i` with exactly two
//!   possible trajectories — one per truth value,
//! * every clause `c_j` becomes the query timestamp `t = j`,
//! * at time `j`, the trajectory of `o'_i` under assignment `a` is *closer* to
//!   the query than the target object `o` iff the literal of `x_i` in `c_j`
//!   evaluates to true under `a` (variables not occurring in `c_j` stay behind
//!   `o`, mirroring the paper's `c_j ∨ (x_i ∧ ¬x_i)` padding),
//! * consequently, the formula is satisfiable iff there exists a possible
//!   world in which `o` is *never* the nearest neighbor, i.e. iff
//!   `P∃NN(o, q, D, T) < 1`.
//!
//! This module implements the reduction faithfully (including the
//! time-inhomogeneous chains) and uses it both as an executable artifact of
//! the complexity analysis and as a stress test of the possible-worlds
//! machinery: deciding satisfiability through the query engine must agree with
//! brute-force SAT evaluation.

use crate::exact::{exact_pnn, ExactError};
use crate::query::Query;
use crate::ObjectId;
use std::sync::Arc;
use ust_markov::{AdaptedModel, CsrMatrix, MarkovModel, StateId};
use ust_spatial::{Point, StateSpace};

/// A boolean formula in conjunctive normal form.
///
/// Literals use DIMACS conventions: literal `+i` is variable `i`, `-i` its
/// negation; variables are numbered from `1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<i32>>,
}

impl CnfFormula {
    /// Creates a formula.
    ///
    /// # Panics
    /// Panics if a literal references variable `0` or a variable larger than
    /// `num_vars`, or if a clause is empty.
    pub fn new(num_vars: usize, clauses: Vec<Vec<i32>>) -> Self {
        for clause in &clauses {
            assert!(!clause.is_empty(), "empty clauses are trivially unsatisfiable");
            for &lit in clause {
                let var = lit.unsigned_abs() as usize;
                assert!(var >= 1 && var <= num_vars, "literal {lit} out of range");
            }
        }
        CnfFormula { num_vars, clauses }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<i32>] {
        &self.clauses
    }

    /// Evaluates the formula under an assignment (`assignment[i]` is the value
    /// of variable `i + 1`).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&lit| {
                let value = assignment[(lit.unsigned_abs() - 1) as usize];
                if lit > 0 {
                    value
                } else {
                    !value
                }
            })
        })
    }

    /// Brute-force satisfiability check (exponential; for testing only).
    pub fn is_satisfiable_brute_force(&self) -> bool {
        let n = self.num_vars;
        (0..(1u64 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            self.evaluate(&assignment)
        })
    }
}

/// State layout of the reduction (distances from the query at the origin).
mod layout {
    use super::StateId;
    /// Closer than the target object (used by the `x_i = false` trajectory).
    pub const S1: StateId = 0; // x = 1
    /// Closer than the target object (used by the `x_i = true` trajectory).
    pub const S2: StateId = 1; // x = 2
    /// Farther than the target object (used by the `x_i = false` trajectory).
    pub const S3: StateId = 2; // x = 4
    /// Farther than the target object (used by the `x_i = true` trajectory).
    pub const S4: StateId = 3; // x = 5
    /// The (certain) position of the target object `o`.
    pub const TARGET: StateId = 4; // x = 3
    /// Shared start state at time 0 (before the first clause timestamp).
    pub const START: StateId = 5; // x = 10
    /// Shared rejoin state after the last clause timestamp.
    pub const END: StateId = 6; // x = 10
    /// Total number of states.
    pub const COUNT: usize = 7;
}

/// The uncertain-trajectory instance produced by the reduction.
#[derive(Debug, Clone)]
pub struct SatReduction {
    /// The shared state space (7 states on a line).
    pub space: StateSpace,
    /// The query: location at the origin, one timestamp per clause.
    pub query: Query,
    /// The adapted models of all objects: the target `o` (id 0) plus one
    /// object per variable (ids `1..=num_vars`).
    pub models: Vec<(ObjectId, Arc<AdaptedModel>)>,
    /// The id of the target object `o`.
    pub target: ObjectId,
}

/// Builds the reduction instance for a CNF formula.
pub fn reduce_to_pnn(formula: &CnfFormula) -> SatReduction {
    use layout::*;
    let space = StateSpace::from_points(vec![
        Point::new(1.0, 0.0),  // S1
        Point::new(2.0, 0.0),  // S2
        Point::new(4.0, 0.0),  // S3
        Point::new(5.0, 0.0),  // S4
        Point::new(3.0, 0.0),  // TARGET
        Point::new(10.0, 0.0), // START
        Point::new(10.0, 0.0), // END
    ]);
    let num_clauses = formula.clauses().len() as u32;
    let query = Query::at_point(Point::new(0.0, 0.0), 1..=num_clauses)
        .expect("at least one clause");

    // The state a variable object occupies at clause timestamp `j`, per truth
    // value: closer states (S2/S1) when the literal is satisfied, farther
    // states (S4/S3) otherwise. Variables absent from the clause are farther.
    let state_at = |var: usize, value: bool, clause: &[i32]| -> StateId {
        let lit = clause.iter().find(|l| l.unsigned_abs() as usize == var + 1);
        let satisfied = match lit {
            Some(&l) => {
                if l > 0 {
                    value
                } else {
                    !value
                }
            }
            None => false,
        };
        match (value, satisfied) {
            (true, true) => S2,
            (true, false) => S4,
            (false, true) => S1,
            (false, false) => S3,
        }
    };

    let mut models: Vec<(ObjectId, Arc<AdaptedModel>)> = Vec::with_capacity(formula.num_vars() + 1);

    // The target object o: pinned at TARGET for the whole interval.
    let identity = MarkovModel::homogeneous(CsrMatrix::identity(COUNT));
    let target_model = AdaptedModel::build(
        &identity,
        &[(0, TARGET), (num_clauses + 1, TARGET)],
    )
    .expect("identity chain is consistent");
    models.push((0, Arc::new(target_model)));

    // One time-inhomogeneous chain per variable.
    for var in 0..formula.num_vars() {
        let mut matrices: Vec<CsrMatrix> = Vec::with_capacity(num_clauses as usize + 1);
        // t = 0 -> 1: branch into the two assignments with probability 0.5.
        let first_true = state_at(var, true, &formula.clauses()[0]);
        let first_false = state_at(var, false, &formula.clauses()[0]);
        let mut rows = vec![Vec::new(); COUNT];
        rows[START as usize] = if first_true == first_false {
            vec![(first_true, 1.0)]
        } else {
            vec![(first_true, 0.5), (first_false, 0.5)]
        };
        fill_missing_with_self_loops(&mut rows);
        matrices.push(CsrMatrix::from_rows(rows));
        // t = j -> j + 1 for clauses j = 1..m-1: deterministic continuation of
        // each branch (the branches never share a state, so this is well-defined).
        for j in 1..num_clauses as usize {
            let mut rows = vec![Vec::new(); COUNT];
            let prev_true = state_at(var, true, &formula.clauses()[j - 1]);
            let prev_false = state_at(var, false, &formula.clauses()[j - 1]);
            let next_true = state_at(var, true, &formula.clauses()[j]);
            let next_false = state_at(var, false, &formula.clauses()[j]);
            rows[prev_true as usize] = vec![(next_true, 1.0)];
            rows[prev_false as usize] = vec![(next_false, 1.0)];
            fill_missing_with_self_loops(&mut rows);
            matrices.push(CsrMatrix::from_rows(rows));
        }
        // t = m -> m + 1: both branches rejoin in END so that a final
        // observation can pin the model without eliminating either branch.
        let mut rows = vec![Vec::new(); COUNT];
        let last_clause = &formula.clauses()[num_clauses as usize - 1];
        rows[state_at(var, true, last_clause) as usize] = vec![(END, 1.0)];
        rows[state_at(var, false, last_clause) as usize] = vec![(END, 1.0)];
        fill_missing_with_self_loops(&mut rows);
        matrices.push(CsrMatrix::from_rows(rows));

        let chain = MarkovModel::time_varying(matrices);
        let adapted = AdaptedModel::build(&chain, &[(0, START), (num_clauses + 1, END)])
            .expect("both branches reach the rejoin state");
        models.push((var as ObjectId + 1, Arc::new(adapted)));
    }

    SatReduction { space, query, models, target: 0 }
}

fn fill_missing_with_self_loops(rows: &mut [Vec<(StateId, f64)>]) {
    for (i, row) in rows.iter_mut().enumerate() {
        if row.is_empty() {
            row.push((i as StateId, 1.0));
        }
    }
}

impl SatReduction {
    /// Exact `P∃NN` of the target object, computed by possible-world
    /// enumeration (exponential in the number of variables).
    pub fn target_exists_probability(&self, limit: usize) -> Result<f64, ExactError> {
        let result = exact_pnn(&self.models, &self.space, &self.query, limit)?;
        Ok(result.exists_of(self.target))
    }

    /// Decides satisfiability of the original formula through the query
    /// semantics: the formula is satisfiable iff `P∃NN(o) < 1`.
    pub fn formula_is_satisfiable(&self, limit: usize) -> Result<bool, ExactError> {
        Ok(self.target_exists_probability(limit)? < 1.0 - 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_construction_and_evaluation() {
        let f = CnfFormula::new(3, vec![vec![1, -2], vec![2, 3], vec![-1, -3]]);
        assert_eq!(f.num_vars(), 3);
        assert!(f.evaluate(&[true, true, false]));
        assert!(!f.evaluate(&[false, true, false]));
        assert!(f.is_satisfiable_brute_force());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_literals_are_rejected() {
        let _ = CnfFormula::new(1, vec![vec![2]]);
    }

    /// The example formula of Section 4.1:
    /// E = (¬x1 ∨ x2 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ x4) ∧ (x1 ∨ ¬x2).
    #[test]
    fn paper_example_formula_is_detected_as_satisfiable() {
        let f = CnfFormula::new(4, vec![vec![-1, 2, 3], vec![2, -3, 4], vec![1, -2]]);
        assert!(f.is_satisfiable_brute_force());
        let reduction = reduce_to_pnn(&f);
        assert_eq!(reduction.models.len(), 5, "target + four variable objects");
        assert_eq!(reduction.query.len(), 3, "one timestamp per clause");
        let p = reduction.target_exists_probability(1_000_000).unwrap();
        assert!(p < 1.0, "satisfiable formula must leave a world where o is never the NN");
        assert!(reduction.formula_is_satisfiable(1_000_000).unwrap());
    }

    #[test]
    fn unsatisfiable_formula_forces_the_target_to_be_a_nearest_neighbor() {
        // (x1) ∧ (¬x1): no assignment satisfies both clauses, so in every
        // possible world there is a timestamp at which o1 is behind the target
        // and no other object exists to beat it.
        let f = CnfFormula::new(1, vec![vec![1], vec![-1]]);
        assert!(!f.is_satisfiable_brute_force());
        let reduction = reduce_to_pnn(&f);
        let p = reduction.target_exists_probability(1_000_000).unwrap();
        assert!((p - 1.0).abs() < 1e-12, "P∃NN(o) must be exactly 1, got {p}");
        assert!(!reduction.formula_is_satisfiable(1_000_000).unwrap());
    }

    #[test]
    fn satisfiability_via_pnn_matches_brute_force_on_small_formulas() {
        let formulas = vec![
            CnfFormula::new(2, vec![vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]]), // unsat
            CnfFormula::new(2, vec![vec![1, 2], vec![-1, 2], vec![1, -2]]),               // sat
            CnfFormula::new(3, vec![vec![1], vec![-1, 2], vec![-2, 3]]),                  // sat
            CnfFormula::new(3, vec![vec![1], vec![-1, 2], vec![-2, -1]]),                 // unsat
            CnfFormula::new(1, vec![vec![1]]),                                            // sat
        ];
        for f in formulas {
            let expected = f.is_satisfiable_brute_force();
            let reduction = reduce_to_pnn(&f);
            let got = reduction.formula_is_satisfiable(4_000_000).unwrap();
            assert_eq!(got, expected, "reduction disagrees with brute force on {f:?}");
        }
    }

    #[test]
    fn variable_objects_have_exactly_two_possible_trajectories() {
        let f = CnfFormula::new(2, vec![vec![1, 2], vec![-1, 2]]);
        let reduction = reduce_to_pnn(&f);
        for (id, model) in &reduction.models {
            let trajectories =
                crate::exact::enumerate_trajectories(model, 10_000).expect("small model");
            if *id == reduction.target {
                assert_eq!(trajectories.len(), 1, "the target object is certain");
            } else {
                assert_eq!(
                    trajectories.len(),
                    2,
                    "variable object {id} must have one trajectory per truth value"
                );
                for (_, p) in trajectories {
                    assert!((p - 0.5).abs() < 1e-12);
                }
            }
        }
    }
}
