//! The a-priori Markov model `M^o(t)` of an uncertain moving object.
//!
//! Section 3.1 of the paper: "The probability `M^o_ij(t) = P(o(t+1) = s_j |
//! o(t) = s_i)` is the transition probability of a given object `o` from state
//! `s_i` to state `s_j` at a given time `t`. [...] In general, every object
//! `o` might have a different transition matrix, and the transition matrix of
//! an object might vary over time."
//!
//! In the paper's experiments all objects share one *homogeneous* chain
//! (learned from the road network or derived from the synthetic graph), but
//! the NP-hardness construction of Section 4.1 requires *time-inhomogeneous*
//! chains, so both are supported here.

use crate::sparse::{CsrMatrix, SparseDist};
use crate::{StateId, Timestamp};
use std::sync::Arc;

/// Abstraction over anything that can act as an a-priori transition model.
///
/// The adaptation and sampling algorithms only need row access at a given
/// time, so they are generic over this trait.
pub trait TransitionModel {
    /// Number of states of the underlying state space.
    fn num_states(&self) -> usize;

    /// The transition distribution out of `state` at time `t`
    /// (`P(o(t+1) = · | o(t) = state)`), as `(columns, values)` slices.
    fn row(&self, state: StateId, t: Timestamp) -> (&[StateId], &[f64]);

    /// Convenience iterator over the row entries.
    fn row_iter(&self, state: StateId, t: Timestamp) -> RowIter<'_> {
        let (cols, vals) = self.row(state, t);
        RowIter { cols, vals, idx: 0 }
    }

    /// One forward transition of a distribution: `~s(t+1) = M(t)^T · ~s(t)`.
    fn propagate(&self, dist: &SparseDist, t: Timestamp) -> SparseDist {
        let mut acc: rustc_hash::FxHashMap<StateId, f64> = rustc_hash::FxHashMap::default();
        for (j, pj) in dist.iter() {
            for (i, m_ji) in self.row_iter(j, t) {
                *acc.entry(i).or_insert(0.0) += m_ji * pj;
            }
        }
        SparseDist::from_pairs(acc)
    }
}

/// Iterator over the non-zero entries of a transition row.
#[derive(Debug)]
pub struct RowIter<'a> {
    cols: &'a [StateId],
    vals: &'a [f64],
    idx: usize,
}

impl Iterator for RowIter<'_> {
    type Item = (StateId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.idx < self.cols.len() {
            let out = (self.cols[self.idx], self.vals[self.idx]);
            self.idx += 1;
            Some(out)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cols.len() - self.idx;
        (rem, Some(rem))
    }
}

/// The a-priori Markov chain of an object (or, typically, of the whole
/// database — the paper's experiments assume all objects share one model).
#[derive(Debug, Clone)]
pub enum MarkovModel {
    /// One transition matrix used at every timestamp.
    Homogeneous(Arc<CsrMatrix>),
    /// A different matrix per timestamp offset. `matrices[t]` is used for the
    /// transition from time `t` to `t + 1`; timestamps beyond the last matrix
    /// reuse the final one.
    TimeVarying(Arc<Vec<CsrMatrix>>),
}

impl MarkovModel {
    /// Creates a homogeneous model from a transition matrix.
    pub fn homogeneous(matrix: CsrMatrix) -> Self {
        MarkovModel::Homogeneous(Arc::new(matrix))
    }

    /// Creates a time-inhomogeneous model; `matrices[t]` governs the
    /// transition from `t` to `t + 1`.
    ///
    /// # Panics
    /// Panics if `matrices` is empty or the matrices disagree on `num_states`.
    pub fn time_varying(matrices: Vec<CsrMatrix>) -> Self {
        assert!(!matrices.is_empty(), "time-varying model needs at least one matrix");
        let n = matrices[0].num_states();
        assert!(
            matrices.iter().all(|m| m.num_states() == n),
            "all matrices must share the same state space"
        );
        MarkovModel::TimeVarying(Arc::new(matrices))
    }

    /// The matrix that governs the transition from time `t` to `t + 1`.
    pub fn matrix_at(&self, t: Timestamp) -> &CsrMatrix {
        match self {
            MarkovModel::Homogeneous(m) => m,
            MarkovModel::TimeVarying(ms) => {
                let idx = (t as usize).min(ms.len() - 1);
                &ms[idx]
            }
        }
    }

    /// Whether all transition matrices are row-stochastic.
    pub fn is_valid(&self) -> bool {
        match self {
            MarkovModel::Homogeneous(m) => m.is_row_stochastic(),
            MarkovModel::TimeVarying(ms) => ms.iter().all(|m| m.is_row_stochastic()),
        }
    }

    /// Total number of stored non-zero transition probabilities.
    pub fn nnz(&self) -> usize {
        match self {
            MarkovModel::Homogeneous(m) => m.nnz(),
            MarkovModel::TimeVarying(ms) => ms.iter().map(|m| m.nnz()).sum(),
        }
    }

    /// Propagates a distribution `steps` times starting at time `t0`, without
    /// incorporating any observation. This is the "NO adaptation" baseline of
    /// Figure 12 (a-priori model, first observation only).
    pub fn propagate_steps(&self, dist: &SparseDist, t0: Timestamp, steps: usize) -> SparseDist {
        let mut d = dist.clone();
        for k in 0..steps {
            d = self.propagate(&d, t0 + k as Timestamp);
        }
        d
    }
}

impl TransitionModel for MarkovModel {
    fn num_states(&self) -> usize {
        match self {
            MarkovModel::Homogeneous(m) => m.num_states(),
            MarkovModel::TimeVarying(ms) => ms[0].num_states(),
        }
    }

    fn row(&self, state: StateId, t: Timestamp) -> (&[StateId], &[f64]) {
        self.matrix_at(t).row(state)
    }
}

impl TransitionModel for CsrMatrix {
    fn num_states(&self) -> usize {
        CsrMatrix::num_states(self)
    }

    fn row(&self, state: StateId, _t: Timestamp) -> (&[StateId], &[f64]) {
        CsrMatrix::row(self, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> CsrMatrix {
        CsrMatrix::from_rows(vec![
            vec![(1, 1.0)],
            vec![(2, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
        ])
    }

    #[test]
    fn homogeneous_model_rows() {
        let m = MarkovModel::homogeneous(chain());
        assert_eq!(m.num_states(), 3);
        assert!(m.is_valid());
        assert_eq!(m.row(0, 0), (&[1u32][..], &[1.0][..]));
        assert_eq!(m.row(0, 99), (&[1u32][..], &[1.0][..]));
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn time_varying_model_switches_matrices() {
        let identity = CsrMatrix::identity(3);
        let m = MarkovModel::time_varying(vec![chain(), identity]);
        // At t=0 the chain moves 0 -> 1; from t=1 on the identity holds.
        assert_eq!(m.row(0, 0).0, &[1u32][..]);
        assert_eq!(m.row(0, 1).0, &[0u32][..]);
        assert_eq!(m.row(0, 5).0, &[0u32][..], "timestamps beyond the last matrix reuse it");
        assert!(m.is_valid());
    }

    #[test]
    #[should_panic(expected = "at least one matrix")]
    fn time_varying_requires_matrices() {
        let _ = MarkovModel::time_varying(vec![]);
    }

    #[test]
    fn propagate_steps_matches_repeated_propagation() {
        let m = MarkovModel::homogeneous(chain());
        let d0 = SparseDist::delta(0);
        let via_steps = m.propagate_steps(&d0, 0, 3);
        let mut manual = d0;
        for t in 0..3 {
            manual = m.propagate(&manual, t);
        }
        for s in 0..3u32 {
            assert!((via_steps.prob(s) - manual.prob(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn trait_impl_for_raw_matrix() {
        let c = chain();
        let d = TransitionModel::propagate(&c, &SparseDist::delta(2), 0);
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!((d.prob(2) - 0.5).abs() < 1e-12);
    }
}
