//! Efficiency measurements for the P∀NNQ / P∃NNQ experiments
//! (Figures 6, 7, 8 and 9 of the paper).
//!
//! Per query the harness measures, exactly as the paper's plots do:
//!
//! * **TS** — the time to compute the adapted (a-posteriori) transition
//!   matrices of all objects relevant to the query,
//! * **FA** — the time to sample possible worlds and evaluate the P∀NNQ,
//! * **EX** — the time to evaluate the P∃NNQ on the same sampled worlds
//!   (re-sampled with a warm model cache),
//! * **|C(q)|** and **|I(q)|** — the candidate and influence set sizes after
//!   UST-tree pruning.

use ust_core::{EngineConfig, Query, QueryBudget, QueryEngine, QueryError};
use ust_generator::{Dataset, QueryWorkload};

/// Averaged efficiency measurements over a query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct EfficiencyOutcome {
    /// Mean model-adaptation time per query, seconds (cold adaptations only —
    /// warm cache lookups are excluded by the engine).
    pub ts_seconds: f64,
    /// Mean P∀NNQ sampling/refinement time per query, seconds.
    pub fa_seconds: f64,
    /// Mean P∃NNQ sampling/refinement time per query, seconds.
    pub ex_seconds: f64,
    /// Mean candidate-set size `|C(q)|`.
    pub candidates: f64,
    /// Mean influence-set size `|I(q)|`.
    pub influencers: f64,
    /// Mean number of influence objects answered from the model cache per
    /// P∀NNQ evaluation.
    pub cache_hits: f64,
    /// Mean number of cold forward–backward adaptations per P∀NNQ evaluation.
    pub cold_adaptations: f64,
    /// Number of queries measured.
    pub queries: usize,
    /// FNV-1a digest of the *result sets*: every query's P∀NN and P∃NN
    /// outcome (object ids, probability bit patterns, candidate/influence
    /// counts), in evaluation order. Timings are excluded, so two runs over
    /// the same data at any thread count must produce the same digest — the
    /// determinism witness of the real-data (`--csv`) harness.
    pub digest: u64,
    /// Mean number of budget checkpoints polled per query pair (P∀NN + P∃NN)
    /// — the governance-overhead observability of `QueryStats`.
    pub budget_checkpoints: f64,
    /// Mean number of worlds actually sampled per P∀NNQ. Equals the
    /// configured sample count unless a deadline or `max_worlds` cap degraded
    /// the run.
    pub worlds_sampled: f64,
    /// Mean number of worlds each P∀NNQ asked for.
    pub worlds_requested: f64,
    /// Number of query evaluations (P∀NN and P∃NN counted separately) that
    /// completed degraded — fewer worlds than requested — instead of failing.
    pub degraded_queries: usize,
}

/// Folds one 64-bit word into an FNV-1a digest. The one digest primitive of
/// the harness — the result-set digests here and the index digest of the
/// `index_build` bench both build on it.
pub fn fnv_fold(digest: u64, word: u64) -> u64 {
    let mut d = digest;
    for byte in word.to_le_bytes() {
        d ^= u64::from(byte);
        d = d.wrapping_mul(0x0000_0100_0000_01B3);
    }
    d
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Runs the P∀NNQ / P∃NNQ efficiency measurement over a query workload.
///
/// `tau = 0` is used, as in the paper's efficiency experiments, so that no
/// result is cut off by the threshold. `adaptation_threads` is handed to the
/// engine's TS phase (`0` = available parallelism, `1` = the serial loop).
pub fn measure_efficiency(
    dataset: &Dataset,
    workload: &QueryWorkload,
    num_samples: usize,
    seed: u64,
    adaptation_threads: usize,
) -> EfficiencyOutcome {
    try_measure_efficiency(
        dataset,
        workload,
        num_samples,
        seed,
        adaptation_threads,
        &QueryBudget::default(),
    )
    .expect("query evaluation succeeds under an unlimited budget")
}

/// [`measure_efficiency`] with every query pair run under `budget` (see
/// [`try_measure_efficiency_on`] for the breach semantics).
pub fn try_measure_efficiency(
    dataset: &Dataset,
    workload: &QueryWorkload,
    num_samples: usize,
    seed: u64,
    adaptation_threads: usize,
    budget: &QueryBudget,
) -> Result<EfficiencyOutcome, QueryError> {
    let config = EngineConfig { num_samples, seed, adaptation_threads, ..Default::default() };
    let engine = QueryEngine::new(&dataset.database, config);
    try_measure_efficiency_on(&engine, workload, budget)
}

/// [`measure_efficiency`] over an existing engine (so the UST-tree built at
/// engine construction can be shared with other measurements on the same
/// dataset). The model cache is cleared before every P∀NNQ.
pub fn measure_efficiency_on(engine: &QueryEngine, workload: &QueryWorkload) -> EfficiencyOutcome {
    try_measure_efficiency_on(engine, workload, &QueryBudget::default())
        .expect("query evaluation succeeds under an unlimited budget")
}

/// [`measure_efficiency_on`] with every query pair run under `budget`. A
/// budget breach the engine cannot absorb by degrading (deadline during the
/// filter or TS phase, exhausted caps) surfaces as the typed [`QueryError`];
/// sampling-phase deadline breaches degrade instead and are tallied in
/// [`EfficiencyOutcome::degraded_queries`].
pub fn try_measure_efficiency_on(
    engine: &QueryEngine,
    workload: &QueryWorkload,
    budget: &QueryBudget,
) -> Result<EfficiencyOutcome, QueryError> {
    let mut out = EfficiencyOutcome { digest: FNV_OFFSET, ..Default::default() };
    for spec in &workload.queries {
        let query = Query::at_point(spec.location, spec.times.iter().copied())
            .expect("workload queries are well-formed");
        // Cold model cache: the adaptation time of this query is the TS phase.
        engine.clear_model_cache();
        let forall = engine.pforall_nn_with_budget(&query, 0.0, budget)?;
        // Warm cache: the P∃NNQ measures only the sampling/refinement cost.
        let exists = engine.pexists_nn_with_budget(&query, 0.0, budget)?;
        for outcome in [&forall, &exists] {
            out.digest = fnv_fold(out.digest, outcome.stats.candidates as u64);
            out.digest = fnv_fold(out.digest, outcome.stats.influencers as u64);
            for r in &outcome.results {
                out.digest = fnv_fold(out.digest, u64::from(r.object));
                out.digest = fnv_fold(out.digest, r.probability.to_bits());
            }
        }
        out.ts_seconds += forall.stats.adaptation_time.as_secs_f64();
        out.fa_seconds += forall.stats.sampling_time.as_secs_f64();
        out.ex_seconds += exists.stats.sampling_time.as_secs_f64();
        out.candidates += forall.stats.candidates as f64;
        out.influencers += forall.stats.influencers as f64;
        out.cache_hits += forall.stats.cache_hits as f64;
        out.cold_adaptations += forall.stats.cold_adaptations as f64;
        out.budget_checkpoints +=
            (forall.stats.budget_checkpoints + exists.stats.budget_checkpoints) as f64;
        out.worlds_sampled += forall.stats.worlds as f64;
        out.worlds_requested += forall.stats.worlds_requested as f64;
        out.degraded_queries +=
            usize::from(forall.stats.degraded) + usize::from(exists.stats.degraded);
        out.queries += 1;
    }
    if out.queries > 0 {
        let n = out.queries as f64;
        out.ts_seconds /= n;
        out.fa_seconds /= n;
        out.ex_seconds /= n;
        out.candidates /= n;
        out.influencers /= n;
        out.cache_hits /= n;
        out.cold_adaptations /= n;
        out.budget_checkpoints /= n;
        out.worlds_sampled /= n;
        out.worlds_requested /= n;
    }
    Ok(out)
}

/// Measures *only* the TS phase over a query workload: per query, the cache
/// is cleared and the influence set's models are adapted cold with the given
/// thread count; no possible world is sampled. Returns the mean cold
/// adaptation time per query in seconds, and leaves the engine's model cache
/// cleared.
///
/// `fig06` uses this for its serial baseline column (`TS1`) on the *same*
/// engine as the parallel measurement, so neither the UST-tree build nor the
/// Monte-Carlo refinement runs twice per sweep point.
pub fn measure_ts_phase(engine: &QueryEngine, workload: &QueryWorkload, threads: usize) -> f64 {
    let mut total = 0.0;
    let mut queries = 0usize;
    for spec in &workload.queries {
        let query = Query::at_point(spec.location, spec.times.iter().copied())
            .expect("workload queries are well-formed");
        let (_, influencers) = engine.filter(&query).expect("filter succeeds");
        engine.clear_model_cache();
        let outcome = engine
            .prepare_objects_with_threads(&influencers, threads)
            .expect("adaptation succeeds");
        total += outcome.cold_time.as_secs_f64();
        queries += 1;
    }
    engine.clear_model_cache();
    if queries > 0 {
        total / queries as f64
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunScale;
    use crate::datasets::{build_queries, build_synthetic, ScaleParams};

    #[test]
    fn efficiency_measurement_produces_sane_numbers() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        let ds = build_synthetic(&params, 600, 8.0, 40, 3);
        let queries = build_queries(&ds, &params, 3);
        let outcome = measure_efficiency(&ds, &queries, 50, 3, 1);
        assert_eq!(outcome.queries, 2);
        assert!(outcome.ts_seconds >= 0.0);
        assert!(outcome.fa_seconds > 0.0);
        assert!(outcome.ex_seconds > 0.0);
        assert!(outcome.influencers >= outcome.candidates);
        // The cache is cleared before every P∀NNQ, so its influence set is
        // adapted cold and the P∃NNQ right after runs fully warm.
        assert_eq!(outcome.cold_adaptations, outcome.influencers);
        assert_eq!(outcome.cache_hits, 0.0);
    }

    #[test]
    fn efficiency_is_thread_count_independent() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 1;
        let ds = build_synthetic(&params, 600, 8.0, 40, 3);
        let queries = build_queries(&ds, &params, 3);
        let serial = measure_efficiency(&ds, &queries, 50, 3, 1);
        let parallel = measure_efficiency(&ds, &queries, 50, 3, 4);
        assert_eq!(serial.candidates, parallel.candidates);
        assert_eq!(serial.influencers, parallel.influencers);
        assert_eq!(serial.cold_adaptations, parallel.cold_adaptations);
        assert_eq!(serial.digest, parallel.digest, "result digest is thread-count independent");
        assert_ne!(serial.digest, 0, "digest folds real data");
    }

    #[test]
    fn ts_only_measurement_runs_without_sampling() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        let ds = build_synthetic(&params, 600, 8.0, 40, 3);
        let queries = build_queries(&ds, &params, 3);
        let engine = QueryEngine::new(&ds.database, EngineConfig::with_samples(1));
        let ts = measure_ts_phase(&engine, &queries, 1);
        assert!(ts >= 0.0);
        assert_eq!(engine.cached_models(), 0, "the cache is left cleared");
    }
}
