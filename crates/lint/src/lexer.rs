//! A minimal Rust surface lexer: splits each source line into *code* and
//! *comment* text and marks test-only regions.
//!
//! The rules in [`crate::rules`] are token-level, so the one piece of real
//! parsing the linter needs is knowing what is code and what is not: a
//! `unwrap()` inside a doc comment or a string literal must never fire a
//! finding. This module walks the source once, tracking comment/string/char
//! state (including nested block comments and raw strings), and emits one
//! [`SourceLine`] per input line where string and comment contents are
//! blanked out of the `code` text — column positions are preserved, so
//! findings can report exact lines against the original file.
//!
//! It also computes `in_test`: lines inside a `#[cfg(test)]` module or a
//! `#[test]` function, tracked by brace depth. Panic-style rules skip those
//! regions (tests are *supposed* to unwrap).

/// One analysed source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// The line's code with comment and string/char contents replaced by
    /// spaces (delimiters are kept, so the text stays structurally intact).
    pub code: String,
    /// Comment text found on this line (line and block comments merged),
    /// `None` if the line carries no comment.
    pub comment: Option<String>,
    /// Whether the line sits inside a `#[cfg(test)]` module or `#[test]`
    /// function body (attribute line included).
    pub in_test: bool,
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lexes `text` into per-line code/comment splits with test-region marks.
pub fn analyze(text: &str) -> Vec<SourceLine> {
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let n = bytes.len();

    let flush = |code: &mut String, comment: &mut String, lines: &mut Vec<SourceLine>| {
        lines.push(SourceLine {
            code: std::mem::take(code),
            comment: if comment.is_empty() { None } else { Some(std::mem::take(comment)) },
            in_test: false,
        });
        comment.clear();
    };

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush(&mut code, &mut comment, &mut lines);
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = bytes.get(i + 1).copied().unwrap_or('\0');
                if c == '/' && next == '/' {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i) {
                    let (hashes, consumed) = raw_string_open(&bytes, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        code.push(' ');
                    }
                    code.push('"');
                    i += consumed + 1;
                } else if c == 'b' && next == '"' {
                    state = State::Str;
                    code.push_str(" \"");
                    i += 2;
                } else if c == '\'' {
                    // Char literal or lifetime. `'\x'`-style escapes and
                    // `'c'` are literals; anything else is a lifetime and
                    // stays code.
                    let c1 = bytes.get(i + 1).copied().unwrap_or('\0');
                    let c2 = bytes.get(i + 2).copied().unwrap_or('\0');
                    if c1 == '\\' {
                        // Escaped char literal: skip to the closing quote.
                        code.push('\'');
                        i += 1;
                        while i < n && bytes[i] != '\'' && bytes[i] != '\n' {
                            code.push(' ');
                            i += 1;
                        }
                        if i < n && bytes[i] == '\'' {
                            code.push('\'');
                            i += 1;
                        }
                    } else if c2 == '\'' && c1 != '\'' {
                        code.push_str("\' \'");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied().unwrap_or('\0');
                if c == '*' && next == '/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                let next = bytes.get(i + 1).copied().unwrap_or('\0');
                if c == '\\' && next != '\0' && next != '\n' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&bytes, i, hashes) {
                    state = State::Code;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush(&mut code, &mut comment, &mut lines);
    }
    mark_test_regions(&mut lines);
    lines
}

/// Whether position `i` (at `r` or `b`) opens a raw string (`r"`, `r#"`,
/// `br"`, `br#"` …) rather than being a plain identifier character.
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // An identifier character before `r`/`b` means this is part of a name.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) != Some(&'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Returns `(hash_count, chars_before_the_quote)` of a raw-string opener.
fn raw_string_open(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i)
}

/// Whether the `"` at `i` is followed by `hashes` `#` characters.
fn raw_string_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Marks lines inside `#[cfg(test)]` modules and `#[test]` functions.
///
/// An attribute arms a pending flag; the next `{` opened at the then-current
/// depth starts the region, which ends when the depth drops back. Attribute
/// lines themselves are included in the region so helper text next to the
/// attribute is covered too.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut depth: i64 = 0;
    let mut pending: Option<usize> = None; // line of the arming attribute
    let mut regions: Vec<(usize, usize)> = Vec::new(); // inclusive line spans
    let mut open: Vec<(i64, usize)> = Vec::new(); // (entry depth, start line)

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            pending = Some(idx);
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(start) = pending.take() {
                        open.push((depth, start));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&(entry, start)) = open.last() {
                        if depth == entry {
                            open.pop();
                            regions.push((start, idx));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // An unclosed region (truncated input) runs to the end of the file.
    for (_, start) in open {
        regions.push((start, lines.len().saturating_sub(1)));
    }
    for (start, end) in regions {
        let end = end.min(lines.len().saturating_sub(1));
        for line in &mut lines[start..=end] {
            line.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"unwrap()\"; // unwrap() here\nlet y = 1;\n";
        let lines = analyze(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("unwrap"));
        assert_eq!(lines[0].comment.as_deref(), Some(" unwrap() here"));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ still */ code();\nlet s = r#\"x.unwrap()\"#;\n";
        let lines = analyze(src);
        assert!(lines[0].code.contains("code();"));
        assert!(!lines[0].code.contains("still"));
        assert!(!lines[1].code.contains("unwrap"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '[' }\n";
        let lines = analyze(src);
        // The '[' literal must be blanked (it is not an index expression)
        // while the lifetime text stays code.
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[0].code.contains('['));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = analyze(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "the attribute line is inside the region");
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn test_fn_attribute_marks_the_body() {
        let src = "#[test]\nfn check() {\n    a.unwrap();\n}\nfn other() {}\n";
        let lines = analyze(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }
}
