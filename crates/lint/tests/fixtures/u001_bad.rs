//! U001 negative fixture: `unsafe` is banned everywhere, even in tests.
//! Findings pinned by `tests/rules_fixtures.rs` — keep line numbers stable.

fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn even_tests_may_not_use_unsafe() {
        let p = &7u8 as *const u8;
        let _ = unsafe { *p };
    }
}
