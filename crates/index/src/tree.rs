//! The UST-tree: diamond approximations indexed in an R\*-tree.
//!
//! The build fans the per-object diamond construction out across scoped
//! worker shards ([`UstTreeConfig::build_threads`]) and memoizes the
//! reachability geometry of repeated commutes, so paper-scale databases
//! (hundreds of thousands of states, tens of thousands of objects) index in
//! parallel. Shards emit their diamond runs in object order and the runs are
//! concatenated before one STR bulk load, so the resulting index — diamond
//! order, R\*-tree shape, every pruning result — is byte-identical at every
//! thread count.

use crate::diamond::Diamond;
use crate::par::{parallel_map_ordered, resolve_threads};
use crate::pruning::{BoundsTable, PruningResult};
use crate::{StateId, Timestamp};
use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ust_markov::reachability::ReachabilityIndex;
use ust_markov::MarkovModel;
use ust_spatial::{Point, RTree, Rect2, Rect3, StateSpace};
use ust_trajectory::{TrajectoryDatabase, UncertainObject};

/// Build-time configuration of the UST-tree.
#[derive(Debug, Clone, Copy)]
pub struct UstTreeConfig {
    /// Keep per-timestamp MBRs inside each diamond for tighter pruning bounds
    /// (the dashed rectangles of Figure 5). Costs memory proportional to the
    /// total number of covered timestamps.
    pub per_timestamp_mbrs: bool,
    /// Node capacity of the underlying R\*-tree.
    pub rtree_capacity: usize,
    /// Number of worker threads the per-object diamond construction fans out
    /// across. `0` (the default) uses the machine's available parallelism;
    /// `1` is the exact serial loop. The built index is byte-identical at
    /// every setting — shards emit ordered diamond runs that are concatenated
    /// in object order before the bulk load — only wall-clock time changes.
    pub build_threads: usize,
    /// Memoize the reachability geometry of repeated commutes (same a-priori
    /// model, same endpoint states, same time gap), so only the first
    /// occurrence runs the forward/backward BFS. The geometry is a pure
    /// function of the commute, so this never changes the built index; the
    /// switch exists for the `index_build` benchmark's no-memo baseline.
    pub reach_memo: bool,
}

impl Default for UstTreeConfig {
    fn default() -> Self {
        UstTreeConfig {
            per_timestamp_mbrs: true,
            rtree_capacity: 32,
            build_threads: 0,
            reach_memo: true,
        }
    }
}

/// Observability counters of one UST-tree build, surfaced through
/// `QueryEngine` and the bench harness so the paper-scale build trajectory is
/// measurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexBuildStats {
    /// Wall-clock time of the whole build (reachability, diamonds, bulk load).
    pub build_time: Duration,
    /// Resolved worker-thread count the diamond construction fanned out
    /// across (after `0` → available parallelism).
    pub build_threads: usize,
    /// Objects indexed.
    pub objects: usize,
    /// Observation segments processed (one reachability commute each).
    pub segments: usize,
    /// Diamonds actually indexed (segments with consistent observations).
    pub diamonds: usize,
    /// Segments whose geometry was answered from the reach memo (no BFS run).
    pub reach_memo_hits: usize,
    /// Segments whose geometry ran the forward/backward BFS.
    pub reach_memo_misses: usize,
    /// Largest per-timestamp reachable-state set encountered across all
    /// segments — the peak BFS frontier, the quantity that blows up first
    /// when the state space or the observation gap grows.
    pub peak_frontier: usize,
}

impl IndexBuildStats {
    /// Memo hit rate in `[0, 1]` (zero for an empty build).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.reach_memo_hits + self.reach_memo_misses;
        if total == 0 {
            0.0
        } else {
            self.reach_memo_hits as f64 / total as f64
        }
    }
}

/// The time-shifted geometry of one commute: everything a [`Diamond`] needs
/// except the object id and the absolute timestamps. A pure function of
/// `(a-priori model, from-state, to-state, gap)`, which is what makes it
/// memoizable across objects.
#[derive(Debug, Clone)]
struct DiamondGeometry {
    /// MBR over all states reachable anywhere in the commute.
    mbr: Rect2,
    /// Per relative timestamp (0 ..= gap), the MBR of the reachable states.
    per_time: Vec<Rect2>,
    /// Largest per-timestamp reachable-state count of this commute.
    peak_frontier: usize,
}

/// Memo key: the shared reachability index (by address — the `Arc`s live for
/// the whole build, so addresses are stable and unique), the commute's
/// endpoint states and its time gap.
type GeoKey = (usize, StateId, StateId, u32);

/// Number of memo shards; a power of two so shard selection is a mask.
const MEMO_SHARDS: usize = 16;

/// A sharded memo of commute geometries shared across build workers.
///
/// Geometry is a pure function of the key, so the memo needs no anti-stampede
/// claim discipline: two workers racing on the same cold commute both compute
/// the same value and the second insert is a no-op. Hit/miss counters feed
/// [`IndexBuildStats`].
struct GeometryMemo {
    shards: Vec<Mutex<FxHashMap<GeoKey, Arc<Option<DiamondGeometry>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    enabled: bool,
}

impl GeometryMemo {
    fn new(enabled: bool) -> Self {
        GeometryMemo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::new(FxHashMap::default())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            enabled,
        }
    }

    /// Returns the geometry of a commute, computing (and caching) it on the
    /// first occurrence. `None` means the commute is inconsistent (the target
    /// is unreachable in the given gap) and yields no diamond.
    fn geometry(
        &self,
        reach: &ReachabilityIndex,
        reach_key: usize,
        space: &StateSpace,
        from_state: StateId,
        to_state: StateId,
        gap: u32,
    ) -> Arc<Option<DiamondGeometry>> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(compute_geometry(reach, space, from_state, to_state, gap));
        }
        let key: GeoKey = (reach_key, from_state, to_state, gap);
        let mut hasher = rustc_hash::FxHasher::default();
        key.hash(&mut hasher);
        let shard = &self.shards[(hasher.finish() as usize) & (MEMO_SHARDS - 1)];
        if let Some(geo) = shard.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return geo.clone();
        }
        // Compute outside the lock: a BFS can be long, and a racing duplicate
        // computation of the same pure value is cheaper than serialising all
        // cold commutes of the shard behind it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let geo = Arc::new(compute_geometry(reach, space, from_state, to_state, gap));
        shard
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert_with(|| geo.clone())
            .clone()
    }
}

/// Runs the forward/backward BFS of one commute and boxes the reachable sets.
fn compute_geometry(
    reach: &ReachabilityIndex,
    space: &StateSpace,
    from_state: StateId,
    to_state: StateId,
    gap: u32,
) -> Option<DiamondGeometry> {
    let sets = reach.segment((0, from_state), (gap, to_state));
    if !sets.is_consistent() {
        return None;
    }
    let mut mbr = Rect2::empty();
    let mut per_time = Vec::with_capacity(sets.per_time.len());
    let mut peak_frontier = 0usize;
    for states in &sets.per_time {
        peak_frontier = peak_frontier.max(states.len());
        let r = space.mbr_of(states.iter().copied());
        mbr.extend(&r);
        per_time.push(r);
    }
    Some(DiamondGeometry { mbr, per_time, peak_frontier })
}

/// Diamond run of one object plus the per-object stats to merge.
struct ObjectRun {
    diamonds: Vec<Diamond>,
    segments: usize,
    peak_frontier: usize,
}

/// The UST-tree over a trajectory database.
#[derive(Debug)]
pub struct UstTree {
    diamonds: Vec<Diamond>,
    rtree: RTree<3, usize>,
    num_objects: usize,
    build_stats: IndexBuildStats,
}

impl UstTree {
    /// Builds the index over all objects of the database with default
    /// configuration.
    pub fn build(db: &TrajectoryDatabase) -> Self {
        Self::build_with(db, &UstTreeConfig::default())
    }

    /// Builds the index with an explicit configuration.
    ///
    /// The per-object diamond construction is fanned out across
    /// [`build_threads`](UstTreeConfig::build_threads) scoped workers; each
    /// worker emits its objects' diamonds in segment order and the ordered
    /// runs are concatenated in object order before a single STR bulk load,
    /// so the index is byte-identical at every thread count.
    pub fn build_with(db: &TrajectoryDatabase, cfg: &UstTreeConfig) -> Self {
        // lint: allow(T001) build_time is BuildStats observability; the index bytes are clock-free
        let start = Instant::now();
        let space = db.state_space();

        // Reachability indexes are derived from a-priori models; objects
        // sharing a model (the common case) share the reachability index.
        // They are computed once up front, so the per-object fan-out below
        // only ever reads them.
        let mut reach_cache: FxHashMap<usize, Arc<ReachabilityIndex>> = FxHashMap::default();
        let mut reach_for = |model: &Arc<MarkovModel>| -> (usize, Arc<ReachabilityIndex>) {
            let key = Arc::as_ptr(model) as usize;
            let reach = reach_cache
                .entry(key)
                .or_insert_with(|| {
                    Arc::new(ReachabilityIndex::from_matrix(model.matrix_at(0)))
                })
                .clone();
            (key, reach)
        };
        let work: Vec<(&UncertainObject, usize, Arc<ReachabilityIndex>)> = db
            .objects()
            .iter()
            .map(|object| {
                let (key, reach) = reach_for(db.model_for(object.id()));
                (object, key, reach)
            })
            .collect();

        // Resolve once, with the same per-item clamp the fan-out applies, so
        // the reported thread count is what actually ran.
        let build_threads = resolve_threads(cfg.build_threads).min(db.len()).max(1);
        let memo = GeometryMemo::new(cfg.reach_memo);
        let runs: Vec<ObjectRun> = parallel_map_ordered(
            &work,
            build_threads,
            |&(object, reach_key, ref reach)| {
                build_object_run(object, reach, reach_key, space, &memo, cfg)
            },
        );

        let mut stats = IndexBuildStats {
            build_threads,
            objects: db.len(),
            reach_memo_hits: memo.hits.load(Ordering::Relaxed),
            reach_memo_misses: memo.misses.load(Ordering::Relaxed),
            ..Default::default()
        };
        let mut diamonds: Vec<Diamond> =
            Vec::with_capacity(runs.iter().map(|r| r.diamonds.len()).sum());
        for run in runs {
            stats.segments += run.segments;
            stats.peak_frontier = stats.peak_frontier.max(run.peak_frontier);
            diamonds.extend(run.diamonds);
        }
        stats.diamonds = diamonds.len();

        let items: Vec<(Rect3, usize)> = diamonds
            .iter()
            .enumerate()
            .map(|(i, d)| (d.space_time_box(), i))
            .collect();
        let rtree = RTree::bulk_load_with_capacity(items, cfg.rtree_capacity);
        stats.build_time = start.elapsed();
        UstTree { diamonds, rtree, num_objects: db.len(), build_stats: stats }
    }

    /// Reassembles a tree from a stored diamond arena without re-running the
    /// Markov-chain build. The R\*-tree is *not* part of the stored form: STR
    /// bulk loading is deterministic, so rebuilding it here from the same
    /// diamonds with the same node capacity reproduces the original tree
    /// shape exactly.
    ///
    /// # Panics
    ///
    /// Panics if `rtree_capacity < 4` or if a diamond's space-time box is
    /// degenerate (inverted or non-finite bounds). Callers decoding untrusted
    /// bytes must validate first — the `ust-persist` decoder does.
    pub fn from_parts(
        diamonds: Vec<Diamond>,
        num_objects: usize,
        rtree_capacity: usize,
        build_stats: IndexBuildStats,
    ) -> Self {
        let items: Vec<(Rect3, usize)> = diamonds
            .iter()
            .enumerate()
            .map(|(i, d)| (d.space_time_box(), i))
            .collect();
        let rtree = RTree::bulk_load_with_capacity(items, rtree_capacity);
        UstTree { diamonds, rtree, num_objects, build_stats }
    }

    /// Node capacity of the underlying R\*-tree (the bulk-load fan-out).
    pub fn rtree_capacity(&self) -> usize {
        self.rtree.max_entries()
    }

    /// Number of indexed diamonds (one per observation segment).
    pub fn num_diamonds(&self) -> usize {
        self.diamonds.len()
    }

    /// Number of objects of the database the index was built over.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Observability counters of the build (wall time, memo hit/miss, peak
    /// BFS frontier — see [`IndexBuildStats`]).
    pub fn build_stats(&self) -> &IndexBuildStats {
        &self.build_stats
    }

    /// All diamonds (for diagnostics and tests).
    pub fn diamonds(&self) -> &[Diamond] {
        &self.diamonds
    }

    /// Calls `f` for every diamond whose time interval overlaps
    /// `[t_from, t_to]`, in deterministic R\*-tree traversal order.
    ///
    /// This is the streaming form the filter step uses — no intermediate
    /// `Vec` of references is materialised per query.
    pub fn for_each_overlapping<'s>(
        &'s self,
        t_from: Timestamp,
        t_to: Timestamp,
        mut f: impl FnMut(&'s Diamond),
    ) {
        match self.try_for_each_overlapping(t_from, t_to, |d| {
            f(d);
            Ok::<(), std::convert::Infallible>(())
        }) {
            Ok(()) => {}
            Err(never) => match never {},
        }
    }

    /// Fallible form of [`Self::for_each_overlapping`]: the stream stops at
    /// the first `Err` the visitor returns and propagates it. The visit order
    /// of the `Ok` prefix matches the infallible form, so budget checkpoints
    /// placed in the visitor fire at deterministic stream positions.
    pub fn try_for_each_overlapping<'s, E>(
        &'s self,
        t_from: Timestamp,
        t_to: Timestamp,
        mut f: impl FnMut(&'s Diamond) -> Result<(), E>,
    ) -> Result<(), E> {
        let query = Rect3::new(
            [f64::NEG_INFINITY, f64::NEG_INFINITY, t_from as f64],
            [f64::INFINITY, f64::INFINITY, t_to as f64],
        );
        self.rtree.try_for_each_intersecting(&query, |_, &i| f(&self.diamonds[i]))
    }

    /// Diamonds whose time interval overlaps `[t_from, t_to]`, collected into
    /// a `Vec` — a thin wrapper over [`Self::for_each_overlapping`] kept for
    /// diagnostics and tests.
    pub fn diamonds_overlapping(&self, t_from: Timestamp, t_to: Timestamp) -> Vec<&Diamond> {
        let mut out = Vec::new();
        self.for_each_overlapping(t_from, t_to, |d| out.push(d));
        out
    }

    /// Runs the filter step of Section 6 for a query given by per-timestamp
    /// positions: returns the ∀-candidates, the influence objects and the
    /// per-timestamp pruning distances.
    ///
    /// `query_pos(t)` must be defined for every `t` in `times`.
    pub fn prune(
        &self,
        times: &[Timestamp],
        query_pos: impl Fn(Timestamp) -> Point,
    ) -> PruningResult {
        self.prune_knn(times, query_pos, 1)
    }

    /// The filter step for k-NN queries: the pruning distance at every
    /// timestamp is the k-th smallest `dmax` over all alive objects.
    ///
    /// `times` must be ascending (as produced by `Query::times`); the
    /// streamed probe below relies on the covered timestamps of each diamond
    /// forming a contiguous subrange.
    ///
    /// Diamonds are streamed straight out of the R\*-tree into a dense
    /// per-query bounds arena (the slot-interned `BoundsTable` of
    /// `pruning.rs`): the object slot is interned once per diamond, and only
    /// the query timestamps inside the diamond's time interval are probed.
    pub fn prune_knn(
        &self,
        times: &[Timestamp],
        query_pos: impl Fn(Timestamp) -> Point,
        k: usize,
    ) -> PruningResult {
        match self.try_prune_knn(times, query_pos, k, |_| Ok::<(), std::convert::Infallible>(()))
        {
            Ok(result) => result,
            Err(never) => match never {},
        }
    }

    /// Governable form of [`Self::prune_knn`]: `guard` is called once per
    /// streamed diamond with the running stream count (1-based) *before* the
    /// diamond is probed; returning `Err` aborts the pruning pass and
    /// propagates the error. Diamonds stream in deterministic R\*-tree order,
    /// so a guard that trips at count `n` always trips on the same diamond.
    pub fn try_prune_knn<E>(
        &self,
        times: &[Timestamp],
        query_pos: impl Fn(Timestamp) -> Point,
        k: usize,
        mut guard: impl FnMut(usize) -> Result<(), E>,
    ) -> Result<PruningResult, E> {
        debug_assert!(times.is_sorted(), "query timestamps must be ascending");
        if times.is_empty() {
            return Ok(PruningResult {
                times: Vec::new(),
                candidates: Vec::new(),
                influencers: Vec::new(),
                prune_distances: Vec::new(),
            });
        }
        let t_from = *times.first().expect("non-empty");
        let t_to = *times.last().expect("non-empty");
        let positions: Vec<Point> = times.iter().map(|&t| query_pos(t)).collect();
        let mut table = BoundsTable::new(times.len());
        let mut streamed = 0usize;
        self.try_for_each_overlapping(t_from, t_to, |diamond| {
            streamed += 1;
            guard(streamed)?;
            // Probe only the query timestamps the diamond actually covers
            // (times are ascending, so the covered ones form a subrange).
            let lo = times.partition_point(|&t| t < diamond.t_start);
            let hi = times.partition_point(|&t| t <= diamond.t_end);
            if lo == hi {
                return Ok(());
            }
            let slot = table.slot(diamond.object);
            for i in lo..hi {
                let rect = diamond
                    .rect_at(times[i])
                    .expect("timestamp inside the diamond's interval");
                table.record_at(slot, i, rect.min_dist(&positions[i]), rect.max_dist(&positions[i]));
            }
            Ok(())
        })?;
        Ok(table.evaluate_knn(times, k))
    }

    /// Convenience wrapper for a static (constant-location) query point.
    pub fn prune_point(&self, times: &[Timestamp], q: Point) -> PruningResult {
        self.prune(times, |_| q)
    }
}

/// Builds the ordered diamond run of one object.
fn build_object_run(
    object: &UncertainObject,
    reach: &ReachabilityIndex,
    reach_key: usize,
    space: &StateSpace,
    memo: &GeometryMemo,
    cfg: &UstTreeConfig,
) -> ObjectRun {
    // Chaos hook: lets the chaos suite crash one build shard mid-flight and
    // prove the scoped fan-out propagates the panic instead of wedging.
    ust_fault::panic_point("index.build.shard");
    let mut run = ObjectRun { diamonds: Vec::new(), segments: 0, peak_frontier: 0 };
    let mut push = |t_start: Timestamp, from_state: StateId, t_end: Timestamp, to_state: StateId| {
        run.segments += 1;
        let geo = memo.geometry(reach, reach_key, space, from_state, to_state, t_end - t_start);
        if let Some(geo) = geo.as_ref() {
            run.peak_frontier = run.peak_frontier.max(geo.peak_frontier);
            run.diamonds.push(Diamond {
                object: object.id(),
                t_start,
                t_end,
                mbr: geo.mbr,
                per_time: cfg.per_timestamp_mbrs.then(|| geo.per_time.clone()),
            });
        }
    };
    if object.num_observations() == 1 {
        // Degenerate segment: the object exists only at its single
        // observation instant.
        let obs = object.observations()[0];
        push(obs.time, obs.state, obs.time, obs.state);
    } else {
        for (from, to) in object.segments() {
            push(from.time, from.state, to.time, to.state);
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectId;
    use ust_markov::CsrMatrix;
    use ust_spatial::StateSpace;
    use ust_trajectory::UncertainObject;

    /// Database over a 1-d line of 10 states at x = 0..9 where objects can
    /// stay or move one step left/right per tic.
    fn line_db(objects: Vec<UncertainObject>) -> TrajectoryDatabase {
        let n = 10usize;
        let space = Arc::new(StateSpace::from_points(
            (0..n).map(|i| Point::new(i as f64, 0.0)).collect(),
        ));
        let rows = (0..n as i64)
            .map(|i| {
                let mut row = vec![(i as u32, 1.0)];
                if i > 0 {
                    row.push((i as u32 - 1, 1.0));
                }
                if (i as usize) < n - 1 {
                    row.push((i as u32 + 1, 1.0));
                }
                row
            })
            .collect();
        let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::stochastic_from_weights(rows)));
        TrajectoryDatabase::with_objects(space, model, objects)
    }

    fn example_db() -> TrajectoryDatabase {
        line_db(vec![
            // Object 1 hovers around x=1.
            UncertainObject::from_pairs(1, vec![(0, 1), (4, 1), (8, 1)]).unwrap(),
            // Object 2 hovers around x=5.
            UncertainObject::from_pairs(2, vec![(0, 5), (4, 5), (8, 5)]).unwrap(),
            // Object 3 sits far away at x=9.
            UncertainObject::from_pairs(3, vec![(0, 9), (4, 9), (8, 9)]).unwrap(),
            // Object 4 only exists late (t in [6, 8]) near x=0.
            UncertainObject::from_pairs(4, vec![(6, 0), (8, 0)]).unwrap(),
        ])
    }

    #[test]
    fn build_creates_one_diamond_per_segment() {
        let db = example_db();
        let tree = UstTree::build(&db);
        // Objects 1-3 have 2 segments each, object 4 has 1.
        assert_eq!(tree.num_diamonds(), 7);
        assert_eq!(tree.num_objects(), 4);
        let stats = tree.build_stats();
        assert_eq!(stats.objects, 4);
        assert_eq!(stats.segments, 7);
        assert_eq!(stats.diamonds, 7);
        assert!(stats.build_threads >= 1);
        assert!(stats.peak_frontier >= 1);
        assert_eq!(stats.reach_memo_hits + stats.reach_memo_misses, 7);
    }

    #[test]
    fn reach_memo_deduplicates_repeated_commutes() {
        // Three objects commuting identically: 1 miss, 5 hits for the
        // (1 -> 1, gap 4) commute plus 1 miss for the distinct one.
        let db = line_db(vec![
            UncertainObject::from_pairs(1, vec![(0, 1), (4, 1), (8, 1)]).unwrap(),
            UncertainObject::from_pairs(2, vec![(0, 1), (4, 1), (8, 1)]).unwrap(),
            UncertainObject::from_pairs(3, vec![(0, 1), (4, 1), (8, 1)]).unwrap(),
            UncertainObject::from_pairs(4, vec![(0, 2), (4, 3)]).unwrap(),
        ]);
        let cfg = UstTreeConfig { build_threads: 1, ..Default::default() };
        let tree = UstTree::build_with(&db, &cfg);
        let stats = tree.build_stats();
        assert_eq!(stats.segments, 7);
        assert_eq!(stats.reach_memo_misses, 2, "two distinct commutes");
        assert_eq!(stats.reach_memo_hits, 5);
        assert!(stats.memo_hit_rate() > 0.7);
    }

    #[test]
    fn memo_and_no_memo_builds_are_identical() {
        let db = example_db();
        let with_memo =
            UstTree::build_with(&db, &UstTreeConfig { build_threads: 1, ..Default::default() });
        let without_memo = UstTree::build_with(
            &db,
            &UstTreeConfig { build_threads: 1, reach_memo: false, ..Default::default() },
        );
        assert_eq!(without_memo.build_stats().reach_memo_hits, 0);
        assert_eq!(with_memo.num_diamonds(), without_memo.num_diamonds());
        for (a, b) in with_memo.diamonds().iter().zip(without_memo.diamonds()) {
            assert_eq!(a.object, b.object);
            assert_eq!((a.t_start, a.t_end), (b.t_start, b.t_end));
            assert_eq!(a.mbr, b.mbr);
            assert_eq!(a.per_time, b.per_time);
        }
    }

    #[test]
    fn diamonds_overlapping_respects_time() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let early: Vec<ObjectId> =
            tree.diamonds_overlapping(0, 3).iter().map(|d| d.object).collect();
        assert!(!early.contains(&4), "object 4 does not exist before t=6");
        let late: Vec<ObjectId> =
            tree.diamonds_overlapping(6, 8).iter().map(|d| d.object).collect();
        assert!(late.contains(&4));
    }

    #[test]
    fn visitor_and_vec_overlap_queries_agree() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let collected: Vec<ObjectId> =
            tree.diamonds_overlapping(2, 7).iter().map(|d| d.object).collect();
        let mut streamed: Vec<ObjectId> = Vec::new();
        tree.for_each_overlapping(2, 7, |d| streamed.push(d.object));
        assert_eq!(collected, streamed, "wrapper and visitor must stream identically");
    }

    #[test]
    fn pruning_near_object_one() {
        let db = example_db();
        let tree = UstTree::build(&db);
        // Query at x=1 over t in [1,3]: object 1 is the only candidate; object
        // 2 can drift at most 3 to x=2 > dmax(o1) bounds? o1 dmax <= 1+3=4,
        // o2 dmin >= 5-3=2 ... both may overlap; the important checks are that
        // the far object 3 is pruned and object 1 is a candidate.
        let result = tree.prune_point(&[1, 2, 3], Point::new(1.0, 0.0));
        assert!(result.is_candidate(1));
        assert!(!result.is_influencer(3), "object 3 can never be within reach");
        assert!(!result.is_candidate(4), "object 4 does not exist in the interval");
        assert!(result.num_candidates() <= result.num_influencers());
    }

    #[test]
    fn pruning_includes_late_object_only_when_alive() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let q = Point::new(0.0, 0.0);
        // Interval [6,8]: object 4 sits exactly at the query, object 1 nearby.
        let result = tree.prune_point(&[6, 7, 8], q);
        assert!(result.is_candidate(4));
        assert!(result.is_influencer(1));
        // Interval [2,3]: object 4 is not alive and must not appear at all.
        let result = tree.prune_point(&[2, 3], q);
        assert!(!result.is_influencer(4));
        assert!(result.is_candidate(1));
    }

    #[test]
    fn pruning_never_discards_true_candidates_vs_bruteforce() {
        // Compare against a brute-force bound computation over the reachable
        // sets (ground truth for the filter step).
        let db = example_db();
        let tree = UstTree::build(&db);
        let times: Vec<Timestamp> = vec![1, 2, 3, 4, 5];
        let q = Point::new(4.0, 0.0);
        let result = tree.prune(&times, |_| q);

        // Brute force: per object per time min/max distance over reachable states.
        let reach = ReachabilityIndex::from_matrix(db.shared_model().matrix_at(0));
        let space = db.state_space();
        let mut table = BoundsTable::new(times.len());
        for o in db.objects() {
            for (a, b) in o.segments() {
                let sets = reach.segment((a.time, a.state), (b.time, b.state));
                for (i, &t) in times.iter().enumerate() {
                    let states = sets.at(t);
                    if states.is_empty() {
                        continue;
                    }
                    let dmin = states
                        .iter()
                        .map(|&s| space.position(s).dist(&q))
                        .fold(f64::INFINITY, f64::min);
                    let dmax = states
                        .iter()
                        .map(|&s| space.position(s).dist(&q))
                        .fold(0.0f64, f64::max);
                    table.record(o.id(), i, dmin, dmax);
                }
            }
        }
        let brute = table.evaluate(&times);
        // The UST-tree bounds are exactly the MBR-based bounds over the same
        // reachable sets, so the classifications must agree on this instance.
        assert_eq!(result.candidates, brute.candidates);
        assert_eq!(result.influencers, brute.influencers);
    }

    #[test]
    fn knn_pruning_keeps_more_objects_than_nn_pruning() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let q = Point::new(1.0, 0.0);
        let times: Vec<Timestamp> = vec![1, 2, 3];
        let k1 = tree.prune_knn(&times, |_| q, 1);
        let k3 = tree.prune_knn(&times, |_| q, 3);
        assert!(k3.num_candidates() >= k1.num_candidates());
        assert!(k3.num_influencers() >= k1.num_influencers());
        // With k equal to the number of alive objects, every alive object is
        // a candidate.
        assert!(k3.is_candidate(1) && k3.is_candidate(2) && k3.is_candidate(3));
    }

    #[test]
    fn empty_time_set_returns_empty_result() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let result = tree.prune_point(&[], Point::new(0.0, 0.0));
        assert!(result.candidates.is_empty());
        assert!(result.influencers.is_empty());
    }

    #[test]
    fn single_observation_objects_are_indexed() {
        let db = line_db(vec![
            UncertainObject::from_pairs(1, vec![(5, 3)]).unwrap(),
            UncertainObject::from_pairs(2, vec![(0, 9), (9, 9)]).unwrap(),
        ]);
        let tree = UstTree::build(&db);
        assert_eq!(tree.num_diamonds(), 2);
        let result = tree.prune_point(&[5], Point::new(3.0, 0.0));
        assert!(result.is_candidate(1));
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let db = example_db();
        let serial =
            UstTree::build_with(&db, &UstTreeConfig { build_threads: 1, ..Default::default() });
        for threads in [2usize, 4] {
            let sharded = UstTree::build_with(
                &db,
                &UstTreeConfig { build_threads: threads, ..Default::default() },
            );
            assert_eq!(serial.num_diamonds(), sharded.num_diamonds());
            for (a, b) in serial.diamonds().iter().zip(sharded.diamonds()) {
                assert_eq!(a.object, b.object);
                assert_eq!((a.t_start, a.t_end), (b.t_start, b.t_end));
                assert_eq!(a.mbr, b.mbr);
                assert_eq!(a.per_time, b.per_time);
            }
        }
    }
}
