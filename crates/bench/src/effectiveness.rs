//! Effectiveness experiments (Figures 11 and 12 of the paper).
//!
//! * **Figure 11** — precision of the probability estimates: the sampling
//!   approach of the paper (SA) and the snapshot competitor \[19\] (SS) are
//!   compared against reference probabilities (REF) obtained with a much
//!   larger sample budget. The paper plots the estimates against the
//!   reference as a scatter plot; the harness reports one row per
//!   (query, object) pair plus aggregated bias/deviation statistics.
//! * **Figure 12** — effectiveness of the model adaptation: the mean distance
//!   between the predicted distribution and the held-out ground-truth position
//!   for the five model variants NO / F / FB / U / FBU, reported per offset
//!   within the observation gap.

use crate::report::Row;
use rustc_hash::FxHashMap;
use ust_core::effectiveness::{evaluate_variant, ModelVariant};
use ust_core::snapshot::{snapshot_exists_nn, snapshot_forall_nn};
use ust_core::{EngineConfig, Query, QueryEngine};
use ust_generator::{Dataset, QueryWorkload};

/// One scatter point of the Figure 11 experiment.
#[derive(Debug, Clone, Copy)]
pub struct ScatterPoint {
    /// Query index within the workload.
    pub query: usize,
    /// Database object.
    pub object: u32,
    /// Reference probability (high-budget sampling).
    pub reference: f64,
    /// Paper's sampling estimate.
    pub sampled: f64,
    /// Snapshot-competitor estimate.
    pub snapshot: f64,
}

/// Result of the Figure 11 experiment: scatter points for P∀NN and P∃NN.
#[derive(Debug, Clone, Default)]
pub struct ScatterOutcome {
    /// Scatter points of the P∀NN estimates.
    pub forall: Vec<ScatterPoint>,
    /// Scatter points of the P∃NN estimates.
    pub exists: Vec<ScatterPoint>,
}

impl ScatterOutcome {
    /// Mean signed error of the given estimates against the reference.
    pub fn mean_bias(points: &[ScatterPoint], snapshot: bool) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        points
            .iter()
            .map(|p| if snapshot { p.snapshot - p.reference } else { p.sampled - p.reference })
            .sum::<f64>()
            / points.len() as f64
    }

    /// Mean absolute error of the given estimates against the reference.
    pub fn mean_abs_error(points: &[ScatterPoint], snapshot: bool) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        points
            .iter()
            .map(|p| {
                if snapshot {
                    (p.snapshot - p.reference).abs()
                } else {
                    (p.sampled - p.reference).abs()
                }
            })
            .sum::<f64>()
            / points.len() as f64
    }
}

/// Runs the Figure 11 precision experiment.
///
/// `sa_samples` is the sample budget of the estimate under test,
/// `ref_samples` the budget of the reference (the paper uses 10⁴ vs 10⁶; the
/// harness scales both down proportionally).
pub fn measure_estimate_precision(
    dataset: &Dataset,
    workload: &QueryWorkload,
    sa_samples: usize,
    ref_samples: usize,
    seed: u64,
) -> ScatterOutcome {
    let sa_engine = QueryEngine::new(
        &dataset.database,
        EngineConfig { num_samples: sa_samples, seed, ..Default::default() },
    );
    let ref_engine = QueryEngine::new(
        &dataset.database,
        EngineConfig { num_samples: ref_samples, seed: seed.wrapping_add(77), ..Default::default() },
    );
    let mut outcome = ScatterOutcome::default();
    for (qi, spec) in workload.queries.iter().enumerate() {
        let query = Query::at_point(spec.location, spec.times.iter().copied())
            .expect("workload queries are well-formed");
        let ref_forall = ref_engine.pforall_nn(&query, 0.0).expect("query succeeds");
        let ref_exists = ref_engine.pexists_nn(&query, 0.0).expect("query succeeds");
        let sa_forall = sa_engine.pforall_nn(&query, 0.0).expect("query succeeds");
        let sa_exists = sa_engine.pexists_nn(&query, 0.0).expect("query succeeds");
        // Snapshot estimates over the influence set's adapted models.
        let (_, influencers) = sa_engine.filter(&query).expect("filter succeeds");
        let models: Vec<_> = influencers
            .iter()
            .map(|&id| (id, sa_engine.adapted_model(id).expect("adaptation succeeds")))
            .collect();
        let ss_forall = snapshot_forall_nn(&models, dataset.database.state_space(), &query);
        let ss_exists = snapshot_exists_nn(&models, dataset.database.state_space(), &query);
        let ss_forall: FxHashMap<u32, f64> =
            ss_forall.into_iter().map(|r| (r.object, r.probability)).collect();
        let ss_exists: FxHashMap<u32, f64> =
            ss_exists.into_iter().map(|r| (r.object, r.probability)).collect();

        for r in &ref_forall.results {
            outcome.forall.push(ScatterPoint {
                query: qi,
                object: r.object,
                reference: r.probability,
                sampled: sa_forall.probability_of(r.object),
                snapshot: ss_forall.get(&r.object).copied().unwrap_or(0.0),
            });
        }
        for r in &ref_exists.results {
            outcome.exists.push(ScatterPoint {
                query: qi,
                object: r.object,
                reference: r.probability,
                sampled: sa_exists.probability_of(r.object),
                snapshot: ss_exists.get(&r.object).copied().unwrap_or(0.0),
            });
        }
    }
    outcome
}

/// Runs the Figure 12 model-adaptation error experiment.
///
/// For up to `max_objects` objects of the dataset, every model variant is
/// evaluated against the held-out ground truth; errors are aggregated by the
/// offset within the observation gap (error is zero at observations and peaks
/// in the middle of the gap). Returns one [`Row`] per offset with one column
/// per variant.
///
/// Each object's evaluation is independent (it runs five model adaptations),
/// so the per-object work fans out across `threads` scoped workers (`0` =
/// available parallelism). Per-object error samples are folded serially in
/// object order afterwards, so the reported means are bit-identical for every
/// thread count.
pub fn measure_model_error(dataset: &Dataset, max_objects: usize, threads: usize) -> Vec<Row> {
    let space = dataset.database.state_space();
    let gap = dataset
        .database
        .objects()
        .first()
        .and_then(|o| o.segments().next().map(|(a, b)| b.time - a.time))
        .unwrap_or(1) as usize;
    let objects = &dataset.database.objects()[..max_objects.min(dataset.database.objects().len())];
    // Per-object error samples `(variant, gap offset, error)`.
    type ErrorSamples = Vec<(&'static str, usize, f64)>;
    let evaluate = |object: &ust_trajectory::UncertainObject| {
        let mut samples: ErrorSamples = Vec::new();
        let Some(truth) = dataset.ground_truth_of(object.id()) else { return samples };
        let model = dataset.database.model_for(object.id());
        let start = object.first_time();
        for &variant in &ModelVariant::ALL {
            let Ok(series) = evaluate_variant(model, object, truth, space, variant) else {
                continue;
            };
            for (t, err) in series.errors {
                samples.push((variant.label(), ((t - start) as usize) % gap.max(1), err));
            }
        }
        samples
    };
    let partials = ust_core::prepare::parallel_map_ordered(objects, threads, evaluate);
    // accumulated[variant][offset] = (sum of errors, count)
    let mut accumulated: FxHashMap<&'static str, Vec<(f64, usize)>> = ModelVariant::ALL
        .iter()
        .map(|v| (v.label(), vec![(0.0, 0usize); gap.max(1)]))
        .collect();
    for samples in partials {
        for (label, offset, err) in samples {
            let acc = accumulated.get_mut(label).expect("all variants present");
            acc[offset].0 += err;
            acc[offset].1 += 1;
        }
    }
    (0..gap.max(1))
        .map(|offset| {
            let mut row = Row::new(format!("offset {offset}"));
            for &variant in &ModelVariant::ALL {
                let (sum, count) = accumulated[variant.label()][offset];
                let mean = if count > 0 { sum / count as f64 } else { 0.0 };
                row = row.with(variant.label(), mean);
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunScale;
    use crate::datasets::{build_queries, build_synthetic, ScaleParams};

    fn tiny_dataset() -> (Dataset, ScaleParams) {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        params.interval_len = 4;
        let ds = build_synthetic(&params, 500, 8.0, 30, 5);
        (ds, params)
    }

    #[test]
    fn scatter_outcome_has_points_and_sane_biases() {
        let (ds, params) = tiny_dataset();
        let queries = build_queries(&ds, &params, 5);
        let outcome = measure_estimate_precision(&ds, &queries, 100, 400, 5);
        // There is at least one qualifying (query, object) pair.
        assert!(!outcome.exists.is_empty());
        for p in outcome.forall.iter().chain(&outcome.exists) {
            assert!((0.0..=1.0).contains(&p.reference));
            assert!((0.0..=1.0).contains(&p.sampled));
            assert!((0.0..=1.0).contains(&p.snapshot));
        }
        let bias = ScatterOutcome::mean_bias(&outcome.forall, false);
        assert!(bias.abs() <= 1.0);
    }

    #[test]
    fn model_error_is_identical_for_any_thread_count() {
        let (ds, _) = tiny_dataset();
        let serial = measure_model_error(&ds, 8, 1);
        let parallel = measure_model_error(&ds, 8, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            for &variant in &ModelVariant::ALL {
                assert_eq!(
                    a.value(variant.label()),
                    b.value(variant.label()),
                    "fan-out must not change the fold order of the error sums"
                );
            }
        }
    }

    #[test]
    fn model_error_rows_cover_the_observation_gap() {
        let (ds, _) = tiny_dataset();
        let rows = measure_model_error(&ds, 10, 0);
        assert_eq!(rows.len(), 10, "observation interval of the quick scale is 10 tics");
        for row in &rows {
            for &variant in &ModelVariant::ALL {
                assert!(row.value(variant.label()).is_some());
            }
        }
        // At offset 0 (an observation instant) the adapted models are exact.
        let fb_at_obs = rows[0].value("FB").unwrap();
        assert!(fb_at_obs < 1e-9);
        // The unadapted model has a larger mean error than FB in the middle of
        // the gap.
        let mid = rows.len() / 2;
        assert!(rows[mid].value("NO").unwrap() >= rows[mid].value("FB").unwrap() - 1e-12);
    }
}
