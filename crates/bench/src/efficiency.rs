//! Efficiency measurements for the P∀NNQ / P∃NNQ experiments
//! (Figures 6, 7, 8 and 9 of the paper).
//!
//! Per query the harness measures, exactly as the paper's plots do:
//!
//! * **TS** — the time to compute the adapted (a-posteriori) transition
//!   matrices of all objects relevant to the query,
//! * **FA** — the time to sample possible worlds and evaluate the P∀NNQ,
//! * **EX** — the time to evaluate the P∃NNQ on the same sampled worlds
//!   (re-sampled with a warm model cache),
//! * **|C(q)|** and **|I(q)|** — the candidate and influence set sizes after
//!   UST-tree pruning.

use ust_core::{EngineConfig, Query, QueryEngine};
use ust_generator::{Dataset, QueryWorkload};

/// Averaged efficiency measurements over a query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct EfficiencyOutcome {
    /// Mean model-adaptation time per query, seconds.
    pub ts_seconds: f64,
    /// Mean P∀NNQ sampling/refinement time per query, seconds.
    pub fa_seconds: f64,
    /// Mean P∃NNQ sampling/refinement time per query, seconds.
    pub ex_seconds: f64,
    /// Mean candidate-set size `|C(q)|`.
    pub candidates: f64,
    /// Mean influence-set size `|I(q)|`.
    pub influencers: f64,
    /// Number of queries measured.
    pub queries: usize,
}

/// Runs the P∀NNQ / P∃NNQ efficiency measurement over a query workload.
///
/// `tau = 0` is used, as in the paper's efficiency experiments, so that no
/// result is cut off by the threshold.
pub fn measure_efficiency(
    dataset: &Dataset,
    workload: &QueryWorkload,
    num_samples: usize,
    seed: u64,
) -> EfficiencyOutcome {
    let config = EngineConfig { num_samples, seed, ..Default::default() };
    let engine = QueryEngine::new(&dataset.database, config);
    let mut out = EfficiencyOutcome::default();
    for spec in &workload.queries {
        let query = Query::at_point(spec.location, spec.times.iter().copied())
            .expect("workload queries are well-formed");
        // Cold model cache: the adaptation time of this query is the TS phase.
        engine.clear_model_cache();
        let forall = engine.pforall_nn(&query, 0.0).expect("query evaluation succeeds");
        // Warm cache: the P∃NNQ measures only the sampling/refinement cost.
        let exists = engine.pexists_nn(&query, 0.0).expect("query evaluation succeeds");
        out.ts_seconds += forall.stats.adaptation_time.as_secs_f64();
        out.fa_seconds += forall.stats.sampling_time.as_secs_f64();
        out.ex_seconds += exists.stats.sampling_time.as_secs_f64();
        out.candidates += forall.stats.candidates as f64;
        out.influencers += forall.stats.influencers as f64;
        out.queries += 1;
    }
    if out.queries > 0 {
        let n = out.queries as f64;
        out.ts_seconds /= n;
        out.fa_seconds /= n;
        out.ex_seconds /= n;
        out.candidates /= n;
        out.influencers /= n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunScale;
    use crate::datasets::{build_queries, build_synthetic, ScaleParams};

    #[test]
    fn efficiency_measurement_produces_sane_numbers() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        let ds = build_synthetic(&params, 600, 8.0, 40, 3);
        let queries = build_queries(&ds, &params, 3);
        let outcome = measure_efficiency(&ds, &queries, 50, 3);
        assert_eq!(outcome.queries, 2);
        assert!(outcome.ts_seconds >= 0.0);
        assert!(outcome.fa_seconds > 0.0);
        assert!(outcome.ex_seconds > 0.0);
        assert!(outcome.influencers >= outcome.candidates);
    }
}
