//! Real-data ingestion harness: T-Drive CSV → map-matched [`Dataset`].
//!
//! `fig09_realdata_vary_objects --csv <path>` and the determinism tests share
//! this pipeline: build the road network of the selected scale, stream and
//! parse the CSV (`ust_generator::tdrive`), snap the fixes onto the network
//! (`ust_generator::map_match`), learn the shared transition matrix from the
//! matched traces, and assemble the [`TrajectoryDatabase`] the query engine
//! runs on. Every step is deterministic: equal file bytes and seed produce a
//! byte-identical database, learned model and query result set at any thread
//! count.

use crate::datasets::ScaleParams;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use ust_core::QueryError;
use ust_generator::map_match::{
    learn_model_from_matches, map_match, GeoFrame, MapMatchConfig, MatchStats,
};
use ust_generator::tdrive::{self, LoadError, LoadOutcome};
use ust_generator::{Dataset, RoadNetworkConfig};
use ust_trajectory::{ObjectId, TrajectoryDatabase};

/// Laplace smoothing used when learning the transition matrix from matched
/// traces (the same value the simulated taxi workload uses).
pub const INGEST_SMOOTHING: f64 = 0.05;

/// The harness georeference: the simulated city is pinned to the
/// [`GeoFrame::beijing`] box (the T-Drive study area), so fixtures rendered
/// with that frame re-ingest losslessly and equal file bytes always mean
/// equal network coordinates — a per-file fitted frame would rescale with
/// the data's bounding box.
pub fn ingest_frame() -> GeoFrame {
    GeoFrame::beijing()
}

/// A dataset ingested from a T-Drive CSV, with ingestion observability.
#[derive(Debug, Clone)]
pub struct IngestedTaxi {
    /// Network, database (map-matched observations) and the interpolated
    /// per-tic reference paths in the `ground_truth` slot.
    pub dataset: Dataset,
    /// Total CSV lines read.
    pub lines: usize,
    /// Typed, line-numbered errors of the malformed rows.
    pub load_errors: Vec<LoadError>,
    /// Per-fix and per-object map-matching counters.
    pub match_stats: MatchStats,
}

/// Ingests an in-memory T-Drive document onto the road network of the given
/// scale (see the module docs for the pipeline).
pub fn ingest_taxi_csv(params: &ScaleParams, csv: &str, seed: u64) -> IngestedTaxi {
    ingest_load_outcome(params, tdrive::parse_str(csv), seed)
}

/// Ingests a T-Drive file from disk, streaming it line by line.
pub fn ingest_taxi_path(
    params: &ScaleParams,
    path: &str,
    seed: u64,
) -> std::io::Result<IngestedTaxi> {
    Ok(ingest_load_outcome(params, tdrive::load_path(path)?, seed))
}

fn ingest_load_outcome(params: &ScaleParams, load: LoadOutcome, seed: u64) -> IngestedTaxi {
    let road = RoadNetworkConfig {
        grid_width: params.taxi_grid,
        grid_height: params.taxi_grid,
        seed,
        ..Default::default()
    };
    let network = road.generate();
    let cfg = MapMatchConfig { frame: Some(ingest_frame()), ..Default::default() };
    let matched = map_match(&network, &load.fixes, &cfg);
    let model = Arc::new(learn_model_from_matches(&network, &matched.objects, INGEST_SMOOTHING));
    let mut ground_truth = FxHashMap::default();
    let mut objects = Vec::with_capacity(matched.objects.len());
    for m in matched.objects {
        ground_truth.insert(m.object.id(), m.path);
        objects.push(m.object);
    }
    let database = TrajectoryDatabase::with_objects(network.space().clone(), model, objects);
    IngestedTaxi {
        dataset: Dataset { network, database, ground_truth },
        lines: load.lines,
        load_errors: load.errors,
        match_stats: matched.stats,
    }
}

/// The first `n` objects of a database (in insertion order — for ingested
/// data: taxis ascending by input id, each taxi's sessions chronological),
/// as a standalone database for one sweep point.
///
/// Requesting more objects than the database holds surfaces a typed
/// [`QueryError::UnknownObject`] naming the first object id beyond the
/// ingested range, instead of panicking — `fig09 --objects N` prints it
/// (together with the requested/ingested counts) and exits cleanly. In the
/// degenerate case where the id space is exhausted (`u32::MAX` is a real
/// id), `u32::MAX` itself is named rather than wrapping onto id `0`, which
/// could alias a present object.
pub fn take_objects(db: &TrajectoryDatabase, n: usize) -> Result<TrajectoryDatabase, QueryError> {
    let ids: Vec<ObjectId> = db.objects().iter().map(|o| o.id()).collect();
    if n > ids.len() {
        let max = ids.iter().copied().max();
        let object = max.map_or(0, |m| m.checked_add(1).unwrap_or(ObjectId::MAX));
        return Err(QueryError::UnknownObject { object });
    }
    db.subset(&ids[..n])
        .map_err(|object| QueryError::UnknownObject { object })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunScale;
    use ust_generator::map_match::GeoFrame;
    use ust_generator::tdrive::render_workload;
    use ust_generator::{ObjectWorkloadConfig, Timestamp};
    use ust_spatial::StateId;
    use ust_trajectory::UncertainObject;

    /// Renders a small deterministic workload on the quick-scale ingest
    /// network and returns it as T-Drive CSV.
    fn quick_csv(seed: u64) -> String {
        let params = ScaleParams::for_scale(RunScale::Quick);
        let road = RoadNetworkConfig {
            grid_width: params.taxi_grid,
            grid_height: params.taxi_grid,
            seed,
            ..Default::default()
        };
        let network = road.generate();
        // Deterministic network walks: each taxi follows generated shortest
        // paths, observed every 4 tics.
        let generated = ust_generator::objects::generate_objects(
            &network,
            &ObjectWorkloadConfig {
                num_objects: 8,
                lifetime: 40,
                horizon: 120,
                observation_interval: 4,
                lag: 1.0,
                standing_fraction: 0.0,
                seed: seed.wrapping_add(7),
            },
            1,
        );
        let objects: Vec<UncertainObject> = generated.into_iter().map(|g| g.object).collect();
        render_workload(network.space(), &objects, &GeoFrame::beijing(), 10, 1_201_900_000)
    }

    #[test]
    fn rendered_workload_reingests_losslessly() {
        let seed = 0;
        let csv = quick_csv(seed);
        let params = ScaleParams::for_scale(RunScale::Quick);
        let ingested = ingest_taxi_csv(&params, &csv, seed);
        assert!(ingested.load_errors.is_empty());
        assert_eq!(ingested.match_stats.objects_matched, 8);
        // Fixes sit exactly on states of the same network, and walks advance
        // at most one hop per tic, so nothing is dropped.
        assert_eq!(ingested.match_stats.dropped_fixes(), 0, "{:?}", ingested.match_stats);
        assert_eq!(ingested.dataset.database.len(), 8);
        assert!(ingested.dataset.database.shared_model().is_valid());
        for o in ingested.dataset.database.objects() {
            let path = ingested.dataset.ground_truth_of(o.id()).expect("path kept");
            assert!(path.consistent_with(&o.observation_pairs()));
        }
    }

    #[test]
    fn ingestion_is_byte_deterministic() {
        let csv = quick_csv(3);
        let params = ScaleParams::for_scale(RunScale::Quick);
        let a = ingest_taxi_csv(&params, &csv, 3);
        let b = ingest_taxi_csv(&params, &csv, 3);
        let obs = |i: &IngestedTaxi| -> Vec<(ObjectId, Vec<(Timestamp, StateId)>)> {
            i.dataset
                .database
                .objects()
                .iter()
                .map(|o| (o.id(), o.observation_pairs()))
                .collect()
        };
        assert_eq!(obs(&a), obs(&b));
        assert_eq!(a.match_stats, b.match_stats);
    }

    #[test]
    fn take_objects_surfaces_unknown_object_instead_of_panicking() {
        let csv = quick_csv(1);
        let params = ScaleParams::for_scale(RunScale::Quick);
        let ingested = ingest_taxi_csv(&params, &csv, 1);
        let db = &ingested.dataset.database;
        let five = take_objects(db, 5).expect("5 of 8 objects exist");
        assert_eq!(five.len(), 5);
        let err = take_objects(db, 9).expect_err("only 8 objects were ingested");
        match err {
            QueryError::UnknownObject { object } => {
                assert_eq!(object, 9, "names the first taxi id beyond the range")
            }
            other => panic!("expected UnknownObject, got {other:?}"),
        }
    }
}
