//! The finite, discrete state space `S` of possible object locations.
//!
//! Following Section 3 of the paper, space is discretized in an
//! application-dependent way (road crossings, RFID tracker positions, grid
//! cells). A [`StateSpace`] is simply an indexed collection of [`Point`]s;
//! a [`StateId`] is an index into it. All higher layers (Markov chains,
//! trajectories, queries) operate on `StateId`s and only go back to geometry
//! through the state space when distances are required.

use crate::point::Point;
use crate::rect::Rect2;

/// Identifier of a discrete state (location) in the state space.
///
/// `u32` comfortably covers the paper's largest configuration (500 000 states)
/// while keeping hot per-state arrays compact.
pub type StateId = u32;

/// The discrete set of possible locations `S = {s_1, ..., s_|S|}`.
#[derive(Debug, Clone, Default)]
pub struct StateSpace {
    positions: Vec<Point>,
}

impl StateSpace {
    /// Creates an empty state space.
    pub fn new() -> Self {
        StateSpace { positions: Vec::new() }
    }

    /// Creates a state space from a list of positions; the `StateId` of each
    /// state is its index in the list.
    pub fn from_points(positions: Vec<Point>) -> Self {
        StateSpace { positions }
    }

    /// Adds a state and returns its id.
    pub fn push(&mut self, p: Point) -> StateId {
        let id = self.positions.len() as StateId;
        self.positions.push(p);
        id
    }

    /// Number of states `|S|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the state space is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of state `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of bounds.
    #[inline]
    pub fn position(&self, s: StateId) -> Point {
        self.positions[s as usize]
    }

    /// Position of state `s`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, s: StateId) -> Option<Point> {
        self.positions.get(s as usize).copied()
    }

    /// All positions, indexed by state id.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Iterator over `(StateId, Point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, Point)> + '_ {
        self.positions.iter().enumerate().map(|(i, p)| (i as StateId, *p))
    }

    /// Euclidean distance between the positions of two states.
    #[inline]
    pub fn dist(&self, a: StateId, b: StateId) -> f64 {
        self.position(a).dist(&self.position(b))
    }

    /// Squared Euclidean distance between the positions of two states.
    #[inline]
    pub fn dist2(&self, a: StateId, b: StateId) -> f64 {
        self.position(a).dist2(&self.position(b))
    }

    /// Euclidean distance between a state and an arbitrary point.
    #[inline]
    pub fn dist_to_point(&self, s: StateId, p: &Point) -> f64 {
        self.position(s).dist(p)
    }

    /// Minimum bounding rectangle of a set of states.
    ///
    /// This is the basic building block of the UST-tree's "diamond"
    /// approximations (Section 6): the MBR of all states reachable during a
    /// time interval.
    pub fn mbr_of(&self, states: impl IntoIterator<Item = StateId>) -> Rect2 {
        let mut r = Rect2::empty();
        for s in states {
            r.extend_point(&self.position(s).coords());
        }
        r
    }

    /// The state closest to `p` (linear scan; intended for tests and small
    /// spaces — workload generators keep their own grid index).
    pub fn nearest_state(&self, p: &Point) -> Option<StateId> {
        self.positions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.dist2(p).total_cmp(&b.dist2(p)))
            .map(|(i, _)| i as StateId)
    }
}

impl FromIterator<Point> for StateSpace {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        StateSpace::from_points(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_space() -> StateSpace {
        StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 2.0),
        ])
    }

    #[test]
    fn push_and_lookup() {
        let mut s = StateSpace::new();
        assert!(s.is_empty());
        let a = s.push(Point::new(1.0, 2.0));
        let b = s.push(Point::new(3.0, 4.0));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.position(b), Point::new(3.0, 4.0));
        assert_eq!(s.get(7), None);
    }

    #[test]
    fn distances() {
        let s = sample_space();
        assert_eq!(s.dist(0, 1), 1.0);
        assert_eq!(s.dist2(0, 3), 8.0);
        assert_eq!(s.dist_to_point(1, &Point::new(1.0, 3.0)), 3.0);
    }

    #[test]
    fn mbr_of_states() {
        let s = sample_space();
        let mbr = s.mbr_of([0, 1, 2]);
        assert_eq!(mbr.min, [0.0, 0.0]);
        assert_eq!(mbr.max, [1.0, 1.0]);
        assert!(s.mbr_of(std::iter::empty()).is_empty());
    }

    #[test]
    fn nearest_state_linear() {
        let s = sample_space();
        assert_eq!(s.nearest_state(&Point::new(1.9, 2.1)), Some(3));
        assert_eq!(s.nearest_state(&Point::new(0.1, -0.1)), Some(0));
        assert_eq!(StateSpace::new().nearest_state(&Point::ORIGIN), None);
    }

    #[test]
    fn from_iterator() {
        let s: StateSpace = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)].into_iter().collect();
        assert_eq!(s.len(), 2);
        let ids: Vec<_> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
