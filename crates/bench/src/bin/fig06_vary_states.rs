//! Figure 6: P∀NNQ / P∃NNQ efficiency while varying the number of states `N`.
//!
//! Paper sweep: N ∈ {10k, 100k, 500k}. Default harness sweep: a proportional
//! reduction (see DESIGN.md §3). Reported series: CPU time of the adaptation
//! phase — serially (`TS1`) and fanned out across the configured worker
//! threads (`TSp`, `--threads N`, `0` = available parallelism) — of the
//! P∀NNQ sampling (FA) and of the P∃NNQ sampling (EX), plus the candidate and
//! influence set sizes |C(q)| and |I(q)| and the per-query cold adaptation
//! count. The `TS1/TSp` ratio is the measured TS-phase speedup.
//!
//! `--store <base>` additionally exercises the on-disk store round trip at
//! every sweep point: the engine state is saved to `<base>-n<N>.ustore`, a
//! second engine is cold-started from the file and its result digest must
//! match the fresh engine's; store size and load time land in the meta.

use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::{measure_ts_phase, try_measure_efficiency_on};
use ust_bench::errors::exit_failure;
use ust_bench::storecheck::store_roundtrip_check;
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;
use ust_core::{EngineConfig, QueryEngine};

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig06_vary_states");
    settings.reject_wal_flags("fig06_vary_states");
    let budget = settings.query_budget();
    let params = ScaleParams::for_scale(settings.scale);
    let threads = resolve_adaptation_threads(settings.adaptation_threads.unwrap_or(0));
    let build_threads = settings.build_threads.unwrap_or(0);
    let sweep: Vec<usize> = match settings.scale {
        RunScale::Quick => vec![1_000, 2_000, 4_000],
        RunScale::Default => vec![2_000, 10_000, 50_000],
        RunScale::Paper => vec![10_000, 100_000, 500_000],
    };
    let mut report = ExperimentReport::new(
        "figure06_vary_states",
        "Efficiency of P∀NNQ/P∃NNQ while varying the number of states N \
         (paper: Figure 6; series TS1 = serial adaptation, TSp = adaptation \
         with the configured thread count, speedup = TS1/TSp, FA/EX in \
         seconds, |C(q)|/|I(q)| in objects, cold = adaptations per query, \
         IDX = UST-tree build seconds at the configured --build-threads)",
    )
    .with_meta("adaptation_threads", threads as f64)
    .with_meta("index_build_threads", ust_index::par::resolve_threads(build_threads) as f64);
    if let Some(ms) = settings.deadline_ms {
        report.set_meta("deadline_ms", ms as f64);
    }
    for n in sweep {
        eprintln!("[fig06] N = {n} (TS threads: {threads})");
        let dataset = build_synthetic(&params, n, params.branching, params.num_objects, settings.seed);
        let queries = build_queries(&dataset, &params, settings.seed);
        // One engine (and one UST-tree build) serves both measurements: the
        // serial TS baseline first — no Monte-Carlo refinement — then the
        // full parallel measurement.
        let config = EngineConfig {
            num_samples: params.num_samples,
            seed: settings.seed,
            adaptation_threads: threads,
            index_build_threads: build_threads,
            ..Default::default()
        };
        let engine = QueryEngine::new(&dataset.database, config.clone());
        let build = *engine.index_build_stats().expect("filter step enabled");
        report.set_meta(format!("index_build_seconds_n{n}"), build.build_time.as_secs_f64());
        report.set_meta(format!("reach_memo_hits_n{n}"), build.reach_memo_hits as f64);
        let ts_serial = measure_ts_phase(&engine, &queries, 1);
        let m = match try_measure_efficiency_on(&engine, &queries, &budget) {
            Ok(m) => m,
            Err(error) => exit_failure("fig06_vary_states", "query budget breached", &error),
        };
        report.set_meta(format!("budget_checkpoints_n{n}"), m.budget_checkpoints);
        report.set_meta(format!("worlds_sampled_n{n}"), m.worlds_sampled);
        report.set_meta(format!("worlds_requested_n{n}"), m.worlds_requested);
        report.set_meta(format!("degraded_queries_n{n}"), m.degraded_queries as f64);
        if let Some(base) = &settings.store_path {
            store_roundtrip_check(
                "fig06_vary_states",
                &mut report,
                base,
                &format!("n{n}"),
                &engine,
                config,
                &queries,
                &m,
            );
        }
        let speedup = if m.ts_seconds > 0.0 { ts_serial / m.ts_seconds } else { 1.0 };
        report.push(
            Row::new(format!("|S|={n}"))
                .with("TS1", ts_serial)
                .with("TSp", m.ts_seconds)
                .with("speedup", speedup)
                .with("FA", m.fa_seconds)
                .with("EX", m.ex_seconds)
                .with("|C(q)|", m.candidates)
                .with("|I(q)|", m.influencers)
                .with("cold", m.cold_adaptations)
                .with("IDX", build.build_time.as_secs_f64()),
        );
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
