//! P001 negative fixture: panic paths in decoder-style code.
//! Findings pinned by `tests/rules_fixtures.rs` — keep line numbers stable.

fn decode(buf: &[u8], at: usize) -> u32 {
    let first = buf.first().copied().unwrap();
    let tagged = buf.get(at).copied().expect("tag present");
    if first == 0 {
        panic!("zero tag");
    }
    let raw = buf[at + 1];
    u32::from(first) + u32::from(tagged) + u32::from(raw)
}

fn reasonless_waiver(buf: &[u8]) -> u8 {
    // lint: allow(P001)
    buf.last().copied().unwrap()
}

fn stale_waiver(x: Option<u8>) -> bool {
    // lint: allow(P001) nothing on this line can panic any more
    x.is_some()
}
