//! Cold-starting a query engine from an on-disk store.
//!
//! [`QueryEngine`] borrows its database, so something has
//! to *own* the state a store file yields. That is [`EngineStore`]: it holds
//! the decoded database, the UST-tree behind an [`Arc`], and the adapted
//! models, and mints borrowing engines on demand. Every engine minted from
//! one store shares the same tree allocation (no per-engine rebuild or
//! clone), and its adaptation cache starts pre-warmed with the stored
//! models — the two expensive start-up phases the store exists to skip.
//!
//! ```no_run
//! use ust_core::{EngineConfig, EngineStore};
//!
//! let store = EngineStore::load("fig06.ustore")?;
//! let engine = store.engine(EngineConfig::default());
//! # Ok::<(), ust_persist::StoreError>(())
//! ```

use crate::engine::{AdaptedModels, EngineConfig, QueryEngine};
use std::path::Path;
use std::sync::Arc;
use ust_index::UstTree;
use ust_persist::{LoadedStore, StoreError, StoreStats};
use ust_trajectory::TrajectoryDatabase;

/// An owning, ready-to-query view of a decoded store: the counterpart of
/// [`QueryEngine::save_store`](crate::QueryEngine::save_store).
#[derive(Debug)]
pub struct EngineStore {
    database: TrajectoryDatabase,
    index: Option<Arc<UstTree>>,
    models: AdaptedModels,
    stats: StoreStats,
}

impl EngineStore {
    /// Reads, decodes and validates a store file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(Self::from_loaded(ust_persist::read_store(path)?))
    }

    /// Decodes and validates a store from raw bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Ok(Self::from_loaded(ust_persist::decode_store(bytes)?))
    }

    fn from_loaded(loaded: LoadedStore) -> Self {
        EngineStore {
            database: loaded.database,
            index: loaded.index.map(Arc::new),
            models: loaded.models,
            stats: loaded.stats,
        }
    }

    /// The decoded trajectory database.
    pub fn database(&self) -> &TrajectoryDatabase {
        &self.database
    }

    /// The decoded UST-tree, if the store carried one. The `Arc` is the same
    /// allocation every minted engine shares.
    pub fn index(&self) -> Option<&Arc<UstTree>> {
        self.index.as_ref()
    }

    /// The decoded adapted models, sorted by object id.
    pub fn models(&self) -> &AdaptedModels {
        &self.models
    }

    /// Size, shape and load timing of the store this was decoded from.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Mints a query engine over the stored state. If the store carries a
    /// UST-tree and `config.use_index` is set, the engine shares it (no
    /// rebuild); a tree-less store with `use_index` set falls back to
    /// building one, exactly like [`QueryEngine::new`]. The engine's
    /// adaptation cache starts pre-warmed with the stored models.
    pub fn engine(&self, config: EngineConfig) -> QueryEngine<'_> {
        let engine = match (&self.index, config.use_index) {
            (Some(tree), true) => QueryEngine::with_index(&self.database, tree.clone(), config),
            _ => QueryEngine::new(&self.database, config),
        };
        engine.preload_models(self.models.iter().cloned());
        engine
    }
}
