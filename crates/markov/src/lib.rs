//! # ust-markov
//!
//! Markov-chain machinery for uncertain moving-object trajectories
//! (Niedermayer et al., PVLDB 7(3), 2013, Sections 3 and 5).
//!
//! An uncertain trajectory is modelled as a stochastic process over a discrete
//! time domain `T = {0, ..., n}` and a discrete state space `S`: the position
//! `o(t)` of object `o` at time `t` is a random variable, and the process is a
//! (first-order, possibly time-inhomogeneous) Markov chain with transition
//! matrices `M^o(t)`. The database additionally stores a set of *observations*
//! `Θ^o = {(t_i, θ_i)}` — certain positions at certain times.
//!
//! The crate provides:
//!
//! * [`sparse`] — compressed sparse-row transition matrices and sparse
//!   probability distributions (the state spaces of the paper have up to
//!   500 000 states, so dense `|S|²` matrices are out of the question),
//! * [`model`] — the a-priori Markov model `M^o(t)` (homogeneous or
//!   time-varying),
//! * [`adapt`] — the *forward–backward model adaptation* of Section 5.2
//!   (Algorithm 2): Bayesian inference that turns the a-priori chain plus the
//!   observations into an a-posteriori chain `F^o(t)` whose realisations are
//!   exactly the possible trajectories consistent with all observations,
//! * [`alias`] — precomputed Walker/Vose alias tables in flat CSR arenas:
//!   the O(1)-per-draw Monte-Carlo sampling kernel built once per adapted
//!   model,
//! * [`reachability`] — support-only propagation used to compute the
//!   "diamond" space-time approximations indexed by the UST-tree (Section 6),
//! * [`dense`] — a small dense reference implementation of Algorithm 2 used to
//!   cross-check the sparse code in tests and as an ablation baseline.

pub mod adapt;
pub mod alias;
pub mod dense;
pub mod model;
pub mod reachability;
pub mod sparse;

pub use adapt::{AdaptError, AdaptedModel, ModelAdaptation};
pub use alias::AliasKernel;
pub use model::{MarkovModel, TransitionModel};
pub use reachability::ReachabilityIndex;
pub use sparse::{CsrMatrix, SparseDist};

/// Discrete timestamp ("tic") in the database time horizon.
///
/// The paper discretises time application-dependently (e.g. one tic every
/// 10 seconds for the taxi data); all algorithms only rely on the ordinal
/// structure.
pub type Timestamp = u32;

/// Re-export of the state identifier used throughout the workspace.
pub use ust_spatial::StateId;
