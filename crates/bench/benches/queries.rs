//! Micro-benchmark: end-to-end P∀NNQ / P∃NNQ / P∀kNNQ evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use ust_bench::args::RunScale;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_core::{EngineConfig, Query, QueryEngine};

fn bench_queries(c: &mut Criterion) {
    let mut params = ScaleParams::for_scale(RunScale::Quick);
    params.num_queries = 2;
    let dataset = build_synthetic(&params, 2_000, 8.0, 200, 11);
    let workload = build_queries(&dataset, &params, 11);
    let engine = QueryEngine::new(
        &dataset.database,
        EngineConfig { num_samples: 500, ..Default::default() },
    );
    // Warm the model cache so the benchmark isolates the sampling phase.
    engine.prepare_all().expect("adaptation succeeds");
    let spec = &workload.queries[0];
    let query = Query::at_point(spec.location, spec.times.iter().copied()).unwrap();

    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.bench_function("pforall_nn_500_worlds", |b| {
        b.iter(|| engine.pforall_nn(&query, 0.0).unwrap())
    });
    group.bench_function("pexists_nn_500_worlds", |b| {
        b.iter(|| engine.pexists_nn(&query, 0.0).unwrap())
    });
    group.bench_function("pforall_3nn_500_worlds", |b| {
        b.iter(|| engine.pforall_knn(&query, 3, 0.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
