//! PCNN (continuous query) experiments — Figures 13 and 14 of the paper.
//!
//! The harness measures, per query,
//!
//! * **TS** — the model-adaptation time,
//! * **SA** — the time to sample possible worlds and run the Apriori lattice
//!   of Algorithm 1 over the candidate timestamp sets,
//! * **#Timestamp Sets** — the size of the (unprocessed) result set, i.e. the
//!   number of qualifying `(object, timestamp set)` pairs.

use std::time::Instant;
use ust_core::{EngineConfig, Query, QueryEngine};
use ust_generator::{Dataset, QueryWorkload};

/// Averaged PCNN measurements over a query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcnnMeasurement {
    /// Mean model-adaptation time per query, seconds.
    pub ts_seconds: f64,
    /// Mean sampling + lattice time per query, seconds.
    pub sa_seconds: f64,
    /// Mean number of qualifying `(object, timestamp set)` pairs per query.
    pub timestamp_sets: f64,
    /// Mean number of candidate sets validated by the Apriori expansion.
    pub candidate_sets: f64,
    /// Number of queries measured.
    pub queries: usize,
}

/// Runs the PCNN efficiency measurement for a given threshold `tau`.
pub fn measure_pcnn(
    dataset: &Dataset,
    workload: &QueryWorkload,
    num_samples: usize,
    tau: f64,
    seed: u64,
) -> PcnnMeasurement {
    let config = EngineConfig { num_samples, seed, ..Default::default() };
    let engine = QueryEngine::new(&dataset.database, config);
    let mut out = PcnnMeasurement::default();
    for spec in &workload.queries {
        let query = Query::at_point(spec.location, spec.times.iter().copied())
            .expect("workload queries are well-formed");
        engine.clear_model_cache();
        let start = Instant::now();
        let outcome = engine.pcnn(&query, tau).expect("query evaluation succeeds");
        let total = start.elapsed().as_secs_f64();
        let ts = outcome.stats.adaptation_time.as_secs_f64();
        out.ts_seconds += ts;
        out.sa_seconds += (total - ts).max(0.0);
        out.timestamp_sets += outcome.total_result_sets() as f64;
        out.candidate_sets += outcome.candidate_sets_evaluated as f64;
        out.queries += 1;
    }
    if out.queries > 0 {
        let n = out.queries as f64;
        out.ts_seconds /= n;
        out.sa_seconds /= n;
        out.timestamp_sets /= n;
        out.candidate_sets /= n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunScale;
    use crate::datasets::{build_queries, build_synthetic, ScaleParams};

    #[test]
    fn pcnn_measurement_reflects_the_threshold() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        params.interval_len = 5;
        let ds = build_synthetic(&params, 500, 8.0, 30, 9);
        let queries = build_queries(&ds, &params, 9);
        let low_tau = measure_pcnn(&ds, &queries, 100, 0.1, 9);
        let high_tau = measure_pcnn(&ds, &queries, 100, 0.9, 9);
        assert_eq!(low_tau.queries, 2);
        assert!(low_tau.sa_seconds > 0.0);
        // A lower threshold can only produce more (or equally many) result sets.
        assert!(low_tau.timestamp_sets >= high_tau.timestamp_sets);
    }
}
