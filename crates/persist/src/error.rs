//! Typed errors of the store decoder.
//!
//! Every way a store can be rejected has its own variant, so tests can pin
//! the exact failure of each hostile fixture and callers can render precise
//! diagnostics. The decoder guarantees that hostile bytes produce one of
//! these — never a panic, and never an allocation proportional to a length
//! field that the input cannot back.

/// Why a byte stream was rejected by the store decoder (or why a store file
/// could not be written/read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file could not be read or written. The message is the rendered
    /// [`std::io::Error`] (which itself is neither `Clone` nor `PartialEq`).
    Io {
        /// Rendered operating-system error.
        message: String,
    },
    /// The first eight bytes are not the store magic [`crate::format::MAGIC`].
    BadMagic,
    /// The format version is newer than this decoder understands. Stores are
    /// never decoded "best effort" across versions.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The input ended before the announced structure was complete.
    Truncated {
        /// Which structure the decoder was reading when the bytes ran out.
        context: &'static str,
    },
    /// A section's FNV-1a content checksum does not match its payload.
    ChecksumMismatch {
        /// Section id (see `crate::format::section` for the known ids).
        section: u32,
    },
    /// A section announced a payload length larger than the remaining input.
    SectionOverflow {
        /// Section id as found in the frame.
        section: u32,
        /// The announced payload length.
        length: u64,
    },
    /// An element count would require more bytes than the remaining input —
    /// rejected *before* any allocation is sized from it.
    CountOverflow {
        /// Which counted structure announced the impossible count.
        context: &'static str,
        /// The announced element count.
        count: u64,
    },
    /// A value violates a structural invariant (unsorted entries, state id
    /// out of range, non-finite rectangle, mismatched lengths, ...).
    Malformed {
        /// Which invariant was violated.
        context: &'static str,
    },
    /// The same section id appears twice.
    DuplicateSection {
        /// The repeated section id.
        section: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section id.
        section: u32,
    },
    /// A section id this decoder does not know. Unknown sections are an
    /// error, not skipped: within one format version the section set is
    /// closed, so an unknown id means corruption.
    UnknownSection {
        /// The unknown section id.
        section: u32,
    },
    /// The store was decoded from raw bytes, not loaded from a file, so a
    /// WAL append or checkpoint has no durable home to go to.
    NotFileBacked,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { message } => write!(f, "store I/O failed: {message}"),
            StoreError::BadMagic => write!(f, "not a pnnq store (bad magic bytes)"),
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported store format version {found} (this build reads version {})",
                    crate::format::FORMAT_VERSION
                )
            }
            StoreError::Truncated { context } => {
                write!(f, "store truncated while reading {context}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section} (corrupted payload)")
            }
            StoreError::SectionOverflow { section, length } => {
                write!(
                    f,
                    "section {section} announces {length} payload bytes beyond the end of the store"
                )
            }
            StoreError::CountOverflow { context, count } => {
                write!(f, "{context} announces {count} elements beyond the end of the store")
            }
            StoreError::Malformed { context } => write!(f, "malformed store: {context}"),
            StoreError::DuplicateSection { section } => {
                write!(f, "section {section} appears twice")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
            StoreError::UnknownSection { section } => {
                write!(f, "unknown section id {section}")
            }
            StoreError::NotFileBacked => {
                write!(f, "store is not file-backed: appends and checkpoints need a store file")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io { message: e.to_string() }
    }
}
