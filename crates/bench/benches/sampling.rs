//! Micro-benchmark: trajectory sampling throughput.
//!
//! Measures the a-posteriori sampler (one attempt per trajectory) against the
//! segment-wise rejection sampler on the same object, and the cost of drawing
//! complete possible worlds.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ust_generator::{ObjectWorkloadConfig, SyntheticNetworkConfig};
use ust_markov::{AdaptedModel, AliasKernel, SparseDist};
use ust_sampling::{
    PosteriorSampler, SegmentedSampler, WorldBlock, WorldSampler, WORLD_BLOCK_WIDTH,
};

fn setup() -> (ust_markov::MarkovModel, Vec<Vec<(u32, u32)>>) {
    let network = SyntheticNetworkConfig { num_states: 2_000, branching_factor: 8.0, seed: 3 }
        .generate();
    let model = network.distance_weighted_model(1.0);
    let objects = ust_generator::objects::generate_objects(
        &network,
        &ObjectWorkloadConfig {
            num_objects: 16,
            lifetime: 60,
            horizon: 100,
            observation_interval: 10,
            lag: 0.5,
            standing_fraction: 0.0,
            seed: 4,
        },
        0,
    );
    let obs = objects.iter().map(|g| g.object.observation_pairs()).collect();
    (model, obs)
}

fn bench_posterior_sampler(c: &mut Criterion) {
    let (model, obs) = setup();
    let adapted = AdaptedModel::build(&model, &obs[0]).expect("consistent");
    let mut group = c.benchmark_group("sampling");
    group.bench_function("posterior_sample_one_trajectory", |b| {
        let sampler = PosteriorSampler::new(&adapted);
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| sampler.sample(&mut rng))
    });
    group.bench_function("segmented_rejection_one_trajectory", |b| {
        let sampler = SegmentedSampler::new(&model, &obs[0]);
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| sampler.sample_one(&mut rng, 1_000_000))
    });
    group.finish();
}

fn bench_alias_vs_cdf_draws(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for support in [4usize, 32, 256] {
        let mut seed_rng = StdRng::seed_from_u64(support as u64);
        let mut row = SparseDist::from_pairs(
            (0..support as u32).map(|s| (s, seed_rng.gen::<f64>() + 0.01)),
        );
        assert!(row.normalize());
        let kernel = AliasKernel::from_steps([[(0u32, &row)]]);
        group.bench_function(format!("alias_draw_support_{support}"), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| kernel.sample(0, 0, rng.gen::<f64>()).expect("non-empty row"))
        });
        group.bench_function(format!("cdf_draw_support_{support}"), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| row.sample_with(rng.gen::<f64>()).expect("non-empty row"))
        });
    }
    group.finish();
}

fn bench_world_sampler(c: &mut Criterion) {
    let (model, obs) = setup();
    let models: Vec<_> = obs
        .iter()
        .enumerate()
        .map(|(i, o)| (i as u32, Arc::new(AdaptedModel::build(&model, o).expect("consistent"))))
        .collect();
    let sampler = WorldSampler::from_models(models);
    let mut group = c.benchmark_group("sampling");
    group.bench_function("sample_world_16_objects", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sampler.sample_world(&mut rng))
    });
    let horizon = sampler.models().iter().map(|(_, m)| m.end()).max().unwrap_or(0);
    group.bench_function("sample_block_64_worlds_16_objects", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = WorldBlock::for_sampler(&sampler, horizon, WORLD_BLOCK_WIDTH);
        b.iter(|| block.fill(&mut rng, WORLD_BLOCK_WIDTH))
    });
    group.finish();
}

criterion_group!(benches, bench_posterior_sampler, bench_alias_vs_cdf_draws, bench_world_sampler);
criterion_main!(benches);
