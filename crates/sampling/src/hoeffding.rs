//! Hoeffding bounds for the Monte-Carlo estimates.
//!
//! The event "object `o` is a (∀/∃) nearest neighbor of `q`" is a Bernoulli
//! random variable per sampled world; its probability is estimated by the
//! sample mean. Hoeffding's inequality (\[29\] in the paper) bounds the
//! estimation error: with `n` samples,
//!
//! ```text
//! P(|p̂ - p| ≥ ε) ≤ 2 · exp(-2 n ε²)
//! ```
//!
//! so `n ≥ ln(2/δ) / (2 ε²)` samples guarantee an absolute error below `ε`
//! with confidence `1 - δ`.

/// Number of samples needed so that the estimate deviates from the true
/// probability by at most `epsilon` with probability at least `1 - delta`.
///
/// # Panics
/// Panics if `epsilon` or `delta` are not in `(0, 1)`.
pub fn required_samples(epsilon: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0f64 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// The half-width `ε` of the two-sided confidence interval achievable with `n`
/// samples at confidence `1 - delta`.
///
/// # Panics
/// Panics if `n == 0` or `delta` is not in `(0, 1)`.
pub fn confidence_radius(n: usize, delta: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0f64 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Clamped confidence interval `[p̂ - ε, p̂ + ε]` for an estimate `p_hat` from
/// `n` samples at confidence `1 - delta`.
pub fn confidence_interval(p_hat: f64, n: usize, delta: f64) -> (f64, f64) {
    let eps = confidence_radius(n, delta);
    ((p_hat - eps).max(0.0), (p_hat + eps).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_formula() {
        // Classic textbook value: eps = 0.01, delta = 0.05 -> ~18445 samples.
        let n = required_samples(0.01, 0.05);
        assert!((18_400..=18_500).contains(&n), "n = {n}");
        // The paper's default of 10k samples per object gives eps ~ 0.0136 at 95%.
        let eps = confidence_radius(10_000, 0.05);
        assert!((0.0135..0.0137).contains(&eps), "eps = {eps}");
    }

    #[test]
    fn more_samples_tighten_the_interval() {
        assert!(confidence_radius(1_000, 0.05) > confidence_radius(10_000, 0.05));
        assert!(required_samples(0.005, 0.05) > required_samples(0.01, 0.05));
        assert!(required_samples(0.01, 0.01) > required_samples(0.01, 0.1));
    }

    #[test]
    fn interval_is_clamped_to_probabilities() {
        let (lo, hi) = confidence_interval(0.001, 100, 0.05);
        assert_eq!(lo, 0.0);
        assert!(hi <= 1.0);
        let (lo, hi) = confidence_interval(0.999, 100, 0.05);
        assert!(lo >= 0.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn roundtrip_consistency() {
        let eps = 0.02;
        let delta = 0.05;
        let n = required_samples(eps, delta);
        assert!(confidence_radius(n, delta) <= eps + 1e-9);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        required_samples(0.0, 0.05);
    }
}
