//! Fixture-corpus tests: one negative/positive pair per rule, with every
//! expected finding pinned to its exact rule ID and line (the same style as
//! the generator's `tdrive_golden.rs`). The negative fixtures are the CI
//! known-bad inputs; the positive fixtures prove the rules accept the
//! idioms the workspace actually uses (typed errors, drain-then-sort,
//! literal indexing, waivers).

use std::path::PathBuf;

use ust_lint::check_file_all_rules;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Asserts `name` produces exactly `expected` as `(rule, line)` pairs.
fn assert_findings(name: &str, expected: &[(&str, usize)]) {
    let findings = check_file_all_rules(&fixture(name), name).expect("fixture readable");
    let got: Vec<(String, usize)> =
        findings.iter().map(|f| (f.rule.clone(), f.line)).collect();
    let want: Vec<(String, usize)> =
        expected.iter().map(|&(r, l)| (r.to_string(), l)).collect();
    assert_eq!(got, want, "findings for {name}: {findings:#?}");
}

#[test]
fn d001_unordered_hash_iteration() {
    assert_findings("d001_bad.rs", &[("D001", 10), ("D001", 17)]);
    assert_findings("d001_ok.rs", &[]);
}

#[test]
fn p001_panic_paths_in_decoder_code() {
    assert_findings(
        "p001_bad.rs",
        &[
            ("P001", 5),
            ("P001", 6),
            ("P001", 8),
            ("P001", 10),
            ("W000", 15),
            ("W001", 20),
        ],
    );
    assert_findings("p001_ok.rs", &[]);
}

#[test]
fn a001_unchecked_allocation_sizes() {
    assert_findings("a001_bad.rs", &[("A001", 6)]);
    assert_findings("a001_ok.rs", &[]);
}

#[test]
fn t001_wall_clock_reads() {
    assert_findings("t001_bad.rs", &[("T001", 5), ("T001", 9)]);
    assert_findings("t001_ok.rs", &[]);
}

#[test]
fn u001_unsafe_even_in_tests() {
    assert_findings("u001_bad.rs", &[("U001", 5), ("U001", 13)]);
    assert_findings("u001_ok.rs", &[]);
}
