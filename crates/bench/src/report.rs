//! Tabular experiment reports.
//!
//! Every figure binary produces an [`ExperimentReport`]: a list of rows, one
//! per x-axis value of the corresponding paper figure, each carrying the
//! measured series values (CPU times, candidate counts, error metrics, ...).
//! Reports are printed as aligned text tables and can be serialised to JSON.

use crate::json::Json;

/// One row of a report: an x-axis label plus named measured values.
#[derive(Debug, Clone)]
pub struct Row {
    /// X-axis label (e.g. `"|S| = 10000"`).
    pub label: String,
    /// Named series values in column order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row { label: label.into(), values: Vec::new() }
    }

    /// Appends a named value and returns `self` (builder style).
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.values.push((name.into(), value));
        self
    }

    /// Looks up a value by series name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// A complete experiment report.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. `"figure06_vary_states"`).
    pub name: String,
    /// Human-readable description of the experiment and its axes.
    pub description: String,
    /// Run-level metadata that applies to every row (e.g. the TS-phase thread
    /// count, or a whole-phase wall-clock time). Serialised as a `"meta"`
    /// object in the JSON report.
    pub meta: Vec<(String, f64)>,
    /// Measured rows.
    pub rows: Vec<Row>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        ExperimentReport {
            name: name.into(),
            description: description.into(),
            meta: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Records a run-level metadata value (builder style).
    pub fn with_meta(mut self, name: impl Into<String>, value: f64) -> Self {
        self.set_meta(name, value);
        self
    }

    /// Records a run-level metadata value.
    pub fn set_meta(&mut self, name: impl Into<String>, value: f64) {
        self.meta.push((name.into(), value));
    }

    /// Renders the report as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n# {}\n", self.name, self.description));
        for (name, value) in &self.meta {
            out.push_str(&format!("# {name} = {value}\n"));
        }
        if self.rows.is_empty() {
            out.push_str("(no rows)\n");
            return out;
        }
        // Column headers from the first row (all rows share the series).
        let headers: Vec<&str> =
            self.rows[0].values.iter().map(|(n, _)| n.as_str()).collect();
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("x".len()))
            .max()
            .unwrap_or(1);
        let col_width = headers.iter().map(|h| h.len().max(12)).collect::<Vec<_>>();
        out.push_str(&format!("{:<label_width$}", "x"));
        for (h, w) in headers.iter().zip(&col_width) {
            out.push_str(&format!("  {h:>w$}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<label_width$}", row.label));
            for ((_, v), w) in row.values.iter().zip(&col_width) {
                out.push_str(&format!("  {:>w$.6}", v));
            }
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.to_table());
    }

    /// Serialises the report to pretty JSON. Rows become objects with the
    /// row label under `"label"` and the series under a nested `"values"`
    /// object (nesting keeps a series that is itself named `"label"` from
    /// colliding with the row label).
    pub fn to_json(&self) -> String {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                let values = row
                    .values
                    .iter()
                    .map(|(name, v)| (name.clone(), Json::Number(*v)))
                    .collect();
                Json::object([
                    ("label", Json::String(row.label.clone())),
                    ("values", Json::Object(values)),
                ])
            })
            .collect();
        let meta = self.meta.iter().map(|(n, v)| (n.clone(), Json::Number(*v))).collect();
        Json::object([
            ("name", Json::String(self.name.clone())),
            ("description", Json::String(self.description.clone())),
            ("meta", Json::Object(meta)),
            ("rows", Json::Array(rows)),
        ])
        .to_pretty()
    }

    /// Writes the JSON report to a file if a path is given.
    pub fn maybe_write_json(&self, path: &Option<String>) -> std::io::Result<()> {
        if let Some(path) = path {
            std::fs::write(path, self.to_json())?;
            eprintln!("wrote JSON report to {path}");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("fig_test", "description");
        r.push(Row::new("|S|=10k").with("TS", 1.5).with("FA", 0.5));
        r.push(Row::new("|S|=100k").with("TS", 12.0).with("FA", 3.25));
        r
    }

    #[test]
    fn row_lookup() {
        let row = Row::new("x").with("a", 1.0).with("b", 2.0);
        assert_eq!(row.value("a"), Some(1.0));
        assert_eq!(row.value("c"), None);
    }

    #[test]
    fn table_contains_headers_and_values() {
        let table = sample().to_table();
        assert!(table.contains("fig_test"));
        assert!(table.contains("TS"));
        assert!(table.contains("FA"));
        assert!(table.contains("|S|=100k"));
        assert!(table.contains("12.0"));
    }

    #[test]
    fn json_roundtrip_contains_rows() {
        let json = sample().to_json();
        let value = Json::parse(&json).unwrap();
        assert_eq!(*value.get("name"), "fig_test");
        let rows = value.get("rows").as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(*rows[1].get("label"), "|S|=100k");
        assert_eq!(*rows[1].get("values").get("TS"), 12.0);
    }

    #[test]
    fn meta_values_reach_table_and_json() {
        let report = sample().with_meta("threads", 4.0);
        let table = report.to_table();
        assert!(table.contains("# threads = 4"));
        let value = Json::parse(&report.to_json()).unwrap();
        assert_eq!(*value.get("meta").get("threads"), 4.0);
    }

    #[test]
    fn json_survives_a_series_named_label() {
        let mut r = ExperimentReport::new("collision", "series named label");
        r.push(Row::new("x0").with("label", 1.0));
        let value = Json::parse(&r.to_json()).expect("no duplicate keys");
        let row = &value.get("rows").as_array().unwrap()[0];
        assert_eq!(*row.get("label"), "x0");
        assert_eq!(*row.get("values").get("label"), 1.0);
    }

    #[test]
    fn empty_report_renders() {
        let r = ExperimentReport::new("empty", "d");
        assert!(r.to_table().contains("(no rows)"));
    }
}
