//! The `lint.toml` configuration: rule scopes and per-path waivers.
//!
//! The parser covers exactly the TOML subset the checked-in `lint.toml`
//! uses — `key = "string"`, `key = ["array", "of", "strings"]` (single- or
//! multi-line), `[section]` tables and `[[waiver]]` array-of-tables — with a
//! typed [`ConfigError`] for everything else. A hand-rolled parser keeps the
//! linter dependency-free, which matters: it must build before (and
//! independently of) the code it checks.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Where a rule applies. An empty `paths` list means "everywhere the walker
/// visits"; `exclude` always wins over `paths`.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Path prefixes (workspace-relative, `/`-separated) the rule covers.
    pub paths: Vec<String>,
    /// Path prefixes carved out of the rule's coverage.
    pub exclude: Vec<String>,
}

/// A checked-in exemption: `rule` does not fire under `path`. Unlike inline
/// `// lint: allow(...)` comments these cover whole files or directories, so
/// every one must carry a reason.
#[derive(Debug, Clone)]
pub struct ConfigWaiver {
    /// Path prefix the waiver covers.
    pub path: String,
    /// The waived rule id (e.g. `"P001"`).
    pub rule: String,
    /// Why the exemption is sound.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path prefixes the walker skips entirely (on top of the built-in
    /// `target`/`vendor`/`.git` skips).
    pub exclude: Vec<String>,
    /// Per-rule scopes, keyed by rule id.
    pub rules: BTreeMap<String, RuleScope>,
    /// Path-level waivers.
    pub waivers: Vec<ConfigWaiver>,
}

/// Why a `lint.toml` could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending text (0 for file-level problems).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        #[derive(PartialEq)]
        enum Section {
            Root,
            Rule(String),
            Waiver,
        }
        let mut section = Section::Root;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                if name.trim() != "waiver" {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown array-of-tables [[{}]]", name.trim()),
                    });
                }
                config.waivers.push(ConfigWaiver {
                    path: String::new(),
                    rule: String::new(),
                    reason: String::new(),
                });
                section = Section::Waiver;
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim();
                if let Some(rule) = name.strip_prefix("rule.") {
                    config.rules.entry(rule.to_string()).or_default();
                    section = Section::Rule(rule.to_string());
                } else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown section [{name}]"),
                    });
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, found {line:?}"),
                });
            };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming until the closing bracket.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    value.push(' ');
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated array for key {key:?}"),
                    });
                }
            }
            apply_key(&mut config, &section, &key, &value, lineno)?;
            fn apply_key(
                config: &mut Config,
                section: &Section,
                key: &str,
                value: &str,
                lineno: usize,
            ) -> Result<(), ConfigError> {
                match section {
                    Section::Root => match key {
                        "exclude" => {
                            config.exclude = parse_string_array(value, lineno)?;
                            Ok(())
                        }
                        _ => Err(ConfigError {
                            line: lineno,
                            message: format!("unknown top-level key {key:?}"),
                        }),
                    },
                    Section::Rule(rule) => {
                        let scope = config.rules.entry(rule.clone()).or_default();
                        match key {
                            "paths" => {
                                scope.paths = parse_string_array(value, lineno)?;
                                Ok(())
                            }
                            "exclude" => {
                                scope.exclude = parse_string_array(value, lineno)?;
                                Ok(())
                            }
                            _ => Err(ConfigError {
                                line: lineno,
                                message: format!("unknown [rule.{rule}] key {key:?}"),
                            }),
                        }
                    }
                    Section::Waiver => {
                        let Some(waiver) = config.waivers.last_mut() else {
                            return Err(ConfigError {
                                line: lineno,
                                message: "waiver key outside [[waiver]]".to_string(),
                            });
                        };
                        let text = parse_string(value, lineno)?;
                        match key {
                            "path" => waiver.path = text,
                            "rule" => waiver.rule = text,
                            "reason" => waiver.reason = text,
                            _ => {
                                return Err(ConfigError {
                                    line: lineno,
                                    message: format!("unknown [[waiver]] key {key:?}"),
                                })
                            }
                        }
                        Ok(())
                    }
                }
            }
        }
        for (i, w) in config.waivers.iter().enumerate() {
            if w.path.is_empty() || w.rule.is_empty() || w.reason.is_empty() {
                return Err(ConfigError {
                    line: 0,
                    message: format!(
                        "waiver #{} must set path, rule and reason (a reasonless \
                         exemption is not auditable)",
                        i + 1
                    ),
                });
            }
        }
        Ok(config)
    }

    /// Loads and parses `<path>`.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Config::parse(&text)
    }

    /// Whether `rule` applies to the workspace-relative `path` under this
    /// configuration. Unconfigured rules apply everywhere.
    pub fn rule_applies(&self, rule: &str, path: &str) -> bool {
        match self.rules.get(rule) {
            None => true,
            Some(scope) => {
                let included =
                    scope.paths.is_empty() || scope.paths.iter().any(|p| prefix_match(p, path));
                included && !scope.exclude.iter().any(|p| prefix_match(p, path))
            }
        }
    }

    /// The configured waiver covering `(rule, path)`, if any.
    pub fn waiver_for(&self, rule: &str, path: &str) -> Option<&ConfigWaiver> {
        self.waivers
            .iter()
            .find(|w| w.rule == rule && prefix_match(&w.path, path))
    }
}

/// Component-aligned prefix match: `crates/persist` covers
/// `crates/persist/src/codec.rs` but not `crates/persist2/...`.
pub fn prefix_match(prefix: &str, path: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix
        || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

fn strip_comment(line: &str) -> &str {
    // `#` only opens a comment outside quotes; the values here never contain
    // `#`, but be precise anyway.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError {
            line: lineno,
            message: format!("expected a double-quoted string, found {v:?}"),
        })
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(ConfigError {
            line: lineno,
            message: format!("expected an array of strings, found {v:?}"),
        });
    };
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let text = r#"
# top comment
exclude = ["vendor", "target"]

[rule.P001]
paths = [
    "crates/persist/src",
    "crates/generator/src/tdrive.rs",
]
exclude = ["crates/persist/src/fuzz.rs"]

[[waiver]]
path = "crates/persist/src/store.rs"
rule = "T001"
reason = "load_time is observability metadata"
"#;
        let c = Config::parse(text).unwrap();
        assert_eq!(c.exclude, vec!["vendor", "target"]);
        assert!(c.rule_applies("P001", "crates/persist/src/codec.rs"));
        assert!(!c.rule_applies("P001", "crates/persist/src/fuzz.rs"));
        assert!(!c.rule_applies("P001", "crates/core/src/engine.rs"));
        assert!(c.rule_applies("U001", "anything/at/all.rs"), "unconfigured rules are global");
        assert!(c.waiver_for("T001", "crates/persist/src/store.rs").is_some());
        assert!(c.waiver_for("T001", "crates/persist/src/codec.rs").is_none());
    }

    #[test]
    fn prefix_matching_is_component_aligned() {
        assert!(prefix_match("crates/persist", "crates/persist/src/x.rs"));
        assert!(prefix_match("crates/persist/src/x.rs", "crates/persist/src/x.rs"));
        assert!(!prefix_match("crates/persist", "crates/persist2/src/x.rs"));
    }

    #[test]
    fn errors_are_typed_and_line_numbered() {
        let err = Config::parse("nonsense\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = Config::parse("[rule.P001]\nbogus = \"x\"\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Config::parse("[[waiver]]\npath = \"x\"\nrule = \"P001\"\n").unwrap_err();
        assert!(err.message.contains("reason"), "{}", err.message);
    }
}
