//! U001 positive fixture: mentioning `unsafe` in comments, strings, or the
//! `unsafe_code` lint name is not using it. Must produce zero findings.

// The word unsafe in a comment is fine.
#![forbid(unsafe_code)]

fn describe() -> &'static str {
    "this crate contains no unsafe blocks"
}
