//! Streaming loader and writer for T-Drive-format trajectory CSV.
//!
//! The paper's real-data experiments use the Microsoft T-Drive taxi logs:
//! one GPS fix per line in the format
//!
//! ```text
//! id,datetime,longitude,latitude
//! 1,2008-02-02 15:36:08,116.51172,39.92123
//! ```
//!
//! This module implements the *data-organisation* half of the real-data
//! pipeline (DESIGN.md §4): a streaming, line-by-line parser that never holds
//! more than one line in memory, typed and line-numbered [`LoadError`]s for
//! every way a row can be malformed (so ingestion failures are diagnosable
//! and testable), and the inverse direction — a deterministic fixture writer
//! that renders a workload of [`UncertainObject`]s back into T-Drive CSV so
//! the full parse→match→query pipeline can be exercised offline in tests and
//! CI. Timestamps are civil `YYYY-MM-DD HH:MM:SS` datetimes converted to Unix
//! seconds with a proleptic-Gregorian day count (no external time crate is
//! available offline).
//!
//! Snapping fixes onto a road network and discretising their timestamps into
//! engine tics is the job of the sibling [`mod@crate::map_match`] module.

use crate::map_match::GeoFrame;
use std::io::BufRead;
use std::path::Path;
use ust_spatial::StateSpace;
use ust_trajectory::{ObjectId, UncertainObject};

/// One raw GPS fix parsed from a T-Drive row, before map matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawFix {
    /// Taxi identifier (first CSV field).
    pub object: ObjectId,
    /// Fix time as Unix seconds (parsed from the civil datetime field).
    pub seconds: i64,
    /// WGS84 longitude in degrees.
    pub lon: f64,
    /// WGS84 latitude in degrees.
    pub lat: f64,
}

/// Everything that can be wrong with one T-Drive row.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadErrorKind {
    /// The row did not have exactly four comma-separated fields.
    FieldCount {
        /// Number of fields found.
        found: usize,
    },
    /// The id field was not a non-negative integer fitting an [`ObjectId`].
    BadObjectId {
        /// The offending field text.
        field: String,
    },
    /// The datetime field was not a valid `YYYY-MM-DD HH:MM:SS` civil time
    /// (wrong shape, or an out-of-range month/day/hour/minute/second).
    BadTimestamp {
        /// The offending field text.
        field: String,
    },
    /// A coordinate field was not a finite decimal number.
    BadCoordinate {
        /// The offending field text.
        field: String,
    },
    /// The longitude was outside `[-180, 180]` degrees.
    LonOutOfRange {
        /// The parsed longitude.
        lon: f64,
    },
    /// The latitude was outside `[-90, 90]` degrees.
    LatOutOfRange {
        /// The parsed latitude.
        lat: f64,
    },
    /// The line was not valid UTF-8; the stream continues with the next line.
    InvalidUtf8,
    /// The underlying reader failed; the stream ends after this error.
    Io {
        /// The I/O error message.
        message: String,
    },
}

/// A typed, line-numbered ingestion error.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What was wrong with the line.
    pub kind: LoadErrorKind,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            LoadErrorKind::FieldCount { found } => {
                write!(f, "expected 4 comma-separated fields, found {found}")
            }
            LoadErrorKind::BadObjectId { field } => write!(f, "bad object id {field:?}"),
            LoadErrorKind::BadTimestamp { field } => {
                write!(f, "bad datetime {field:?} (expected YYYY-MM-DD HH:MM:SS)")
            }
            LoadErrorKind::BadCoordinate { field } => write!(f, "bad coordinate {field:?}"),
            LoadErrorKind::LonOutOfRange { lon } => {
                write!(f, "longitude {lon} outside [-180, 180]")
            }
            LoadErrorKind::LatOutOfRange { lat } => {
                write!(f, "latitude {lat} outside [-90, 90]")
            }
            LoadErrorKind::InvalidUtf8 => write!(f, "line is not valid UTF-8"),
            LoadErrorKind::Io { message } => write!(f, "read failed: {message}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Parses one T-Drive row (without its trailing newline).
pub fn parse_line(line_number: usize, line: &str) -> Result<RawFix, LoadError> {
    let err = |kind| LoadError { line: line_number, kind };
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != 4 {
        return Err(err(LoadErrorKind::FieldCount { found: fields.len() }));
    }
    let object: ObjectId = parse_object_id(fields[0])
        .ok_or_else(|| err(LoadErrorKind::BadObjectId { field: fields[0].to_string() }))?;
    let seconds = parse_datetime(fields[1])
        .ok_or_else(|| err(LoadErrorKind::BadTimestamp { field: fields[1].to_string() }))?;
    let lon = parse_coordinate(fields[2])
        .ok_or_else(|| err(LoadErrorKind::BadCoordinate { field: fields[2].to_string() }))?;
    let lat = parse_coordinate(fields[3])
        .ok_or_else(|| err(LoadErrorKind::BadCoordinate { field: fields[3].to_string() }))?;
    if !(-180.0..=180.0).contains(&lon) {
        return Err(err(LoadErrorKind::LonOutOfRange { lon }));
    }
    if !(-90.0..=90.0).contains(&lat) {
        return Err(err(LoadErrorKind::LatOutOfRange { lat }));
    }
    Ok(RawFix { object, seconds, lon, lat })
}

fn parse_object_id(field: &str) -> Option<ObjectId> {
    if field.is_empty() || !field.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    field.parse::<ObjectId>().ok()
}

fn parse_coordinate(field: &str) -> Option<f64> {
    field.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// A streaming iterator over the fixes of a T-Drive CSV reader.
///
/// Yields one `Result<RawFix, LoadError>` per non-empty line; malformed rows
/// — including lines that are not valid UTF-8 — produce an error and the
/// stream continues with the next line, so a single bad row never aborts an
/// ingestion run. Only a true I/O failure yields one [`LoadErrorKind::Io`]
/// error and ends the stream. Lines are read as raw bytes (one line in
/// memory at a time), so a corrupted byte mid-file loses exactly that line,
/// not the rest of the file.
#[derive(Debug)]
pub struct FixStream<R> {
    reader: R,
    buf: Vec<u8>,
    line: usize,
    done: bool,
}

impl<R: BufRead> FixStream<R> {
    /// Creates a stream over the given reader.
    pub fn new(reader: R) -> Self {
        FixStream { reader, buf: Vec::new(), line: 0, done: false }
    }

    /// Number of lines consumed so far (including empty and malformed ones).
    pub fn lines_read(&self) -> usize {
        self.line
    }
}

/// Upper bound on transparent retries of a read that failed with
/// [`std::io::ErrorKind::Interrupted`]. Signal-interrupted reads made no
/// progress by contract, so retrying is always safe; the bound keeps a
/// signal storm — or an armed `tdrive.read.interrupted` fault with a large
/// `times` — from looping forever.
const MAX_READ_RETRIES: usize = 8;

/// Reads one `\n`-terminated line into `buf`, transparently retrying up to
/// [`MAX_READ_RETRIES`] signal interruptions. `read_until` appends, so a
/// retry after a partial read continues the same line instead of losing the
/// bytes already buffered. The two fault points feed the chaos suite:
/// `tdrive.read.interrupted` takes the retry path, `tdrive.read.line` is a
/// hard read error that surfaces as a trailing [`LoadErrorKind::Io`] row.
fn read_line_retrying<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    let mut retries = 0usize;
    loop {
        let result = match ust_fault::inject("tdrive.read.interrupted") {
            Some(message) => Err(std::io::Error::new(std::io::ErrorKind::Interrupted, message)),
            None => match ust_fault::inject("tdrive.read.line") {
                Some(message) => Err(std::io::Error::other(message)),
                None => reader.read_until(b'\n', buf),
            },
        };
        match result {
            Err(error)
                if error.kind() == std::io::ErrorKind::Interrupted
                    && retries < MAX_READ_RETRIES =>
            {
                retries += 1;
            }
            other => return other,
        }
    }
}

impl<R: BufRead> Iterator for FixStream<R> {
    type Item = Result<RawFix, LoadError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.buf.clear();
            match read_line_retrying(&mut self.reader, &mut self.buf) {
                Ok(0) => self.done = true,
                Ok(_) => {
                    self.line += 1;
                    let Ok(text) = std::str::from_utf8(&self.buf) else {
                        return Some(Err(LoadError {
                            line: self.line,
                            kind: LoadErrorKind::InvalidUtf8,
                        }));
                    };
                    let line = text.trim();
                    if line.is_empty() {
                        continue;
                    }
                    return Some(parse_line(self.line, line));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(LoadError {
                        line: self.line + 1,
                        kind: LoadErrorKind::Io { message: e.to_string() },
                    }));
                }
            }
        }
        None
    }
}

/// The collected result of loading a whole T-Drive input.
#[derive(Debug, Clone, Default)]
pub struct LoadOutcome {
    /// Successfully parsed fixes, in input order.
    pub fixes: Vec<RawFix>,
    /// Typed errors of the malformed rows, in input order.
    pub errors: Vec<LoadError>,
    /// Total number of input lines (valid + malformed + empty).
    pub lines: usize,
}

impl LoadOutcome {
    /// Collects a [`FixStream`].
    pub fn collect<R: BufRead>(mut stream: FixStream<R>) -> Self {
        let mut out = LoadOutcome::default();
        for item in &mut stream {
            match item {
                Ok(fix) => out.fixes.push(fix),
                Err(e) => out.errors.push(e),
            }
        }
        out.lines = stream.lines_read();
        out
    }
}

/// Parses an in-memory T-Drive document.
pub fn parse_str(csv: &str) -> LoadOutcome {
    LoadOutcome::collect(FixStream::new(csv.as_bytes()))
}

/// Streams a T-Drive file from disk. Opening errors are returned directly;
/// read errors mid-file become a trailing [`LoadErrorKind::Io`] entry.
pub fn load_path(path: impl AsRef<Path>) -> std::io::Result<LoadOutcome> {
    // Chaos hook: a failed open (permissions, vanished file) before any
    // bytes stream (see tests/chaos.rs at the workspace root).
    if let Some(message) = ust_fault::inject("tdrive.open") {
        return Err(std::io::Error::other(message));
    }
    let file = std::fs::File::open(path)?;
    Ok(LoadOutcome::collect(FixStream::new(std::io::BufReader::new(file))))
}

/// Groups fixes by object id (ascending) and sorts each group
/// chronologically. Both sorts are stable, so rows of one taxi that share a
/// timestamp keep their input order and interleaved ("shuffled") ids are
/// untangled deterministically.
pub fn group_fixes(fixes: &[RawFix]) -> Vec<(ObjectId, Vec<RawFix>)> {
    let mut groups: Vec<(ObjectId, Vec<RawFix>)> = Vec::new();
    let mut sorted: Vec<&RawFix> = fixes.iter().collect();
    sorted.sort_by_key(|f| f.object);
    for fix in sorted {
        match groups.last_mut() {
            Some((id, group)) if *id == fix.object => group.push(*fix),
            _ => groups.push((fix.object, vec![*fix])),
        }
    }
    for (_, group) in &mut groups {
        group.sort_by_key(|f| f.seconds);
    }
    groups
}

// ---------------------------------------------------------------------------
// Civil datetime <-> Unix seconds
// ---------------------------------------------------------------------------

const SECONDS_PER_DAY: i64 = 86_400;

fn is_leap_year(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: i64) -> i64 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 of the civil date (proleptic Gregorian; Howard
/// Hinnant's `days_from_civil` algorithm).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = mp + if mp < 10 { 3 } else { -9 };
    (y + i64::from(m <= 2), m, d)
}

/// Parses a `YYYY-MM-DD HH:MM:SS` civil datetime into Unix seconds,
/// validating every component (including month lengths and leap years).
pub fn parse_datetime(field: &str) -> Option<i64> {
    let b = field.as_bytes();
    if b.len() != 19
        || b[4] != b'-'
        || b[7] != b'-'
        || b[10] != b' '
        || b[13] != b':'
        || b[16] != b':'
    {
        return None;
    }
    let digits = |range: std::ops::Range<usize>| -> Option<i64> {
        let mut v: i64 = 0;
        for &c in b.get(range)? {
            if !c.is_ascii_digit() {
                return None;
            }
            v = v * 10 + i64::from(c - b'0');
        }
        Some(v)
    };
    let (y, mo, d) = (digits(0..4)?, digits(5..7)?, digits(8..10)?);
    let (h, mi, s) = (digits(11..13)?, digits(14..16)?, digits(17..19)?);
    if !(1..=12).contains(&mo) || d < 1 || d > days_in_month(y, mo) {
        return None;
    }
    if h > 23 || mi > 59 || s > 59 {
        return None;
    }
    Some(days_from_civil(y, mo, d) * SECONDS_PER_DAY + h * 3_600 + mi * 60 + s)
}

/// Renders Unix seconds back to the `YYYY-MM-DD HH:MM:SS` format
/// (inverse of [`parse_datetime`]).
pub fn format_datetime(seconds: i64) -> String {
    let days = seconds.div_euclid(SECONDS_PER_DAY);
    let sod = seconds.rem_euclid(SECONDS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}",
        sod / 3_600,
        (sod % 3_600) / 60,
        sod % 60
    )
}

// ---------------------------------------------------------------------------
// Fixture writer
// ---------------------------------------------------------------------------

/// Renders one fix as a T-Drive row (5 decimal places, like the original
/// dataset).
pub fn format_fix(fix: &RawFix) -> String {
    format!(
        "{},{},{:.5},{:.5}",
        fix.object,
        format_datetime(fix.seconds),
        fix.lon,
        fix.lat
    )
}

/// Renders fixes as a T-Drive CSV document (one row per fix, trailing
/// newline). The output is byte-deterministic in the input order.
pub fn render_fixes<'a>(fixes: impl IntoIterator<Item = &'a RawFix>) -> String {
    let mut out = String::new();
    for fix in fixes {
        out.push_str(&format_fix(fix));
        out.push('\n');
    }
    out
}

/// Deterministic fixture writer: renders a workload of uncertain objects back
/// into T-Drive format, so tests and CI can exercise the full
/// parse→match→query pipeline without any external dataset.
///
/// Each observation `(t, θ)` becomes one CSV row: the object's id, the civil
/// datetime of `origin_seconds + t · tick_seconds`, and the position of state
/// `θ` projected from network coordinates to lon/lat through `frame`. Objects
/// are rendered in the order given, observations chronologically; the output
/// is byte-identical across runs and platforms.
pub fn render_workload(
    space: &StateSpace,
    objects: &[UncertainObject],
    frame: &GeoFrame,
    tick_seconds: i64,
    origin_seconds: i64,
) -> String {
    assert!(tick_seconds > 0, "tick_seconds must be positive");
    let mut out = String::new();
    for object in objects {
        for obs in object.observations() {
            let (lon, lat) = frame.to_lonlat(&space.position(obs.state));
            let fix = RawFix {
                object: object.id(),
                seconds: origin_seconds + i64::from(obs.time) * tick_seconds,
                lon,
                lat,
            };
            out.push_str(&format_fix(&fix));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canonical_tdrive_row() {
        let fix = parse_line(1, "1,2008-02-02 15:36:08,116.51172,39.92123").unwrap();
        assert_eq!(fix.object, 1);
        assert_eq!(fix.lon, 116.51172);
        assert_eq!(fix.lat, 39.92123);
        assert_eq!(format_datetime(fix.seconds), "2008-02-02 15:36:08");
    }

    #[test]
    fn datetime_roundtrips_and_validates() {
        for s in [
            "1970-01-01 00:00:00",
            "2008-02-29 23:59:59", // leap day
            "1969-12-31 23:59:59", // negative epoch seconds
            "2100-02-28 12:00:00", // 2100 is not a leap year
        ] {
            let secs = parse_datetime(s).unwrap_or_else(|| panic!("{s} should parse"));
            assert_eq!(format_datetime(secs), s, "roundtrip of {s}");
        }
        assert_eq!(parse_datetime("1970-01-01 00:00:01"), Some(1));
        assert_eq!(parse_datetime("1969-12-31 23:59:59"), Some(-1));
        for bad in [
            "2008-02-30 00:00:00", // no Feb 30
            "2100-02-29 00:00:00", // 2100 is not a leap year
            "2008-13-01 00:00:00", // month 13
            "2008-00-10 00:00:00", // month 0
            "2008-01-00 00:00:00", // day 0
            "2008-01-01 24:00:00", // hour 24
            "2008-01-01 00:60:00", // minute 60
            "2008-01-01 00:00:60", // second 60
            "2008-1-01 00:00:00",  // wrong shape
            "2008-01-01T00:00:00", // ISO separator
            "2008-01-01 00:00:0x", // non-digit
        ] {
            assert_eq!(parse_datetime(bad), None, "{bad} must be rejected");
        }
    }

    #[test]
    fn malformed_rows_yield_typed_line_numbered_errors() {
        let csv = "1,2008-02-02 15:36:08,116.5,39.9\n\
                   1,2008-02-02 15:46:08,116.5\n\
                   x,2008-02-02 15:46:08,116.5,39.9\n\
                   2,2008-02-30 15:46:08,116.5,39.9\n\
                   2,2008-02-02 15:46:08,abc,39.9\n\
                   2,2008-02-02 15:46:08,216.5,39.9\n\
                   2,2008-02-02 15:46:08,116.5,99.9\n";
        let out = parse_str(csv);
        assert_eq!(out.fixes.len(), 1);
        assert_eq!(out.lines, 7);
        assert_eq!(
            out.errors,
            vec![
                LoadError { line: 2, kind: LoadErrorKind::FieldCount { found: 3 } },
                LoadError { line: 3, kind: LoadErrorKind::BadObjectId { field: "x".into() } },
                LoadError {
                    line: 4,
                    kind: LoadErrorKind::BadTimestamp { field: "2008-02-30 15:46:08".into() },
                },
                LoadError {
                    line: 5,
                    kind: LoadErrorKind::BadCoordinate { field: "abc".into() },
                },
                LoadError { line: 6, kind: LoadErrorKind::LonOutOfRange { lon: 216.5 } },
                LoadError { line: 7, kind: LoadErrorKind::LatOutOfRange { lat: 99.9 } },
            ]
        );
    }

    #[test]
    fn empty_lines_and_crlf_are_tolerated() {
        let csv = "\n1,2008-02-02 15:36:08,116.5,39.9\r\n\n2,2008-02-02 15:36:09,116.6,39.8\n";
        let out = parse_str(csv);
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.fixes.len(), 2);
        assert_eq!(out.lines, 4);
    }

    #[test]
    fn non_finite_coordinates_are_rejected() {
        let err = parse_line(9, "1,2008-02-02 15:36:08,NaN,39.9").unwrap_err();
        assert_eq!(err.line, 9);
        assert_eq!(err.kind, LoadErrorKind::BadCoordinate { field: "NaN".into() });
        let err = parse_line(9, "1,2008-02-02 15:36:08,116.5,inf").unwrap_err();
        assert_eq!(err.kind, LoadErrorKind::BadCoordinate { field: "inf".into() });
    }

    #[test]
    fn invalid_utf8_loses_one_line_not_the_rest_of_the_file() {
        let mut bytes = b"1,2008-02-02 15:36:08,116.5,39.9\n".to_vec();
        bytes.extend_from_slice(b"2,2008-02-02 15:36:08,116.5,\xff\xfe39.9\n");
        bytes.extend_from_slice(b"3,2008-02-02 15:36:08,116.5,39.9\n");
        let out = LoadOutcome::collect(FixStream::new(bytes.as_slice()));
        assert_eq!(out.lines, 3);
        assert_eq!(out.fixes.len(), 2, "the rows after the corrupted one survive");
        assert_eq!(out.fixes[1].object, 3);
        assert_eq!(out.errors, vec![LoadError { line: 2, kind: LoadErrorKind::InvalidUtf8 }]);
    }

    #[test]
    fn grouping_untangles_shuffled_ids_and_sorts_by_time() {
        let csv = "7,2008-02-02 15:36:28,116.52,39.92\n\
                   3,2008-02-02 15:36:08,116.51,39.91\n\
                   7,2008-02-02 15:36:08,116.50,39.90\n\
                   3,2008-02-02 15:36:18,116.53,39.93\n";
        let out = parse_str(csv);
        let groups = group_fixes(&out.fixes);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 3);
        assert_eq!(groups[1].0, 7);
        for (_, group) in &groups {
            assert_eq!(group.len(), 2);
            assert!(group[0].seconds < group[1].seconds);
        }
        assert_eq!(groups[1].1[0].lon, 116.50, "taxi 7's fixes are re-sorted by time");
    }

    #[test]
    fn fix_rendering_roundtrips_through_the_parser() {
        let fixes = vec![
            RawFix { object: 12, seconds: 1_201_966_568, lon: 116.51172, lat: 39.92123 },
            RawFix { object: 3, seconds: 1_201_966_600, lon: -0.12345, lat: 51.5 },
        ];
        let csv = render_fixes(&fixes);
        let out = parse_str(&csv);
        assert!(out.errors.is_empty());
        assert_eq!(out.fixes, fixes);
    }

    #[test]
    fn load_path_streams_a_file() {
        let path = std::env::temp_dir().join("pnnq_tdrive_loader_smoke.csv");
        std::fs::write(&path, "5,2008-02-02 15:36:08,116.5,39.9\nbad line\n").unwrap();
        let out = load_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(out.fixes.len(), 1);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].line, 2);
        assert!(load_path("/nonexistent/pnnq/tdrive.csv").is_err());
    }
}
