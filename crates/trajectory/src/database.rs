//! The uncertain trajectory database `D`.
//!
//! A database bundles the discrete state space, the a-priori Markov model(s)
//! and the uncertain objects (observation sets). In the paper's experiments
//! all objects share a single model ("Due to the sparsity of data, we assume
//! that a-priori, all objects utilize the same Markov model M", Section 7);
//! per-object overrides are supported for the general case of Section 3.1.

use crate::object::{ObjectId, Observation, ObservationError, UncertainObject};
use crate::Timestamp;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use ust_markov::MarkovModel;
use ust_spatial::StateSpace;

/// Ingested-observation statistics of a [`TrajectoryDatabase`].
///
/// Real-data workloads arrive through the T-Drive ingestion pipeline with
/// unpredictable shape (objects dropped by map matching, ragged observation
/// counts, data-defined horizons), so the database exposes what was actually
/// ingested. `fig09 --csv` records these in its report meta and the
/// ingestion tests assert them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatabaseSummary {
    /// Number of objects `|D|`.
    pub objects: usize,
    /// Total number of observations over all objects.
    pub observations: usize,
    /// Smallest per-object observation count (zero for an empty database).
    pub min_observations: usize,
    /// Largest per-object observation count (zero for an empty database).
    pub max_observations: usize,
    /// Earliest and latest observation time, or `None` for an empty database.
    pub horizon: Option<(Timestamp, Timestamp)>,
}

impl DatabaseSummary {
    /// Mean observations per object (zero for an empty database).
    pub fn mean_observations(&self) -> f64 {
        if self.objects == 0 {
            0.0
        } else {
            self.observations as f64 / self.objects as f64
        }
    }
}

/// A database of uncertain moving-object trajectories.
#[derive(Debug, Clone)]
pub struct TrajectoryDatabase {
    state_space: Arc<StateSpace>,
    shared_model: Arc<MarkovModel>,
    objects: Vec<UncertainObject>,
    index_by_id: FxHashMap<ObjectId, usize>,
    object_models: FxHashMap<ObjectId, Arc<MarkovModel>>,
}

impl TrajectoryDatabase {
    /// Creates an empty database over the given state space and shared
    /// a-priori model.
    pub fn new(state_space: Arc<StateSpace>, shared_model: Arc<MarkovModel>) -> Self {
        TrajectoryDatabase {
            state_space,
            shared_model,
            objects: Vec::new(),
            index_by_id: FxHashMap::default(),
            object_models: FxHashMap::default(),
        }
    }

    /// Creates a database and bulk-inserts the given objects.
    pub fn with_objects(
        state_space: Arc<StateSpace>,
        shared_model: Arc<MarkovModel>,
        objects: Vec<UncertainObject>,
    ) -> Self {
        let mut db = Self::new(state_space, shared_model);
        for o in objects {
            db.insert(o);
        }
        db
    }

    /// Inserts an object. An existing object with the same id is replaced.
    pub fn insert(&mut self, object: UncertainObject) {
        match self.index_by_id.get(&object.id()) {
            Some(&idx) => self.objects[idx] = object,
            None => {
                self.index_by_id.insert(object.id(), self.objects.len());
                self.objects.push(object);
            }
        }
    }

    /// Appends observations to an existing object, or inserts a brand-new
    /// object when the id is unknown. Returns `true` when a new object was
    /// created. Appended times must be strictly increasing and, for an
    /// existing object, strictly after its last observation; on error nothing
    /// is applied. This is the database-level entry point of the incremental
    /// (WAL-backed) ingest path.
    pub fn append_observations(
        &mut self,
        id: ObjectId,
        observations: &[Observation],
    ) -> Result<bool, ObservationError> {
        match self.index_by_id.get(&id).copied() {
            Some(idx) => {
                self.objects[idx].append_observations(observations)?;
                Ok(false)
            }
            None => {
                self.insert(UncertainObject::new(id, observations.to_vec())?);
                Ok(true)
            }
        }
    }

    /// Registers an object-specific a-priori model, overriding the shared one.
    pub fn set_object_model(&mut self, id: ObjectId, model: Arc<MarkovModel>) {
        self.object_models.insert(id, model);
    }

    /// All per-object model overrides, sorted by object id. The sort makes the
    /// listing deterministic (the overrides live in a hash map), which the
    /// on-disk store relies on for canonical, byte-reproducible encodes.
    pub fn model_overrides(&self) -> Vec<(ObjectId, &Arc<MarkovModel>)> {
        let mut out: Vec<(ObjectId, &Arc<MarkovModel>)> =
            self.object_models.iter().map(|(&id, m)| (id, m)).collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Number of objects `|D|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the database contains no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// All objects, in insertion order.
    #[inline]
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    /// The object with the given id.
    pub fn object(&self, id: ObjectId) -> Option<&UncertainObject> {
        self.index_by_id.get(&id).map(|&i| &self.objects[i])
    }

    /// The a-priori model of the given object (its override if registered,
    /// otherwise the shared model).
    pub fn model_for(&self, id: ObjectId) -> &Arc<MarkovModel> {
        self.object_models.get(&id).unwrap_or(&self.shared_model)
    }

    /// The shared a-priori model.
    #[inline]
    pub fn shared_model(&self) -> &Arc<MarkovModel> {
        &self.shared_model
    }

    /// The discrete state space.
    #[inline]
    pub fn state_space(&self) -> &Arc<StateSpace> {
        &self.state_space
    }

    /// Earliest and latest observation time over all objects, or `None` for an
    /// empty database.
    pub fn time_horizon(&self) -> Option<(Timestamp, Timestamp)> {
        let min = self.objects.iter().map(|o| o.first_time()).min()?;
        let max = self.objects.iter().map(|o| o.last_time()).max()?;
        Some((min, max))
    }

    /// Ids of all objects whose covered interval includes every timestamp of
    /// `[from, to]` — the only objects that can possibly be a ∀-nearest
    /// neighbor over that interval.
    pub fn objects_covering(&self, from: Timestamp, to: Timestamp) -> Vec<ObjectId> {
        self.objects
            .iter()
            .filter(|o| o.covers_interval(from, to))
            .map(|o| o.id())
            .collect()
    }

    /// Ids of all objects whose covered interval overlaps `[from, to]` — these
    /// can influence NN probabilities at some timestamp of the interval.
    pub fn objects_overlapping(&self, from: Timestamp, to: Timestamp) -> Vec<ObjectId> {
        self.objects
            .iter()
            .filter(|o| o.first_time() <= to && o.last_time() >= from)
            .map(|o| o.id())
            .collect()
    }

    /// Total number of observations stored in the database.
    pub fn total_observations(&self) -> usize {
        self.objects.iter().map(|o| o.num_observations()).sum()
    }

    /// Ingested-observation statistics (see [`DatabaseSummary`]).
    pub fn summary(&self) -> DatabaseSummary {
        let counts = self.objects.iter().map(|o| o.num_observations());
        DatabaseSummary {
            objects: self.len(),
            observations: self.total_observations(),
            min_observations: counts.clone().min().unwrap_or(0),
            max_observations: counts.max().unwrap_or(0),
            horizon: self.time_horizon(),
        }
    }

    /// A new database over the same state space and shared model containing
    /// exactly the given objects, in the given order (per-object model
    /// overrides of the selected objects are carried along). Errs with the
    /// first id that is not present — the ingestion harness turns that into
    /// a typed `UnknownObject` query error instead of panicking.
    pub fn subset(&self, ids: &[ObjectId]) -> Result<TrajectoryDatabase, ObjectId> {
        let mut db = TrajectoryDatabase::new(self.state_space.clone(), self.shared_model.clone());
        for &id in ids {
            let object = self.object(id).ok_or(id)?;
            db.insert(object.clone());
            if let Some(model) = self.object_models.get(&id) {
                db.object_models.insert(id, model.clone());
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::CsrMatrix;
    use ust_spatial::Point;

    fn db() -> TrajectoryDatabase {
        let space = Arc::new(StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]));
        let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::identity(3)));
        let objects = vec![
            UncertainObject::from_pairs(1, vec![(0, 0), (10, 1)]).unwrap(),
            UncertainObject::from_pairs(2, vec![(5, 1), (15, 2)]).unwrap(),
            UncertainObject::from_pairs(3, vec![(20, 2), (30, 0)]).unwrap(),
        ];
        TrajectoryDatabase::with_objects(space, model, objects)
    }

    #[test]
    fn insert_and_lookup() {
        let mut d = db();
        assert_eq!(d.len(), 3);
        assert_eq!(d.object(2).unwrap().first_time(), 5);
        assert!(d.object(9).is_none());
        // Replacing an existing id keeps the count.
        d.insert(UncertainObject::from_pairs(2, vec![(1, 0)]).unwrap());
        assert_eq!(d.len(), 3);
        assert_eq!(d.object(2).unwrap().first_time(), 1);
        assert_eq!(d.total_observations(), 2 + 1 + 2);
    }

    #[test]
    fn append_extends_existing_and_creates_new_objects() {
        let mut d = db();
        // Extending object 1 (last time 10) with later observations.
        assert_eq!(
            d.append_observations(1, &[Observation::new(12, 2), Observation::new(14, 0)]),
            Ok(false)
        );
        assert_eq!(d.object(1).unwrap().last_time(), 14);
        assert_eq!(d.total_observations(), 8);
        // A time at or before the tail is rejected without side effects.
        assert_eq!(
            d.append_observations(1, &[Observation::new(14, 1)]),
            Err(ObservationError::NotStrictlyIncreasing { index: 4 })
        );
        assert_eq!(d.object(1).unwrap().num_observations(), 4);
        // An unknown id creates a new object.
        assert_eq!(d.append_observations(9, &[Observation::new(3, 1)]), Ok(true));
        assert_eq!(d.len(), 4);
        assert_eq!(d.object(9).unwrap().first_time(), 3);
        // An empty append is rejected even for a new id.
        assert_eq!(d.append_observations(11, &[]), Err(ObservationError::Empty));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn per_object_model_override() {
        let mut d = db();
        let special = Arc::new(MarkovModel::homogeneous(CsrMatrix::identity(3)));
        d.set_object_model(1, special.clone());
        assert!(Arc::ptr_eq(d.model_for(1), &special));
        assert!(Arc::ptr_eq(d.model_for(2), d.shared_model()));
    }

    #[test]
    fn horizon_and_coverage_queries() {
        let d = db();
        assert_eq!(d.time_horizon(), Some((0, 30)));
        assert_eq!(d.objects_covering(6, 9), vec![1, 2]);
        assert_eq!(d.objects_covering(0, 30), Vec::<ObjectId>::new());
        let mut overlap = d.objects_overlapping(10, 20);
        overlap.sort_unstable();
        assert_eq!(overlap, vec![1, 2, 3]);
        assert_eq!(d.objects_overlapping(31, 40), Vec::<ObjectId>::new());
    }

    #[test]
    fn subset_preserves_order_models_and_reports_missing_ids() {
        let mut d = db();
        let special = Arc::new(MarkovModel::homogeneous(CsrMatrix::identity(3)));
        d.set_object_model(3, special.clone());
        let s = d.subset(&[3, 1]).unwrap();
        assert_eq!(s.len(), 2);
        let ids: Vec<ObjectId> = s.objects().iter().map(|o| o.id()).collect();
        assert_eq!(ids, vec![3, 1], "subset keeps the requested order");
        assert!(Arc::ptr_eq(s.model_for(3), &special), "override travels with the object");
        assert!(Arc::ptr_eq(s.model_for(1), s.shared_model()));
        assert_eq!(d.subset(&[1, 9, 2]).unwrap_err(), 9);
        assert!(d.subset(&[]).unwrap().is_empty());
    }

    #[test]
    fn empty_database() {
        let space = Arc::new(StateSpace::new());
        let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::identity(1)));
        let d = TrajectoryDatabase::new(space, model);
        assert!(d.is_empty());
        assert_eq!(d.time_horizon(), None);
    }

    #[test]
    fn summary_reports_ingested_observations() {
        let s = db().summary();
        assert_eq!(s.objects, 3);
        assert_eq!(s.observations, 6);
        assert_eq!(s.min_observations, 2);
        assert_eq!(s.max_observations, 2);
        assert_eq!(s.horizon, Some((0, 30)));
        assert_eq!(s.mean_observations(), 2.0);

        let space = Arc::new(StateSpace::new());
        let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::identity(1)));
        let empty = TrajectoryDatabase::new(space, model).summary();
        assert_eq!(empty.objects, 0);
        assert_eq!(empty.min_observations, 0);
        assert_eq!(empty.horizon, None);
        assert_eq!(empty.mean_observations(), 0.0);
    }
}
