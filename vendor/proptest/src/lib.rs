//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) property-testing crate.
//!
//! Supports the slice of the proptest API used by this workspace's property
//! tests:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`],
//! * numeric range strategies (`0u64..1000`, `0.05f64..1.0`, `3..=8usize`),
//!   [`Just`], tuple strategies and [`collection::vec`],
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header, and [`prop_assert!`] / [`prop_assert_eq!`],
//!
//! with two deliberate simplifications relative to the real crate:
//!
//! 1. **No shrinking.** A failing case reports the generated inputs' case
//!    number and message but does not minimise them. Failures are still
//!    reproducible because generation is deterministic.
//! 2. **Fixed deterministic seeding.** Each test function derives its RNG
//!    seed from its own name (FNV-1a), so runs are identical on every
//!    machine and there is no persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Creates the deterministic RNG a [`proptest!`]-generated test runs with.
/// Public because the macro expansion references it through `$crate`, which
/// keeps consumer crates from needing their own `rand` dependency.
pub fn new_rng(seed: u64) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed)
}

/// Derives the deterministic RNG seed of a test from its name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, 64-bit.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Error raised by a failing property, mirroring `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input was rejected (not used by the shim's strategies,
    /// present for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A number-of-elements specification: an exact count or a half-open
    /// range, mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec`s with the given element strategy and size.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors of values drawn from `element`,
    /// with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(pattern in strategy, ...) { body }` item expands to a
/// `#[test]` function that runs `body` for `config.cases` generated inputs.
/// The body may use `prop_assert!` / `prop_assert_eq!` and may `return
/// Ok(())` to accept a case early.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::new_rng($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} failed at case {case}/{}: {message}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, returning a
/// [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {left:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y = {y} escaped");
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0usize..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn flat_map_and_tuples((n, v) in (1usize..4).prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n)))) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn early_accept_is_allowed(x in 0u32..10) {
            if x > 3 {
                return Ok(());
            }
            prop_assert!(x <= 3);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
    }
}
