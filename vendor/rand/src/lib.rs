//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 series).
//!
//! The build environment of this workspace has no access to crates.io, so the
//! small slice of `rand` that the workspace actually uses is vendored here:
//!
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator.
//!
//! The statistical requirements of this workspace are mild (Monte-Carlo
//! sampling of possible worlds, synthetic workload generation); xoshiro256++
//! passes BigCrush and is more than adequate. Note that, unlike the real
//! `rand` crate, integer ranges are sampled by reduction modulo the range
//! length. The bias is on the order of `len / 2^64` and irrelevant for the
//! range sizes used here (≤ 10^6).
//!
//! If the real `rand` crate ever becomes available, deleting this directory
//! and switching the workspace dependency to a registry version is intended
//! to be a drop-in change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled by 2^-53, the standard double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their domain,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled from their "standard" distribution, the
/// equivalent of `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) as f32))
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from, the equivalent of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange {
    /// Element type of the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let len = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % len) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let len = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if len == 0 {
                    // Full u64 domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % len) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Deterministic seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna, 2019), seeded through splitmix64.
    ///
    /// Unlike `rand::rngs::StdRng` this is *not* cryptographically secure; it
    /// is used exclusively for Monte-Carlo estimation and synthetic data
    /// generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn generic_rng_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _ = draw(&mut rng);
    }
}
