//! Smoke test of the `pnnq` facade: the `prelude` re-exports must resolve,
//! and a tiny hand-built two-object fixture must answer a P∃NN query through
//! the full `QueryEngine` pipeline (UST-tree filter → model adaptation →
//! possible-world sampling).
//!
//! This guards the workspace wiring (the facade's `pub use` graph and the
//! inter-crate manifests) rather than algorithmic behavior, which
//! `tests/properties.rs` and `tests/example1_paper.rs` cover.

use pnnq::prelude::*;
use std::sync::Arc;

/// Every name exported by `pnnq::prelude` must resolve. Mentioning each type
/// once makes a broken re-export a compile error of this test.
#[test]
fn prelude_reexports_resolve() {
    // ust-spatial.
    let p: Point = Point::new(0.25, 0.75);
    let _: Rect2 = Rect2::new([0.0, 0.0], [1.0, 1.0]);
    let _: Rect3 = Rect3::new([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
    let space: StateSpace = StateSpace::from_points(vec![p]);
    let _: StateId = 0;

    // ust-markov.
    let matrix: CsrMatrix = CsrMatrix::stochastic_from_weights(vec![vec![(0, 1.0)]]);
    let model: MarkovModel = MarkovModel::homogeneous(matrix);
    let _: Timestamp = 0;
    let adapted: AdaptedModel =
        AdaptedModel::build(&model, &[(0, 0), (2, 0)]).expect("trivial chain adapts");
    let _: &dyn std::any::Any = &adapted; // silence unused; type already checked

    // ust-trajectory.
    let _: Observation = Observation::new(0, 0);
    let object: UncertainObject = UncertainObject::from_pairs(7 as ObjectId, [(0, 0), (2, 0)])
        .expect("strictly increasing observation times");
    let _: Trajectory = Trajectory::new(0, vec![0, 0, 0]);
    let db: TrajectoryDatabase = TrajectoryDatabase::with_objects(
        Arc::new(space),
        Arc::new(model),
        vec![object],
    );

    // ust-sampling / ust-index.
    let _: PosteriorSampler<'_> = PosteriorSampler::new(&adapted);
    let _: UstTree = UstTree::build(&db);

    // ust-core (+ generator config types).
    let _: EngineConfig = EngineConfig::default();
    let _: Query = Query::at_point(Point::new(0.0, 0.0), [0, 1]).expect("non-empty times");
    let _ = |o: QueryOutcome| -> (Vec<ObjectProbability>, usize) { (o.results, o.stats.worlds) };
    let _ = |o: PcnnOutcome| o.total_result_sets();
    let _ = |w: QueryWorkload| w.queries.len();
    let _: QueryWorkloadConfig =
        QueryWorkloadConfig { num_queries: 1, interval_length: 2, horizon: 4, seed: 0 };
    let _: SyntheticNetworkConfig =
        SyntheticNetworkConfig { num_states: 4, branching_factor: 2.0, seed: 0 };
    let _ = |c: ObjectWorkloadConfig| c.num_objects;
    let _ = |c: RoadNetworkConfig| c.jitter;
    let _ = |c: TaxiWorkloadConfig| c.seed;
    let _ = |d: Dataset| d.database.len();
    let _ = |m: ModelAdaptation| m;
    let _ = |s: WorldSampler| s;
}

/// Two objects on a 3-state line; the query sits on object 0's observed
/// state. P∃NN through the engine must strongly favour object 0, and the
/// P∃ / P∀ ordering invariant must hold.
#[test]
fn two_object_pexists_query_end_to_end() {
    // States 0, 1, 2 at x = 0, 1, 2 on a line.
    let space = Arc::new(StateSpace::from_points(vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(2.0, 0.0),
    ]));
    // Random walk: stay or step to a neighbor, uniformly.
    let matrix = CsrMatrix::stochastic_from_weights(vec![
        vec![(0, 1.0), (1, 1.0)],
        vec![(0, 1.0), (1, 1.0), (2, 1.0)],
        vec![(1, 1.0), (2, 1.0)],
    ]);
    let model = Arc::new(MarkovModel::homogeneous(matrix));

    // Object 0 pinned near state 0, object 1 pinned near state 2, over [0, 4].
    let objects = vec![
        UncertainObject::from_pairs(0, [(0, 0), (4, 0)]).unwrap(),
        UncertainObject::from_pairs(1, [(0, 2), (4, 2)]).unwrap(),
    ];
    let db = TrajectoryDatabase::with_objects(space, model, objects);

    let engine = QueryEngine::new(&db, EngineConfig { num_samples: 400, ..Default::default() });
    let query = Query::at_point(Point::new(0.0, 0.0), [1, 2, 3]).unwrap();

    let exists = engine.pexists_nn(&query, 0.0).expect("query succeeds");
    assert_eq!(exists.stats.worlds, 400);
    assert!(
        exists.probability_of(0) > 0.9,
        "object 0 observed at the query point should almost surely be a sometime-NN, got {}",
        exists.probability_of(0)
    );
    assert!(exists.probability_of(0) <= 1.0 + 1e-9);

    // ∀ ⊆ ∃: for each object the ∀-probability cannot exceed the ∃-probability.
    let forall = engine.pforall_nn(&query, 0.0).expect("query succeeds");
    for r in &forall.results {
        assert!(
            r.probability <= exists.probability_of(r.object) + 1e-9,
            "object {}: P∀ {} > P∃ {}",
            r.object,
            r.probability,
            exists.probability_of(r.object)
        );
    }

    // Determinism: the engine seeds its sampler from EngineConfig::seed.
    let again = engine.pexists_nn(&query, 0.0).expect("query succeeds");
    assert_eq!(again.probability_of(0), exists.probability_of(0));
    assert_eq!(again.probability_of(1), exists.probability_of(1));
}
