//! R*-tree node representation and recursive algorithms.

use super::split;
use crate::rect::Rect;

/// A leaf entry: one stored item and its bounding box.
#[derive(Debug, Clone)]
pub struct Entry<const D: usize, T> {
    /// Bounding box of the item.
    pub rect: Rect<D>,
    /// The stored item.
    pub item: T,
}

/// An internal entry: a child node and the MBR of everything below it.
#[derive(Debug, Clone)]
pub(super) struct Child<const D: usize, T> {
    pub(super) rect: Rect<D>,
    pub(super) node: Box<Node<D, T>>,
}

/// A node of the R*-tree.
#[derive(Debug, Clone)]
pub(super) enum Node<const D: usize, T> {
    Leaf(Vec<Entry<D, T>>),
    Internal(Vec<Child<D, T>>),
}

impl<const D: usize, T> Node<D, T> {
    /// Height of the subtree rooted at this node (leaf = 1).
    pub(super) fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(children) => {
                1 + children.first().map(|c| c.node.height()).unwrap_or(0)
            }
        }
    }

    /// MBR of everything in this subtree.
    pub(super) fn mbr(&self) -> Rect<D> {
        let mut r = Rect::empty();
        match self {
            Node::Leaf(entries) => {
                for e in entries {
                    r.extend(&e.rect);
                }
            }
            Node::Internal(children) => {
                for c in children {
                    r.extend(&c.rect);
                }
            }
        }
        r
    }

    /// Inserts an item into this subtree. Returns `Some((rect, sibling))` if
    /// this node had to split, in which case the caller must install the new
    /// sibling next to this node.
    pub(super) fn insert(
        &mut self,
        rect: Rect<D>,
        item: T,
        max_entries: usize,
        min_entries: usize,
    ) -> Option<(Rect<D>, Node<D, T>)> {
        match self {
            Node::Leaf(entries) => {
                entries.push(Entry { rect, item });
                if entries.len() > max_entries {
                    let (left, right) = split::split_entries(
                        std::mem::take(entries),
                        min_entries,
                        |e: &Entry<D, T>| e.rect,
                    );
                    *entries = left;
                    let sibling = Node::Leaf(right);
                    Some((sibling.mbr(), sibling))
                } else {
                    None
                }
            }
            Node::Internal(children) => {
                let child_is_leaf = matches!(children[0].node.as_ref(), Node::Leaf(_));
                let idx = choose_subtree(children, &rect, child_is_leaf);
                children[idx].rect.extend(&rect);
                let overflow = children[idx].node.insert(rect, item, max_entries, min_entries);
                // Recompute the chosen child's MBR exactly after a split below
                // (the split may have moved entries out of it).
                if let Some((sib_rect, sibling)) = overflow {
                    children[idx].rect = children[idx].node.mbr();
                    children.push(Child { rect: sib_rect, node: Box::new(sibling) });
                    if children.len() > max_entries {
                        let (left, right) = split::split_entries(
                            std::mem::take(children),
                            min_entries,
                            |c: &Child<D, T>| c.rect,
                        );
                        *children = left;
                        let sibling = Node::Internal(right);
                        return Some((sibling.mbr(), sibling));
                    }
                }
                None
            }
        }
    }

    /// Calls `f` for every item whose rectangle intersects `query`, stopping
    /// the traversal at the first `Err` and propagating it.
    pub(super) fn try_for_each_intersecting<'a, E>(
        &'a self,
        query: &Rect<D>,
        f: &mut impl FnMut(&'a Rect<D>, &'a T) -> Result<(), E>,
    ) -> Result<(), E> {
        match self {
            Node::Leaf(entries) => {
                for e in entries {
                    if e.rect.intersects(query) {
                        f(&e.rect, &e.item)?;
                    }
                }
            }
            Node::Internal(children) => {
                for c in children {
                    if c.rect.intersects(query) {
                        c.node.try_for_each_intersecting(query, f)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Generic pruned traversal; see [`super::RTree::search_with`].
    pub(super) fn search_with<'a>(
        &'a self,
        descend: &mut impl FnMut(&Rect<D>) -> bool,
        on_item: &mut impl FnMut(&'a Rect<D>, &'a T),
    ) {
        match self {
            Node::Leaf(entries) => {
                for e in entries {
                    if descend(&e.rect) {
                        on_item(&e.rect, &e.item);
                    }
                }
            }
            Node::Internal(children) => {
                for c in children {
                    if descend(&c.rect) {
                        c.node.search_with(descend, on_item);
                    }
                }
            }
        }
    }

    /// Collects references to all `(rect, item)` pairs in this subtree.
    pub(super) fn collect_all<'a>(&'a self, out: &mut Vec<(&'a Rect<D>, &'a T)>) {
        match self {
            Node::Leaf(entries) => {
                for e in entries {
                    out.push((&e.rect, &e.item));
                }
            }
            Node::Internal(children) => {
                for c in children {
                    c.node.collect_all(out);
                }
            }
        }
    }

    /// Counts stored items.
    pub(super) fn collect_count(&self, out: &mut usize) {
        match self {
            Node::Leaf(entries) => *out += entries.len(),
            Node::Internal(children) => {
                for c in children {
                    c.node.collect_count(out);
                }
            }
        }
    }

    /// Validates structural invariants; see [`super::RTree::check_invariants`].
    pub(super) fn check_invariants(
        &self,
        is_root: bool,
        max_entries: usize,
        min_entries: usize,
    ) -> Result<usize, String> {
        match self {
            Node::Leaf(entries) => {
                if entries.len() > max_entries {
                    return Err(format!("leaf overfull: {}", entries.len()));
                }
                // Note: STR bulk loading may leave a tail node with fewer than
                // `min_entries` entries, so only emptiness is an error here.
                let _ = min_entries;
                if !is_root && entries.is_empty() {
                    return Err("empty non-root leaf".to_string());
                }
                Ok(1)
            }
            Node::Internal(children) => {
                if children.is_empty() {
                    return Err("internal node without children".to_string());
                }
                if children.len() > max_entries {
                    return Err(format!("internal node overfull: {}", children.len()));
                }
                let mut depth = None;
                for c in children {
                    let child_mbr = c.node.mbr();
                    if !c.rect.contains(&child_mbr) {
                        return Err("child MBR not contained in stored rect".to_string());
                    }
                    let d = c.node.check_invariants(false, max_entries, min_entries)?;
                    match depth {
                        None => depth = Some(d),
                        Some(prev) if prev != d => {
                            return Err("leaves at different depths".to_string())
                        }
                        _ => {}
                    }
                }
                Ok(depth.unwrap_or(0) + 1)
            }
        }
    }
}

/// R* choose-subtree: at the level directly above the leaves, minimize overlap
/// enlargement (ties: area enlargement, then area); higher up, minimize area
/// enlargement (ties: area).
fn choose_subtree<const D: usize, T>(
    children: &[Child<D, T>],
    rect: &Rect<D>,
    child_is_leaf: bool,
) -> usize {
    debug_assert!(!children.is_empty());
    if child_is_leaf {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, cand) in children.iter().enumerate() {
            let enlarged = cand.rect.union(rect);
            // Overlap enlargement of candidate i with all other children.
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for (j, other) in children.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_before += cand.rect.overlap_area(&other.rect);
                overlap_after += enlarged.overlap_area(&other.rect);
            }
            let key = (
                overlap_after - overlap_before,
                cand.rect.enlargement(rect),
                cand.rect.area(),
            );
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, cand) in children.iter().enumerate() {
            let key = (cand.rect.enlargement(rect), cand.rect.area());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}
