//! Result and statistics types shared by the query algorithms.

use crate::{ObjectId, Timestamp};
use std::time::Duration;

/// One object together with its estimated result probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectProbability {
    /// The database object.
    pub object: ObjectId,
    /// The estimated probability (P∃NN or P∀NN, depending on the query).
    pub probability: f64,
}

/// Phase timings and filter statistics of one query evaluation. These are the
/// quantities plotted in the efficiency figures of the paper: the adaptation
/// time ("TS"), the sampling/refinement time ("FA"/"EX"/"SA"), and the sizes
/// of the candidate and influence sets (`|C(q)|`, `|I(q)|`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Number of ∀-candidates after pruning (`|C(q)|`).
    pub candidates: usize,
    /// Number of influence objects after pruning (`|I(q)|`).
    pub influencers: usize,
    /// Wall-clock time spent adapting transition matrices (the "TS" phase).
    /// Only *cold* work counts: influence objects answered from the model
    /// cache cost a lookup, not TS work, so a repeated query reports
    /// `Duration::ZERO` here instead of silently inflating the TS column.
    /// Time spent blocking on adaptations a *concurrent* query claimed first
    /// is included (this query waited that long for its TS phase) even
    /// though the work counts toward the other query's `cold_adaptations`.
    pub adaptation_time: Duration,
    /// Influence objects whose adapted model came from the cache.
    pub cache_hits: usize,
    /// Influence objects whose forward–backward adaptation actually ran for
    /// this query (`cache_hits + cold_adaptations == influencers`).
    pub cold_adaptations: usize,
    /// Wall-clock time spent sampling possible worlds and evaluating them
    /// (the "FA"/"EX"/"SA" phase).
    pub sampling_time: Duration,
    /// Number of possible worlds sampled.
    pub worlds: usize,
    /// Deepest lattice level reached by a PCNN query, i.e. the size of the
    /// largest qualifying timestamp set across all candidates. Zero for
    /// non-PCNN semantics.
    pub max_level: usize,
    /// Peak Apriori frontier width of a PCNN query: the largest number of
    /// qualifying sets on one lattice level of one candidate. Together with
    /// [`max_level`](Self::max_level) this makes the small-τ lattice blow-up
    /// of Section 4.3 (Figure 14) observable. Zero for non-PCNN semantics.
    pub frontier_peak: usize,
    /// Wall-clock time of the filter (pruning) phase.
    pub filter_time: Duration,
    /// Wall-clock time of the PCNN lattice expansion. Zero for non-PCNN
    /// semantics (their refinement cost is all in
    /// [`sampling_time`](Self::sampling_time)).
    pub mining_time: Duration,
    /// Number of budget checkpoints polled during the evaluation (see
    /// [`crate::govern`]). Zero when the engine runs with an unlimited
    /// budget is *not* guaranteed — checkpoints are polled either way; the
    /// counter measures governance overhead, not whether a budget was set.
    pub budget_checkpoints: usize,
    /// Number of worlds the evaluation *asked* for
    /// ([`EngineConfig::num_samples`](crate::EngineConfig)).
    /// [`worlds`](Self::worlds) is what it actually sampled; the two differ
    /// exactly when [`degraded`](Self::degraded) is set or a `max_worlds`
    /// cap truncated the run.
    pub worlds_requested: usize,
    /// Whether any phase degraded instead of completing: the sampling loop
    /// stopped before `worlds_requested` (deadline or `max_worlds` cap), or
    /// the PCNN lattice stopped expanding early. Degraded probabilities are
    /// unbiased but coarser (fewer worlds ⇒ wider Monte-Carlo confidence
    /// interval); degraded PCNN results are an exact under-approximation.
    pub degraded: bool,
}

/// Outcome of a P∃NNQ / P∀NNQ (or their kNN generalisations).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Qualifying objects (probability ≥ τ), sorted by decreasing probability.
    pub results: Vec<ObjectProbability>,
    /// Evaluation statistics.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// Probability of a specific object among the results (zero if absent).
    pub fn probability_of(&self, id: ObjectId) -> f64 {
        self.results
            .iter()
            .find(|r| r.object == id)
            .map(|r| r.probability)
            .unwrap_or(0.0)
    }

    /// Whether the object qualified.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.results.iter().any(|r| r.object == id)
    }
}

/// One PCNN result entry: an object together with the qualifying timestamp
/// sets and their probabilities (Definition 3).
#[derive(Debug, Clone)]
pub struct PcnnObjectResult {
    /// The database object.
    pub object: ObjectId,
    /// Qualifying timestamp sets `T_i` with `P∀NN(o, q, T_i) ≥ τ`, each with
    /// its estimated probability.
    pub sets: Vec<(Vec<Timestamp>, f64)>,
    /// Number of candidate sets the lattice validated for *this* object.
    ///
    /// Candidates whose lattice qualified no set at all get no
    /// [`PcnnObjectResult`] row, so summing this field over the results can
    /// fall short of [`PcnnOutcome::candidate_sets_evaluated`], which also
    /// counts the validation work those empty-handed candidates cost.
    pub candidate_sets_evaluated: usize,
}

/// Outcome of a PCNNQ.
#[derive(Debug, Clone)]
pub struct PcnnOutcome {
    /// Per-object qualifying timestamp sets.
    pub results: Vec<PcnnObjectResult>,
    /// Evaluation statistics.
    pub stats: QueryStats,
    /// Number of candidate timestamp sets generated by the Apriori lattice
    /// (all validation steps performed).
    pub candidate_sets_evaluated: usize,
}

impl PcnnOutcome {
    /// Total number of qualifying `(object, timestamp set)` pairs — the
    /// "#Timestamp Sets" series of Figures 13 and 14.
    pub fn total_result_sets(&self) -> usize {
        self.results.iter().map(|r| r.sets.len()).sum()
    }

    /// The qualifying sets of a specific object.
    pub fn sets_of(&self, id: ObjectId) -> Option<&[(Vec<Timestamp>, f64)]> {
        self.results.iter().find(|r| r.object == id).map(|r| r.sets.as_slice())
    }

    /// Deepest lattice level reached (size of the largest qualifying set).
    pub fn max_level(&self) -> usize {
        self.stats.max_level
    }

    /// Peak Apriori frontier width across all candidates.
    pub fn frontier_peak(&self) -> usize {
        self.stats.frontier_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_lookup_helpers() {
        let outcome = QueryOutcome {
            results: vec![
                ObjectProbability { object: 3, probability: 0.8 },
                ObjectProbability { object: 5, probability: 0.4 },
            ],
            stats: QueryStats::default(),
        };
        assert_eq!(outcome.probability_of(3), 0.8);
        assert_eq!(outcome.probability_of(9), 0.0);
        assert!(outcome.contains(5));
        assert!(!outcome.contains(9));
    }

    #[test]
    fn pcnn_outcome_counts_sets() {
        let outcome = PcnnOutcome {
            results: vec![
                PcnnObjectResult {
                    object: 1,
                    sets: vec![(vec![1], 0.9), (vec![1, 2], 0.6)],
                    candidate_sets_evaluated: 5,
                },
                PcnnObjectResult {
                    object: 2,
                    sets: vec![(vec![3], 0.5)],
                    candidate_sets_evaluated: 2,
                },
            ],
            stats: QueryStats { max_level: 2, frontier_peak: 2, ..Default::default() },
            candidate_sets_evaluated: 7,
        };
        assert_eq!(outcome.total_result_sets(), 3);
        assert_eq!(outcome.sets_of(1).unwrap().len(), 2);
        assert!(outcome.sets_of(4).is_none());
        assert_eq!(outcome.max_level(), 2);
        assert_eq!(outcome.frontier_peak(), 2);
        // The outcome total may exceed the per-object sum: candidates whose
        // lattice qualified nothing still cost validation work but get no
        // result row.
        let per_object: usize = outcome.results.iter().map(|r| r.candidate_sets_evaluated).sum();
        assert!(per_object <= outcome.candidate_sets_evaluated);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let stats = QueryStats::default();
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.influencers, 0);
        assert_eq!(stats.worlds, 0);
        assert_eq!(stats.adaptation_time, Duration::ZERO);
        assert_eq!(stats.sampling_time, Duration::ZERO);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cold_adaptations, 0);
        assert_eq!(stats.max_level, 0);
        assert_eq!(stats.frontier_peak, 0);
        assert_eq!(stats.filter_time, Duration::ZERO);
        assert_eq!(stats.mining_time, Duration::ZERO);
        assert_eq!(stats.budget_checkpoints, 0);
        assert_eq!(stats.worlds_requested, 0);
        assert!(!stats.degraded);
    }
}
