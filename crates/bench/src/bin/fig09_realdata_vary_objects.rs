//! Figure 9: P∀NNQ / P∃NNQ efficiency on the taxi dataset while varying the
//! number of objects.
//!
//! The paper uses map-matched Beijing T-Drive taxi traces on a 68 902-state
//! road graph. This harness supports both sides of that setup:
//!
//! * `--csv <path>` ingests genuinely T-Drive-formatted traces: the file is
//!   streamed and parsed (`ust_generator::tdrive`), the fixes are snapped
//!   onto the simulated city road graph and discretised into engine tics
//!   (`ust_generator::map_match`), and the shared transition matrix is
//!   learned by aggregating turning counts over the matched traces. Malformed
//!   rows are reported (typed, line-numbered) and skipped. The sweep then
//!   varies how many of the ingested taxis the database contains; requesting
//!   more than the file yields (`--objects N`) surfaces a typed
//!   `UnknownObject` error instead of panicking. Each row carries a `digest`
//!   of the result set (timings excluded), which must be byte-identical
//!   across runs and thread counts — CI asserts exactly that.
//! * without `--csv` the simulated city workload of DESIGN.md §4 is
//!   generated, as before. Paper sweep: |D| ∈ {1k, 10k, 20k}. Reported
//!   series: TS/FA/EX CPU times and |C(q)|/|I(q)|.
//!
//! With `--csv`, three persistence modes ride along (DESIGN.md §10):
//!
//! * `--store <base>` — the fig06/fig08-style round trip: save the engine
//!   state per sweep point, cold-start from the file, digest must match.
//! * `--store <base> --wal` — incremental ingest: hold back each long
//!   trajectory's tail observation, save the shortened store, WAL-append the
//!   tails through `EngineStore::append_batch`, and verify the grown store's
//!   digest against the from-scratch engine. Store + WAL stay on disk.
//! * `--store <base> --wal-recover` — run as a *second process*: load what
//!   `--wal` left behind (replaying the log) and verify the same digest —
//!   the cross-process crash-recovery smoke CI runs on every push.

use ust_bench::datasets::{build_queries, build_taxi, ScaleParams};
use ust_bench::efficiency::{try_measure_efficiency, try_measure_efficiency_on};
use ust_bench::errors::{exit_failure, report_skipped_rows};
use ust_bench::ingest::{ingest_taxi_path, take_objects, IngestedTaxi};
use ust_bench::storecheck::store_roundtrip_check;
use ust_bench::walcheck::{split_holdback, wal_ingest_check, wal_recover_check};
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;
use ust_core::{EngineConfig, QueryEngine};
use ust_generator::Dataset;

const BINARY: &str = "fig09_realdata_vary_objects";

fn main() {
    let settings = RunSettings::from_env();
    settings.validate_wal_mode();
    if settings.store_path.is_some() && settings.csv_path.is_none() {
        exit_failure(
            BINARY,
            "parsing arguments",
            &"--store on fig09 requires --csv: the store check covers the ingested data",
        );
    }
    let params = ScaleParams::for_scale(settings.scale);
    // The paper's TS series is a *serial* adaptation time, so this figure
    // defaults to one TS worker for comparability across machines; parallel
    // adaptation is opt-in via `--threads N` (`0` = available parallelism),
    // recorded in the report meta. fig06 reports the serial/parallel split
    // explicitly.
    let threads = settings.adaptation_threads.map_or(1, resolve_adaptation_threads);
    let report = match settings.csv_path.clone() {
        Some(path) => run_ingested(&settings, &params, threads, &path),
        None => run_simulated(&settings, &params, threads),
    };
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}

/// The default object sweep of the figure at the given scale.
fn default_sweep(scale: RunScale) -> Vec<usize> {
    match scale {
        RunScale::Quick => vec![50, 100, 200],
        RunScale::Default => vec![250, 1_000, 4_000],
        RunScale::Paper => vec![1_000, 10_000, 20_000],
    }
}

/// The simulated-city path (no `--csv`), unchanged from earlier revisions.
fn run_simulated(settings: &RunSettings, params: &ScaleParams, threads: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "figure09_realdata_vary_objects",
        "Efficiency of P∀NNQ/P∃NNQ on the simulated taxi road network while varying |D| \
         (paper: Figure 9; series TS/FA/EX in seconds, |C(q)|/|I(q)| in objects)",
    )
    .with_meta("adaptation_threads", threads as f64);
    let budget = settings.query_budget();
    if let Some(ms) = settings.deadline_ms {
        report.set_meta("deadline_ms", ms as f64);
    }
    // `--objects N` pins the sweep in simulated mode too, mirroring --csv.
    let sweep = settings.objects.map_or_else(|| default_sweep(settings.scale), |n| vec![n]);
    for d in sweep {
        eprintln!("[fig09] |D| = {d}");
        let dataset = build_taxi(params, d, settings.seed);
        let queries = build_queries(&dataset, params, settings.seed);
        let m = match try_measure_efficiency(
            &dataset,
            &queries,
            params.num_samples,
            settings.seed,
            threads,
            &budget,
        ) {
            Ok(m) => m,
            Err(error) => exit_failure(BINARY, "query budget breached", &error),
        };
        report.set_meta(format!("budget_checkpoints_d{d}"), m.budget_checkpoints);
        report.set_meta(format!("worlds_sampled_d{d}"), m.worlds_sampled);
        report.set_meta(format!("degraded_queries_d{d}"), m.degraded_queries as f64);
        report.push(
            Row::new(format!("|D|={d}"))
                .with("TS", m.ts_seconds)
                .with("FA", m.fa_seconds)
                .with("EX", m.ex_seconds)
                .with("|C(q)|", m.candidates)
                .with("|I(q)|", m.influencers),
        );
    }
    report
}

/// The real-data path: ingest a T-Drive CSV and sweep over the ingested taxis.
fn run_ingested(
    settings: &RunSettings,
    params: &ScaleParams,
    threads: usize,
    path: &str,
) -> ExperimentReport {
    let ingested: IngestedTaxi = match ingest_taxi_path(params, path, settings.seed) {
        Ok(i) => i,
        Err(e) => exit_failure(BINARY, &format!("cannot read {path}"), &e),
    };
    report_skipped_rows(BINARY, &ingested.load_errors);
    let summary = ingested.dataset.database.summary();
    if summary.objects == 0 {
        exit_failure(
            BINARY,
            &format!("ingesting {path}"),
            &"no object survived parsing and map matching",
        );
    }
    eprintln!(
        "[fig09] ingested {} objects / {} observations from {path} ({} fixes dropped)",
        summary.objects,
        summary.observations,
        ingested.match_stats.dropped_fixes()
    );

    // With `--objects N` the sweep is exactly N (an over-ask is a typed
    // error); otherwise the scale's default sweep, clamped to the number of
    // ingested taxis and deduplicated.
    let sweep: Vec<usize> = match settings.objects {
        Some(n) => vec![n],
        None => {
            let mut sweep: Vec<usize> = default_sweep(settings.scale)
                .into_iter()
                .map(|d| d.min(summary.objects))
                .collect();
            sweep.dedup();
            sweep
        }
    };

    let mut report = ExperimentReport::new(
        "figure09_realdata_vary_objects",
        "Efficiency of P∀NNQ/P∃NNQ on map-matched T-Drive traces while varying |D| \
         (paper: Figure 9; series TS/FA/EX in seconds, |C(q)|/|I(q)| in objects, \
         digest = thread-independent FNV-1a of the result sets)",
    )
    .with_meta("adaptation_threads", threads as f64)
    .with_meta("csv_lines", ingested.lines as f64)
    .with_meta("load_errors", ingested.load_errors.len() as f64)
    .with_meta("ingested_objects", summary.objects as f64)
    .with_meta("ingested_observations", summary.observations as f64)
    .with_meta("mean_observations", summary.mean_observations())
    .with_meta("dropped_fixes", ingested.match_stats.dropped_fixes() as f64);
    let budget = settings.query_budget();
    if let Some(ms) = settings.deadline_ms {
        report.set_meta("deadline_ms", ms as f64);
    }
    for d in sweep {
        eprintln!("[fig09] |D| = {d}");
        let database = match take_objects(&ingested.dataset.database, d) {
            Ok(db) => db,
            Err(e) => exit_failure(
                BINARY,
                &format!(
                    "{d} objects requested but only {} were ingested",
                    summary.objects
                ),
                &e,
            ),
        };
        let dataset = Dataset {
            network: ingested.dataset.network.clone(),
            database,
            ground_truth: Default::default(),
        };
        let queries = build_queries(&dataset, params, settings.seed);
        // Built explicitly (instead of inside `try_measure_efficiency`) so
        // the store/WAL checks below can reuse the engine and its exact
        // configuration for their digest comparisons.
        let config = EngineConfig {
            num_samples: params.num_samples,
            seed: settings.seed,
            adaptation_threads: threads,
            ..Default::default()
        };
        let engine = QueryEngine::new(&dataset.database, config.clone());
        let m = match try_measure_efficiency_on(&engine, &queries, &budget) {
            Ok(m) => m,
            Err(error) => exit_failure(BINARY, "query budget breached", &error),
        };
        if let Some(base) = settings.store_path.as_deref() {
            let point = format!("d{d}");
            if settings.wal {
                let holdback = split_holdback(&dataset.database);
                wal_ingest_check(
                    BINARY,
                    &mut report,
                    base,
                    &point,
                    config.clone(),
                    &queries,
                    m.digest,
                    &holdback,
                );
            } else if settings.wal_recover {
                wal_recover_check(
                    BINARY,
                    &mut report,
                    base,
                    &point,
                    config.clone(),
                    &queries,
                    m.digest,
                );
            } else {
                store_roundtrip_check(
                    BINARY, &mut report, base, &point, &engine, config, &queries, &m,
                );
            }
        }
        report.set_meta(format!("budget_checkpoints_d{d}"), m.budget_checkpoints);
        report.set_meta(format!("worlds_sampled_d{d}"), m.worlds_sampled);
        report.set_meta(format!("degraded_queries_d{d}"), m.degraded_queries as f64);
        report.push(
            Row::new(format!("|D|={d}"))
                .with("TS", m.ts_seconds)
                .with("FA", m.fa_seconds)
                .with("EX", m.ex_seconds)
                .with("|C(q)|", m.candidates)
                .with("|I(q)|", m.influencers)
                // 53-bit truncation keeps the digest exactly representable as
                // an f64, so the JSON report round-trips it bit-for-bit.
                .with("digest", (m.digest & ((1 << 53) - 1)) as f64),
        );
    }
    report
}
