//! Golden-fixture test for the T-Drive loader.
//!
//! `tests/data/tdrive_small.csv` (repo root) is the checked-in real-data
//! fixture: five taxis with interleaved ("shuffled") ids — including a
//! non-contiguous id, 104 — observed every 80 seconds over central Beijing,
//! plus seven deliberately malformed rows. This test pins the loader's exact
//! behaviour on it: the parsed observation set and every typed,
//! line-numbered [`LoadError`]. The same fixture drives the `fig09 --csv`
//! smoke run in CI, so any drift here would also change the published
//! experiment input.

use ust_generator::tdrive::{group_fixes, parse_datetime, LoadError, LoadErrorKind, RawFix};
use ust_generator::{tdrive, ObjectId};

const FIXTURE: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/data/tdrive_small.csv"
));

/// Epoch seconds of the fixture's first fix time, 2008-02-02 13:30:04 —
/// taxis are observed every 80 seconds from there.
const T0: i64 = 1_201_959_004;

fn expected_fix(object: ObjectId, k: i64, lon: f64, lat: f64) -> RawFix {
    RawFix { object, seconds: T0 + 80 * k, lon, lat }
}

#[test]
fn fixture_parses_to_the_exact_observation_set() {
    let out = tdrive::parse_str(FIXTURE);
    assert_eq!(out.lines, 67);
    assert_eq!(out.fixes.len(), 60);
    assert_eq!(out.errors.len(), 7);

    let groups = group_fixes(&out.fixes);
    let ids: Vec<ObjectId> = groups.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![1, 2, 3, 7, 104], "shuffled ids are untangled and sorted");
    for (id, group) in &groups {
        assert_eq!(group.len(), 12, "taxi {id} has 12 fixes");
        assert_eq!(group[0].seconds, T0, "taxi {id} starts at the common origin");
        assert_eq!(group[11].seconds, T0 + 80 * 11);
        assert!(group.windows(2).all(|w| w[1].seconds - w[0].seconds == 80));
    }

    // Taxi 1 moves north-east in constant steps; exact full trace.
    let expected_taxi1: Vec<RawFix> = [
        (116.05, 39.55),
        (116.07, 39.565),
        (116.09, 39.58),
        (116.11, 39.595),
        (116.13, 39.61),
        (116.15, 39.625),
        (116.17, 39.64),
        (116.19, 39.655),
        (116.21, 39.67),
        (116.23, 39.685),
        (116.25, 39.70),
        (116.27, 39.715),
    ]
    .iter()
    .enumerate()
    .map(|(k, &(lon, lat))| expected_fix(1, k as i64, lon, lat))
    .collect();
    assert_eq!(groups[0].1, expected_taxi1);

    // Taxi 104 (the non-contiguous id) moves south-east; exact full trace.
    let expected_taxi104: Vec<RawFix> = [
        (116.10, 39.90),
        (116.115, 39.88),
        (116.13, 39.86),
        (116.145, 39.84),
        (116.16, 39.82),
        (116.175, 39.80),
        (116.19, 39.78),
        (116.205, 39.76),
        (116.22, 39.74),
        (116.235, 39.72),
        (116.25, 39.70),
        (116.265, 39.68),
    ]
    .iter()
    .enumerate()
    .map(|(k, &(lon, lat))| expected_fix(104, k as i64, lon, lat))
    .collect();
    assert_eq!(groups[4].1, expected_taxi104);

    // Spot-pins on the remaining taxis: 2 drives south-west from the
    // north-east corner, 7 keeps a constant longitude, 3 stands still up to
    // a sub-block GPS wiggle.
    assert_eq!(groups[1].1[0], expected_fix(2, 0, 116.45, 39.95));
    assert_eq!(groups[1].1[11], expected_fix(2, 11, 116.23, 39.785));
    assert!(groups[3].1.iter().all(|f| f.lon == 116.40));
    assert!(groups[2].1.iter().all(|f| (f.lon - 116.25).abs() < 0.003));
}

#[test]
fn fixture_malformed_rows_yield_the_exact_typed_errors() {
    let out = tdrive::parse_str(FIXTURE);
    assert_eq!(
        out.errors,
        vec![
            LoadError { line: 6, kind: LoadErrorKind::FieldCount { found: 3 } },
            LoadError { line: 12, kind: LoadErrorKind::BadObjectId { field: "taxi9".into() } },
            LoadError {
                line: 18,
                kind: LoadErrorKind::BadTimestamp { field: "2008-02-31 13:35:20".into() },
            },
            LoadError {
                line: 24,
                kind: LoadErrorKind::BadTimestamp { field: "2008-02-02 25:01:00".into() },
            },
            LoadError { line: 30, kind: LoadErrorKind::BadCoordinate { field: "abc".into() } },
            LoadError { line: 36, kind: LoadErrorKind::LonOutOfRange { lon: 196.2 } },
            LoadError { line: 42, kind: LoadErrorKind::LatOutOfRange { lat: -97.0 } },
        ]
    );
    // The errors render with their line numbers, so ingestion logs are
    // actionable.
    let rendered = out.errors[0].to_string();
    assert!(rendered.starts_with("line 6:"), "{rendered}");
}

#[test]
fn fixture_origin_matches_the_documented_epoch() {
    assert_eq!(parse_datetime("2008-02-02 13:30:04"), Some(T0));
}
