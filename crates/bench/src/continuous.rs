//! PCNN (continuous query) experiments — Figures 13 and 14 of the paper.
//!
//! The harness measures, per query,
//!
//! * **TS** — the model-adaptation time,
//! * **SA** — the time to sample possible worlds and run the vertical
//!   (bitset) Apriori lattice of Algorithm 1 over the candidate timestamp
//!   sets,
//! * **#Timestamp Sets** — the size of the (unprocessed) result set, i.e. the
//!   number of qualifying `(object, timestamp set)` pairs,
//!
//! plus the lattice observability counters (`max_level`, `frontier_peak`)
//! that make the small-τ blow-up of Section 4.3 visible in the JSON reports.

use std::time::Instant;
use ust_core::{EngineConfig, Query, QueryEngine};
use ust_generator::{Dataset, QueryWorkload};

/// Averaged PCNN measurements over a query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcnnMeasurement {
    /// Mean model-adaptation time per query, seconds.
    pub ts_seconds: f64,
    /// Mean sampling + lattice time per query, seconds.
    pub sa_seconds: f64,
    /// Mean number of qualifying `(object, timestamp set)` pairs per query.
    pub timestamp_sets: f64,
    /// Mean number of candidate sets validated by the Apriori expansion.
    pub candidate_sets: f64,
    /// Deepest lattice level reached across all queries.
    pub max_level: f64,
    /// Widest Apriori frontier across all queries.
    pub frontier_peak: f64,
    /// Number of queries measured.
    pub queries: usize,
    /// Total wall-clock time of the measurement (all queries, including the
    /// repeated cold adaptations), seconds.
    pub wall_seconds: f64,
}

/// Runs the PCNN efficiency measurement for a given threshold `tau`, fanning
/// both the TS phase and the per-candidate lattice runs across `threads`
/// workers (`0` = available parallelism, `1` = serial).
pub fn measure_pcnn(
    dataset: &Dataset,
    workload: &QueryWorkload,
    num_samples: usize,
    tau: f64,
    seed: u64,
    threads: usize,
) -> PcnnMeasurement {
    let config = EngineConfig {
        num_samples,
        seed,
        adaptation_threads: threads,
        pcnn_threads: threads,
        ..Default::default()
    };
    let engine = QueryEngine::new(&dataset.database, config);
    let mut out = PcnnMeasurement::default();
    let wall_start = Instant::now();
    for spec in &workload.queries {
        let query = Query::at_point(spec.location, spec.times.iter().copied())
            .expect("workload queries are well-formed");
        engine.clear_model_cache();
        let start = Instant::now();
        let outcome = engine.pcnn(&query, tau).expect("query evaluation succeeds");
        let total = start.elapsed().as_secs_f64();
        let ts = outcome.stats.adaptation_time.as_secs_f64();
        out.ts_seconds += ts;
        out.sa_seconds += (total - ts).max(0.0);
        out.timestamp_sets += outcome.total_result_sets() as f64;
        out.candidate_sets += outcome.candidate_sets_evaluated as f64;
        out.max_level = out.max_level.max(outcome.max_level() as f64);
        out.frontier_peak = out.frontier_peak.max(outcome.frontier_peak() as f64);
        out.queries += 1;
    }
    out.wall_seconds = wall_start.elapsed().as_secs_f64();
    if out.queries > 0 {
        let n = out.queries as f64;
        out.ts_seconds /= n;
        out.sa_seconds /= n;
        out.timestamp_sets /= n;
        out.candidate_sets /= n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunScale;
    use crate::datasets::{build_queries, build_synthetic, ScaleParams};

    #[test]
    fn pcnn_measurement_reflects_the_threshold() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        params.interval_len = 5;
        let ds = build_synthetic(&params, 500, 8.0, 30, 9);
        let queries = build_queries(&ds, &params, 9);
        let low_tau = measure_pcnn(&ds, &queries, 100, 0.1, 9, 1);
        let high_tau = measure_pcnn(&ds, &queries, 100, 0.9, 9, 1);
        assert_eq!(low_tau.queries, 2);
        assert!(low_tau.sa_seconds > 0.0);
        assert!(low_tau.wall_seconds >= low_tau.sa_seconds);
        // A lower threshold can only produce more (or equally many) result sets.
        assert!(low_tau.timestamp_sets >= high_tau.timestamp_sets);
        // ... and can only deepen/widen the lattice.
        assert!(low_tau.max_level >= high_tau.max_level);
        assert!(low_tau.frontier_peak >= high_tau.frontier_peak);
    }

    #[test]
    fn thread_count_does_not_change_the_measured_result_set() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        params.interval_len = 5;
        let ds = build_synthetic(&params, 500, 8.0, 30, 9);
        let queries = build_queries(&ds, &params, 9);
        let serial = measure_pcnn(&ds, &queries, 100, 0.3, 9, 1);
        let parallel = measure_pcnn(&ds, &queries, 100, 0.3, 9, 4);
        assert_eq!(serial.timestamp_sets, parallel.timestamp_sets);
        assert_eq!(serial.candidate_sets, parallel.candidate_sets);
        assert_eq!(serial.max_level, parallel.max_level);
        assert_eq!(serial.frontier_peak, parallel.frontier_peak);
    }
}
