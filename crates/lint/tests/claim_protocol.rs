//! The interleaving-model acceptance test: the `AdaptationCache` claim
//! protocol, abstracted in `ust_lint::claim_model`, is exhaustively explored
//! over every schedule of every faulty subset at 1–3 threads, with the
//! explored-schedule counts pinned. A count change means the model (or the
//! protocol abstraction it encodes) changed and must be re-reviewed against
//! `ust_core::prepare::get_or_adapt`.

use ust_lint::claim_model::{explore, verify_protocol, Mutation, MAX_THREADS};

/// `(threads, faulty_mask, schedules)` for the faithful protocol. The counts
/// are a fingerprint of the explored state space: all interleavings of the
/// atomic steps, which only grow with extra claim/retry rounds caused by
/// faulty (panicking) claimants.
const PINNED_SCHEDULES: [(usize, u32, u64); 14] = [
    (1, 0b000, 1),
    (1, 0b001, 1),
    (2, 0b000, 8),
    (2, 0b001, 11),
    (2, 0b010, 11),
    (2, 0b011, 14),
    (3, 0b000, 90),
    (3, 0b001, 254),
    (3, 0b010, 254),
    (3, 0b011, 634),
    (3, 0b100, 254),
    (3, 0b101, 634),
    (3, 0b110, 634),
    (3, 0b111, 1230),
];

#[test]
fn full_schedule_space_is_clean_and_counts_are_pinned() {
    let reports = verify_protocol(MAX_THREADS);
    assert_eq!(reports.len(), PINNED_SCHEDULES.len(), "one report per (threads, faulty) config");
    for (report, &(threads, mask, schedules)) in reports.iter().zip(&PINNED_SCHEDULES) {
        assert_eq!((report.threads, report.faulty_mask), (threads, mask));
        assert!(
            report.clean(),
            "threads={threads} faulty={mask:#05b}: {:?}",
            report.violations
        );
        assert_eq!(
            report.schedules, schedules,
            "explored-schedule count drifted for threads={threads} faulty={mask:#05b}"
        );
    }
    let total: u64 = reports.iter().map(|r| r.schedules).sum();
    assert_eq!(total, 4030, "total explored schedules across all configs");
}

#[test]
fn checker_is_not_vacuous_broken_variants_are_caught() {
    // Reintroducing the pre-claim check-then-recompute race must surface a
    // duplicated adaptation on some schedule.
    let stampede = explore(2, 0b00, Mutation::SplitCheckClaim);
    assert!(!stampede.clean());

    // Dropping either notify_all must surface a lost wakeup.
    let lost_on_publish = explore(2, 0b00, Mutation::SkipPublishNotify);
    assert!(lost_on_publish.violations.iter().any(|v| v.contains("lost wakeup")));
    let lost_on_panic = explore(3, 0b001, Mutation::SkipPanicNotify);
    assert!(lost_on_panic.violations.iter().any(|v| v.contains("lost wakeup")));
}

#[test]
fn panic_only_configs_release_the_slot_for_nobody() {
    // All-faulty configs must still terminate (no deadlock) with zero
    // successful adaptations: each claimant panics once, releases the slot,
    // and the last release leaves it empty.
    for threads in 1..=MAX_THREADS {
        let all_faulty = (1u32 << threads) - 1;
        let report = explore(threads, all_faulty, Mutation::Faithful);
        assert!(report.clean(), "{:?}", report.violations);
    }
}
