//! Exact pairwise domination probabilities (Lemma 2 of the paper).
//!
//! Section 4.2 defines the random predicate `o ≺_q^T o_a` — "object `o` is
//! closer to `q` than `o_a` at every timestamp of `T`" — and shows (Lemma 2)
//! that its probability can be computed in polynomial time by treating the two
//! objects as one joint random variable over `S × S`:
//!
//! > "Starting at t = t_start, time transitions of J(t) are performed
//! > iteratively. In each iteration, any entry of J(t) corresponding to a
//! > possible world where o does not dominate o_a are set to zero. At time
//! > t_end, the total probability of remaining worlds in J(t_end) equals the
//! > probability that o dominates o_a over the whole duration of T."
//!
//! The paper then shows that this *pairwise* result does not extend to the
//! full P∀NN probability, because conditioning the chain of `o` on the
//! domination event destroys the Markov property — which is why the query
//! engine falls back to sampling. The pairwise computation is still useful:
//! it provides exact reference values for tests, and for a database of exactly
//! two objects it *is* the exact P∀NN probability.
//!
//! The implementation keeps the joint distribution sparse (only reachable
//! `(state of o, state of o_a)` pairs are stored), so the cost is
//! `O(|T| · k_o · k_a)` where `k_x` bounds the per-timestamp support sizes.

use crate::query::Query;
use rustc_hash::FxHashMap;
use ust_markov::{AdaptedModel, StateId, Timestamp};
use ust_spatial::StateSpace;

/// Exact probability that `o` dominates (is at least as close as) `other` with
/// respect to the query at every timestamp of the query's time set.
///
/// Both objects must cover the whole query interval; timestamps outside an
/// object's covered interval make the result `0` (the object cannot dominate
/// at a timestamp where it does not exist).
///
/// Ties (`d(q, o) == d(q, other)`) count as domination, matching the `≤` in
/// Definitions 1 and 2.
pub fn domination_probability(
    o: &AdaptedModel,
    other: &AdaptedModel,
    space: &StateSpace,
    query: &Query,
) -> f64 {
    let times = query.times();
    let Some(&first) = times.first() else { return 1.0 };
    if !times.iter().all(|&t| o.covers(t) && other.covers(t)) {
        return 0.0;
    }

    // Joint distribution over (state of o, state of other), kept sparse.
    let mut joint: FxHashMap<(StateId, StateId), f64> = FxHashMap::default();
    {
        let po = o.posterior_at(first).expect("covered");
        // The two objects are independent given their own observations, so the
        // initial joint distribution is the product of the marginals -- but we
        // must start the *processes* at `first`, and from then on evolve each
        // object with its own adapted chain (which already encodes all of its
        // observations). Starting from the posterior marginals at `first` and
        // evolving with the adapted chains yields exactly the joint law of the
        // two trajectories restricted to [first, last].
        let pa = other.posterior_at(first).expect("covered");
        for (so, wo) in po.iter() {
            for (sa, wa) in pa.iter() {
                joint.insert((so, sa), wo * wa);
            }
        }
    }

    let is_query_time = |t: Timestamp| times.binary_search(&t).is_ok();
    let last = *times.last().expect("non-empty");

    // Filter at the first timestamp if it is a query timestamp.
    if is_query_time(first) {
        let q = query.position_at(first).expect("validated");
        joint.retain(|&(so, sa), _| {
            space.position(so).dist2(&q) <= space.position(sa).dist2(&q)
        });
    }

    let mut t = first;
    while t < last {
        let mut next: FxHashMap<(StateId, StateId), f64> = FxHashMap::default();
        // Evolve in key order, not hash order: f64 accumulation is
        // order-sensitive at the last bit, and this probability feeds the
        // exact-result path, which must not depend on hash-map internals.
        let mut entries: Vec<((StateId, StateId), f64)> = joint.into_iter().collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        for ((so, sa), w) in entries {
            let row_o = o.transition_row(t, so).expect("reachable state has a row");
            let row_a = other.transition_row(t, sa).expect("reachable state has a row");
            for (no, wo) in row_o.iter() {
                for (na, wa) in row_a.iter() {
                    let mass = w * wo * wa;
                    if mass > 0.0 {
                        *next.entry((no, na)).or_insert(0.0) += mass;
                    }
                }
            }
        }
        t += 1;
        if is_query_time(t) {
            let q = query.position_at(t).expect("validated");
            next.retain(|&(so, sa), _| {
                space.position(so).dist2(&q) <= space.position(sa).dist2(&q)
            });
        }
        joint = next;
    }
    // Same discipline for the final reduction: sum the surviving mass in key
    // order so the result is bit-stable across hash-map implementations.
    let mut survivors: Vec<((StateId, StateId), f64)> = joint.into_iter().collect();
    survivors.sort_unstable_by_key(|&(key, _)| key);
    survivors.into_iter().map(|(_, mass)| mass).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_pnn;
    use std::sync::Arc;
    use ust_markov::{CsrMatrix, MarkovModel};
    use ust_spatial::Point;

    fn line_space(n: usize) -> StateSpace {
        StateSpace::from_points((0..n).map(|i| Point::new(i as f64, 0.0)).collect())
    }

    /// Random-walk chain on a line with stay/left/right moves.
    fn walk_chain(n: usize) -> MarkovModel {
        let rows = (0..n as i64)
            .map(|i| {
                let mut row = vec![(i as StateId, 1.0)];
                if i > 0 {
                    row.push((i as StateId - 1, 1.0));
                }
                if (i as usize) < n - 1 {
                    row.push((i as StateId + 1, 1.0));
                }
                row
            })
            .collect();
        MarkovModel::homogeneous(CsrMatrix::stochastic_from_weights(rows))
    }

    #[test]
    fn deterministic_objects_dominate_with_certainty() {
        let space = line_space(6);
        let model = MarkovModel::homogeneous(CsrMatrix::identity(6));
        let near = AdaptedModel::build(&model, &[(0, 1), (3, 1)]).unwrap();
        let far = AdaptedModel::build(&model, &[(0, 4), (3, 4)]).unwrap();
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0, 1, 2, 3]).unwrap();
        assert!((domination_probability(&near, &far, &space, &q) - 1.0).abs() < 1e-12);
        assert!(domination_probability(&far, &near, &space, &q).abs() < 1e-12);
    }

    #[test]
    fn ties_count_as_domination() {
        let space = line_space(4);
        let model = MarkovModel::homogeneous(CsrMatrix::identity(4));
        let a = AdaptedModel::build(&model, &[(0, 2), (2, 2)]).unwrap();
        let b = AdaptedModel::build(&model, &[(0, 2), (2, 2)]).unwrap();
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0, 1, 2]).unwrap();
        assert!((domination_probability(&a, &b, &space, &q) - 1.0).abs() < 1e-12);
        assert!((domination_probability(&b, &a, &space, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn objects_not_covering_the_interval_cannot_dominate() {
        let space = line_space(4);
        let model = MarkovModel::homogeneous(CsrMatrix::identity(4));
        let a = AdaptedModel::build(&model, &[(0, 1), (1, 1)]).unwrap();
        let b = AdaptedModel::build(&model, &[(0, 3), (5, 3)]).unwrap();
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0, 1, 2]).unwrap();
        assert_eq!(domination_probability(&a, &b, &space, &q), 0.0);
    }

    #[test]
    fn two_object_domination_equals_exact_forall_probability() {
        // With exactly two objects, P∀NN(o) = P(o dominates the other over T).
        let space = line_space(8);
        let chain = walk_chain(8);
        let o1 = Arc::new(AdaptedModel::build(&chain, &[(0, 2), (4, 3)]).unwrap());
        let o2 = Arc::new(AdaptedModel::build(&chain, &[(0, 5), (4, 4)]).unwrap());
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0, 1, 2, 3, 4]).unwrap();
        let exact = exact_pnn(
            &[(1, o1.clone()), (2, o2.clone())],
            &space,
            &q,
            1_000_000,
        )
        .unwrap();
        let dom_1 = domination_probability(&o1, &o2, &space, &q);
        let dom_2 = domination_probability(&o2, &o1, &space, &q);
        assert!(
            (dom_1 - exact.forall_of(1)).abs() < 1e-9,
            "P(o1 ≺ o2) = {dom_1} vs exact P∀NN(o1) = {}",
            exact.forall_of(1)
        );
        assert!((dom_2 - exact.forall_of(2)).abs() < 1e-9);
    }

    #[test]
    fn domination_is_anti_monotone_in_the_time_set() {
        let space = line_space(8);
        let chain = walk_chain(8);
        let o1 = AdaptedModel::build(&chain, &[(0, 2), (4, 3)]).unwrap();
        let o2 = AdaptedModel::build(&chain, &[(0, 5), (4, 4)]).unwrap();
        let short = Query::at_point(Point::new(0.0, 0.0), vec![1, 2]).unwrap();
        let long = Query::at_point(Point::new(0.0, 0.0), vec![1, 2, 3]).unwrap();
        let p_short = domination_probability(&o1, &o2, &space, &short);
        let p_long = domination_probability(&o1, &o2, &space, &long);
        assert!(p_long <= p_short + 1e-12);
    }

    #[test]
    fn domination_over_non_query_gaps_still_propagates_the_chain() {
        // Query timestamps {0, 4}: the joint chain must be propagated through
        // the intermediate (unconstrained) timestamps without filtering there.
        let space = line_space(8);
        let chain = walk_chain(8);
        let o1 = Arc::new(AdaptedModel::build(&chain, &[(0, 2), (4, 2)]).unwrap());
        let o2 = Arc::new(AdaptedModel::build(&chain, &[(0, 5), (4, 5)]).unwrap());
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0, 4]).unwrap();
        let dom = domination_probability(&o1, &o2, &space, &q);
        let exact = exact_pnn(&[(1, o1), (2, o2)], &space, &q, 1_000_000).unwrap();
        assert!((dom - exact.forall_of(1)).abs() < 1e-9);
    }
}
