//! Query specification.
//!
//! All query semantics of the paper take "a certain reference state or
//! trajectory `q` and a set of timesteps `T`" (Section 3.2). A query state is
//! a trivial query trajectory, so [`Query`] stores a set of timestamps plus
//! either a constant location or one location per timestamp.

use crate::govern::QueryPhase;
use crate::results::QueryStats;
use crate::Timestamp;
use rustc_hash::FxHashMap;
use ust_spatial::Point;

/// Errors raised when constructing or evaluating queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query timestamp set was empty.
    EmptyTimes,
    /// Query timestamps were not strictly increasing.
    UnsortedTimes,
    /// A per-timestamp query trajectory is missing the position for a
    /// timestamp of `T`.
    MissingPosition {
        /// The timestamp without a position.
        time: Timestamp,
    },
    /// The probability threshold was outside `[0, 1]`.
    InvalidThreshold {
        /// The offending threshold.
        tau: f64,
    },
    /// An object's observations contradict its a-priori model, so no
    /// a-posteriori model exists.
    Adaptation {
        /// The object whose adaptation failed.
        object: crate::ObjectId,
        /// The underlying adaptation error.
        error: ust_markov::AdaptError,
    },
    /// An object id that does not exist in the trajectory database was
    /// requested (previously misreported as [`AdaptError::NoObservations`]).
    ///
    /// [`AdaptError::NoObservations`]: ust_markov::AdaptError::NoObservations
    UnknownObject {
        /// The id no database object carries.
        object: crate::ObjectId,
    },
    /// The evaluation ran past its [`QueryBudget`](crate::govern::QueryBudget)
    /// deadline in a phase with no degradation semantics (see the contract in
    /// [`crate::govern`]). Transient: never cached, retry may succeed.
    DeadlineExceeded {
        /// The phase whose checkpoint observed the breach.
        phase: QueryPhase,
        /// Partial statistics gathered up to the breach (boxed to keep the
        /// non-budget variants small).
        stats: Box<QueryStats>,
    },
    /// The evaluation's [`CancelToken`](crate::govern::CancelToken) was
    /// cancelled. Transient: never cached.
    Cancelled {
        /// The phase whose checkpoint observed the cancellation.
        phase: QueryPhase,
        /// Partial statistics gathered up to the cancellation.
        stats: Box<QueryStats>,
    },
    /// A deterministic resource cap of the budget was exceeded. Unlike the
    /// deadline this is reproducible — the same query against the same cap
    /// always stops at the same point.
    BudgetExhausted {
        /// The phase whose checkpoint observed the breach.
        phase: QueryPhase,
        /// Which resource blew the cap (e.g. `"diamonds"`).
        resource: &'static str,
        /// The configured cap.
        limit: usize,
        /// Partial statistics gathered up to the breach.
        stats: Box<QueryStats>,
    },
}

impl QueryError {
    /// The partial [`QueryStats`] a budget error carries (`None` for the
    /// validation and adaptation errors, which happen before any phase
    /// accounting exists).
    pub fn partial_stats(&self) -> Option<&QueryStats> {
        match self {
            QueryError::DeadlineExceeded { stats, .. }
            | QueryError::Cancelled { stats, .. }
            | QueryError::BudgetExhausted { stats, .. } => Some(stats),
            _ => None,
        }
    }

    /// Mutable access for the engine layers that enrich partial stats on the
    /// way out (candidate counts, phase timings).
    pub(crate) fn partial_stats_mut(&mut self) -> Option<&mut QueryStats> {
        match self {
            QueryError::DeadlineExceeded { stats, .. }
            | QueryError::Cancelled { stats, .. }
            | QueryError::BudgetExhausted { stats, .. } => Some(stats),
            _ => None,
        }
    }

    /// Whether this error is transient — tied to one evaluation's budget
    /// rather than to the (immutable) data. Transient errors must never
    /// enter the adaptation cache's `Failed` slots: a later query with a
    /// fresh budget can succeed where this one was cut short.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            QueryError::DeadlineExceeded { .. }
                | QueryError::Cancelled { .. }
                | QueryError::BudgetExhausted { .. }
        )
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::EmptyTimes => write!(f, "query needs at least one timestamp"),
            QueryError::UnsortedTimes => write!(f, "query timestamps must be strictly increasing"),
            QueryError::MissingPosition { time } => {
                write!(f, "query trajectory has no position for timestamp {time}")
            }
            QueryError::InvalidThreshold { tau } => {
                write!(f, "probability threshold {tau} is outside [0, 1]")
            }
            QueryError::Adaptation { object, error } => {
                write!(f, "model adaptation failed for object {object}: {error}")
            }
            QueryError::UnknownObject { object } => {
                write!(f, "the database has no object with id {object}")
            }
            QueryError::DeadlineExceeded { phase, .. } => {
                write!(f, "query deadline exceeded during the {phase} phase")
            }
            QueryError::Cancelled { phase, .. } => {
                write!(f, "query cancelled during the {phase} phase")
            }
            QueryError::BudgetExhausted { phase, resource, limit, .. } => {
                write!(f, "query budget exhausted during the {phase} phase: more than {limit} {resource}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The (certain) location of the query over time.
#[derive(Debug, Clone)]
enum QueryLocation {
    /// A constant location (a query *state*).
    Static(Point),
    /// One location per query timestamp (a query *trajectory*).
    PerTime(FxHashMap<Timestamp, Point>),
}

/// A probabilistic NN query input: the reference state/trajectory `q` and the
/// query timestamps `T`.
#[derive(Debug, Clone)]
pub struct Query {
    times: Vec<Timestamp>,
    location: QueryLocation,
}

impl Query {
    /// A query with a constant reference location (e.g. the bank of the
    /// robbery example) over the given timestamps.
    pub fn at_point(
        location: Point,
        times: impl IntoIterator<Item = Timestamp>,
    ) -> Result<Self, QueryError> {
        let times = Self::validate_times(times)?;
        Ok(Query { times, location: QueryLocation::Static(location) })
    }

    /// A query with a constant reference location over the inclusive interval
    /// `[from, to]`.
    pub fn at_point_interval(location: Point, from: Timestamp, to: Timestamp) -> Result<Self, QueryError> {
        Self::at_point(location, from..=to)
    }

    /// A query given by a certain reference trajectory: one position per query
    /// timestamp.
    pub fn with_trajectory(
        positions: impl IntoIterator<Item = (Timestamp, Point)>,
    ) -> Result<Self, QueryError> {
        let mut map: FxHashMap<Timestamp, Point> = FxHashMap::default();
        let mut times: Vec<Timestamp> = Vec::new();
        for (t, p) in positions {
            if map.insert(t, p).is_none() {
                times.push(t);
            }
        }
        times.sort_unstable();
        if times.is_empty() {
            return Err(QueryError::EmptyTimes);
        }
        Ok(Query { times, location: QueryLocation::PerTime(map) })
    }

    fn validate_times(
        times: impl IntoIterator<Item = Timestamp>,
    ) -> Result<Vec<Timestamp>, QueryError> {
        let times: Vec<Timestamp> = times.into_iter().collect();
        if times.is_empty() {
            return Err(QueryError::EmptyTimes);
        }
        if times.windows(2).any(|w| w[0] >= w[1]) {
            return Err(QueryError::UnsortedTimes);
        }
        Ok(times)
    }

    /// The query timestamps `T`, strictly increasing.
    #[inline]
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// Number of query timestamps `|T|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Queries always have at least one timestamp.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First query timestamp.
    #[inline]
    pub fn start(&self) -> Timestamp {
        self.times[0]
    }

    /// Last query timestamp.
    #[inline]
    pub fn end(&self) -> Timestamp {
        self.times[self.times.len() - 1]
    }

    /// The query position at timestamp `t`, or `None` if the query trajectory
    /// has no position there.
    pub fn position_at(&self, t: Timestamp) -> Option<Point> {
        match &self.location {
            QueryLocation::Static(p) => Some(*p),
            QueryLocation::PerTime(map) => map.get(&t).copied(),
        }
    }

    /// Validates that a position exists for every query timestamp.
    pub fn validate(&self) -> Result<(), QueryError> {
        for &t in &self.times {
            if self.position_at(t).is_none() {
                return Err(QueryError::MissingPosition { time: t });
            }
        }
        Ok(())
    }

    /// Returns a sub-query restricted to the given subset of timestamps (used
    /// by the PCNN lattice). Timestamps not belonging to this query are
    /// silently dropped.
    pub fn restricted_to(&self, subset: &[Timestamp]) -> Result<Query, QueryError> {
        let keep: Vec<Timestamp> =
            subset.iter().copied().filter(|t| self.times.contains(t)).collect();
        if keep.is_empty() {
            return Err(QueryError::EmptyTimes);
        }
        match &self.location {
            QueryLocation::Static(p) => Query::at_point(*p, keep),
            QueryLocation::PerTime(map) => {
                Query::with_trajectory(keep.into_iter().map(|t| (t, map[&t])))
            }
        }
    }

    /// Validates a probability threshold.
    pub fn validate_threshold(tau: f64) -> Result<(), QueryError> {
        if !(0.0..=1.0).contains(&tau) || tau.is_nan() {
            Err(QueryError::InvalidThreshold { tau })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_query_construction() {
        let q = Query::at_point(Point::new(1.0, 2.0), vec![3, 4, 5]).unwrap();
        assert_eq!(q.times(), &[3, 4, 5]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.start(), 3);
        assert_eq!(q.end(), 5);
        assert_eq!(q.position_at(4), Some(Point::new(1.0, 2.0)));
        assert_eq!(q.position_at(99), Some(Point::new(1.0, 2.0)));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn interval_constructor() {
        let q = Query::at_point_interval(Point::ORIGIN, 2, 8).unwrap();
        assert_eq!(q.times(), &[2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn invalid_times_are_rejected() {
        assert_eq!(
            Query::at_point(Point::ORIGIN, Vec::<Timestamp>::new()).unwrap_err(),
            QueryError::EmptyTimes
        );
        assert_eq!(
            Query::at_point(Point::ORIGIN, vec![1, 1]).unwrap_err(),
            QueryError::UnsortedTimes
        );
        assert_eq!(
            Query::at_point(Point::ORIGIN, vec![5, 2]).unwrap_err(),
            QueryError::UnsortedTimes
        );
    }

    #[test]
    fn trajectory_query_positions() {
        let q = Query::with_trajectory(vec![
            (2, Point::new(0.0, 0.0)),
            (1, Point::new(1.0, 0.0)),
            (3, Point::new(2.0, 0.0)),
        ])
        .unwrap();
        assert_eq!(q.times(), &[1, 2, 3]);
        assert_eq!(q.position_at(1), Some(Point::new(1.0, 0.0)));
        assert_eq!(q.position_at(4), None);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn restriction_to_subset() {
        let q = Query::at_point(Point::ORIGIN, vec![1, 2, 3, 4]).unwrap();
        let sub = q.restricted_to(&[2, 4, 9]).unwrap();
        assert_eq!(sub.times(), &[2, 4]);
        assert!(q.restricted_to(&[99]).is_err());
        let traj = Query::with_trajectory(vec![(1, Point::ORIGIN), (2, Point::new(1.0, 1.0))]).unwrap();
        let sub = traj.restricted_to(&[2]).unwrap();
        assert_eq!(sub.position_at(2), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn unknown_object_error_display() {
        let err = QueryError::UnknownObject { object: 17 };
        assert_eq!(err.to_string(), "the database has no object with id 17");
        assert_ne!(
            err,
            QueryError::Adaptation {
                object: 17,
                error: ust_markov::AdaptError::NoObservations,
            },
            "a missing object is not an adaptation failure"
        );
    }

    #[test]
    fn threshold_validation() {
        assert!(Query::validate_threshold(0.0).is_ok());
        assert!(Query::validate_threshold(1.0).is_ok());
        assert!(Query::validate_threshold(-0.1).is_err());
        assert!(Query::validate_threshold(1.1).is_err());
        assert!(Query::validate_threshold(f64::NAN).is_err());
    }
}
