//! The observation write-ahead log: a checksummed, frame-per-batch append
//! log that makes incremental ingest crash-safe (DESIGN.md §10).
//!
//! A `.ustore` file is rewritten wholesale; appending a handful of fresh
//! observations must not pay that cost, and must not die with the process.
//! Instead, every appended batch becomes one *frame* of a sidecar log at
//! [`wal_path`] (`<store>.wal`):
//!
//! ```text
//! wal    := magic(8 = "USTWALOG") version(u32) frame*
//! frame  := payload_len(u64) fnv1a64(u64) payload(payload_len)
//! payload := append_count(u64)
//!            { object_id(u32) obs_count(u64) { time(u32) state(u32) }* }*
//! ```
//!
//! One frame is one atomic unit: [`append_frame`] writes the frame with a
//! single `write_all` and fsyncs before returning, so after a crash the tail
//! frame is either fully present (checksum verifies) or torn.
//!
//! # The torn-tail rule
//!
//! [`decode_wal`] distinguishes two kinds of damage:
//!
//! * **Torn tail** — the byte stream ends mid-frame, a frame announces more
//!   payload than the file holds, or the tail frame's checksum fails. That is
//!   exactly what an interrupted append leaves behind, so the reader *stops*
//!   at the last valid frame and reports the cut point ([`WalContents::valid_len`])
//!   instead of erring; recovery truncates the file there ([`repair_wal`]).
//!   A partially written header (shorter than 12 bytes but a prefix of the
//!   canonical header) is the degenerate case: an empty log.
//! * **Corruption** — damage *inside* a checksum-valid frame (impossible
//!   counts, non-increasing times, trailing bytes) or a header that is not a
//!   prefix of the canonical one. No interrupted write can produce these, so
//!   they surface as typed [`StoreError`]s, never as silent truncation.
//!
//! Replay semantics (which observations a decoded batch may touch, and the
//! idempotent-skip rule that makes a checkpoint-then-crash recoverable) live
//! with the store owner, `ust_core::EngineStore`.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::format::{fnv1a64, ByteReader, ByteWriter};
use ust_trajectory::{ObjectId, Observation};

/// The eight magic bytes every WAL starts with.
pub const WAL_MAGIC: [u8; 8] = *b"USTWALOG";

/// The WAL format version this build writes and reads. Like the store
/// container, other versions are rejected outright — there is no
/// cross-version "best effort" replay.
pub const WAL_VERSION: u32 = 1;

/// Bytes of the WAL header: magic plus version.
const WAL_HEADER_LEN: usize = WAL_MAGIC.len() + 4;

/// One append batch: per entry, the observations appended to (or creating)
/// the identified object. A batch is the WAL's atomic unit.
pub type WalBatch = Vec<(ObjectId, Vec<Observation>)>;

/// A decoded WAL: the valid frames plus where the valid bytes end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// The decoded batches, one per valid frame, in append order.
    pub batches: Vec<WalBatch>,
    /// Byte offset just past the last valid frame (the header length for an
    /// empty or header-torn log). Everything after it is a torn tail.
    pub valid_len: u64,
    /// Total size of the byte stream that was decoded.
    pub total_len: u64,
    /// Total observations over all decoded batches.
    pub observations: usize,
}

impl WalContents {
    /// Bytes of torn tail discarded by the decoder (zero for a clean log).
    pub fn torn_bytes(&self) -> u64 {
        self.total_len - self.valid_len
    }
}

/// Stats of one durably appended frame (see [`append_frame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalAppendStats {
    /// Bytes of the appended frame (header excluded).
    pub frame_bytes: u64,
    /// Total WAL file size after the append, header included.
    pub wal_bytes: u64,
    /// Entries in the appended batch.
    pub appends: usize,
    /// Observations in the appended batch.
    pub observations: usize,
}

/// The sidecar WAL path of a store file: `fig08.ustore` → `fig08.ustore.wal`.
pub fn wal_path(store_path: &Path) -> PathBuf {
    let mut os = store_path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// The canonical 12-byte WAL header.
pub fn encode_wal_header() -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&WAL_MAGIC);
    w.u32(WAL_VERSION);
    w.into_bytes()
}

/// Encodes one batch as a length-prefixed, checksummed frame.
pub fn encode_frame(batch: &[(ObjectId, Vec<Observation>)]) -> Vec<u8> {
    let mut p = ByteWriter::new();
    p.u64(batch.len() as u64);
    for (id, observations) in batch {
        p.u32(*id);
        p.u64(observations.len() as u64);
        for o in observations {
            p.u32(o.time);
            p.u32(o.state);
        }
    }
    let payload = p.into_bytes();
    let mut w = ByteWriter::new();
    w.u64(payload.len() as u64);
    w.u64(fnv1a64(&payload));
    w.bytes(&payload);
    w.into_bytes()
}

/// Decodes a WAL byte stream under the torn-tail rule (see the module docs):
/// structural damage at the tail truncates, damage inside a checksum-valid
/// frame is a typed error. Never panics, never sizes an allocation from a
/// count the input cannot back.
pub fn decode_wal(bytes: &[u8]) -> Result<WalContents, StoreError> {
    if bytes.len() < WAL_HEADER_LEN {
        // Shorter than the header: an interrupted first append leaves a
        // prefix of the canonical header behind — an empty log. Anything
        // else is hostile bytes, not a torn write.
        if encode_wal_header().starts_with(bytes) {
            return Ok(WalContents {
                batches: Vec::new(),
                valid_len: 0,
                total_len: bytes.len() as u64,
                observations: 0,
            });
        }
        return match bytes.get(..WAL_MAGIC.len()) {
            Some(magic) if magic == WAL_MAGIC => {
                Err(StoreError::Truncated { context: "wal header" })
            }
            _ => Err(StoreError::BadMagic),
        };
    }
    let mut r = ByteReader::new(bytes, "wal header");
    if r.bytes(WAL_MAGIC.len())? != WAL_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32()?;
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }

    let mut batches: Vec<WalBatch> = Vec::new();
    let mut observations = 0usize;
    let mut valid_len = WAL_HEADER_LEN as u64;
    while !r.is_empty() {
        // Frame structure checks: fewer than 16 header bytes, a payload the
        // file cannot back, or a checksum mismatch are all what an
        // interrupted append leaves behind — stop at the last valid frame.
        if r.remaining() < 16 {
            break;
        }
        r.set_context("wal frame header");
        let payload_len = r.u64()?;
        let checksum = r.u64()?;
        if payload_len > r.remaining() as u64 {
            break;
        }
        let payload = r.bytes(payload_len as usize)?;
        if fnv1a64(payload) != checksum {
            break;
        }
        // The checksum verifies, so this frame was once written completely;
        // anything wrong inside it is corruption and errs.
        let batch = decode_frame_payload(payload)?;
        observations += batch.iter().map(|(_, obs)| obs.len()).sum::<usize>();
        batches.push(batch);
        valid_len += 16 + payload_len;
    }
    Ok(WalContents { batches, valid_len, total_len: bytes.len() as u64, observations })
}

/// Decodes one checksum-verified frame payload. Every count is proved
/// against the remaining payload before an allocation is sized from it.
fn decode_frame_payload(payload: &[u8]) -> Result<WalBatch, StoreError> {
    let mut r = ByteReader::new(payload, "wal frame");
    // Smallest possible append entry: id(4) + count(8) + one observation(8).
    let appends = r.count("wal frame appends", 20)?;
    if appends == 0 {
        return Err(StoreError::Malformed { context: "wal frame with zero appends" });
    }
    let mut batch: WalBatch = Vec::with_capacity(appends);
    for _ in 0..appends {
        let id = r.u32()?;
        let count = r.count("wal append observations", 8)?;
        if count == 0 {
            return Err(StoreError::Malformed { context: "wal append with zero observations" });
        }
        let mut observations = Vec::with_capacity(count);
        let mut last: Option<u32> = None;
        for _ in 0..count {
            let time = r.u32()?;
            let state = r.u32()?;
            if last.is_some_and(|t| time <= t) {
                return Err(StoreError::Malformed {
                    context: "wal append times not strictly increasing",
                });
            }
            last = Some(time);
            observations.push(Observation::new(time, state));
        }
        batch.push((id, observations));
    }
    r.expect_end("wal frame payload")?;
    Ok(batch)
}

/// Reads and decodes the WAL at `path`. A missing file is `Ok(None)` — a
/// store without a sidecar log simply has nothing to replay. Fault point:
/// `persist.wal.replay.read` (checked even before the existence probe, so
/// the chaos suite can fire it against a WAL-less store).
pub fn read_wal(path: &Path) -> Result<Option<WalContents>, StoreError> {
    if let Some(message) = ust_fault::inject("persist.wal.replay.read") {
        return Err(StoreError::Io { message });
    }
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    Ok(Some(decode_wal(&bytes)?))
}

/// Durably appends one batch as a frame: open (create on first use, which
/// also writes the header), one `write_all`, then fsync. The batch must be
/// non-empty, with non-empty, strictly-increasing-time entries — the same
/// invariants [`decode_wal`] enforces, checked here so an invalid batch can
/// never poison the log. Fault points: `persist.wal.append.write` (before
/// the write) and `persist.wal.append.sync` (before the fsync).
///
/// The caller is responsible for the file having no torn tail (recovery
/// truncates one via [`repair_wal`] before any new append), so the appended
/// frame lands on a valid frame boundary.
pub fn append_frame(
    path: &Path,
    batch: &[(ObjectId, Vec<Observation>)],
) -> Result<WalAppendStats, StoreError> {
    if batch.is_empty() {
        return Err(StoreError::Malformed { context: "wal frame with zero appends" });
    }
    for (_, observations) in batch {
        if observations.is_empty() {
            return Err(StoreError::Malformed { context: "wal append with zero observations" });
        }
        for (a, b) in observations.iter().zip(observations.iter().skip(1)) {
            if a.time >= b.time {
                return Err(StoreError::Malformed {
                    context: "wal append times not strictly increasing",
                });
            }
        }
    }
    if let Some(message) = ust_fault::inject("persist.wal.append.write") {
        return Err(StoreError::Io { message });
    }
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    let existing = file.metadata()?.len();
    let frame = encode_frame(batch);
    let mut bytes = if existing == 0 { encode_wal_header() } else { Vec::new() };
    bytes.extend_from_slice(&frame);
    file.write_all(&bytes)?;
    if let Some(message) = ust_fault::inject("persist.wal.append.sync") {
        return Err(StoreError::Io { message });
    }
    file.sync_data()?;
    Ok(WalAppendStats {
        frame_bytes: frame.len() as u64,
        wal_bytes: existing + bytes.len() as u64,
        appends: batch.len(),
        observations: batch.iter().map(|(_, obs)| obs.len()).sum(),
    })
}

/// Truncates a torn tail off the WAL in place (to `valid_len` bytes, as
/// reported by [`decode_wal`]) and syncs, so the next append lands on a
/// valid frame boundary.
pub fn repair_wal(path: &Path, valid_len: u64) -> Result<(), StoreError> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()?;
    Ok(())
}

/// Removes the WAL after a successful checkpoint; a missing file is fine.
/// Fault point: `persist.checkpoint.truncate`. A failure here leaves a
/// *stale* WAL next to a checkpoint that already contains its frames — safe,
/// because replay is idempotent (`ust_core::EngineStore` skips observations
/// the store already holds).
pub fn truncate_wal(path: &Path) -> Result<(), StoreError> {
    if let Some(message) = ust_fault::inject("persist.checkpoint.truncate") {
        return Err(StoreError::Io { message });
    }
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(entries: &[(ObjectId, &[(u32, u32)])]) -> WalBatch {
        entries
            .iter()
            .map(|&(id, obs)| {
                (id, obs.iter().map(|&(t, s)| Observation::new(t, s)).collect::<Vec<_>>())
            })
            .collect()
    }

    fn wal_bytes(batches: &[WalBatch]) -> Vec<u8> {
        let mut bytes = encode_wal_header();
        for b in batches {
            bytes.extend_from_slice(&encode_frame(b));
        }
        bytes
    }

    #[test]
    fn roundtrip_preserves_batches_and_offsets() {
        let batches =
            vec![batch(&[(7, &[(3, 1), (5, 2)])]), batch(&[(7, &[(9, 0)]), (11, &[(1, 4)])])];
        let bytes = wal_bytes(&batches);
        let decoded = decode_wal(&bytes).unwrap();
        assert_eq!(decoded.batches, batches);
        assert_eq!(decoded.valid_len, bytes.len() as u64);
        assert_eq!(decoded.torn_bytes(), 0);
        assert_eq!(decoded.observations, 4);
    }

    #[test]
    fn empty_and_header_only_logs_decode_empty() {
        let decoded = decode_wal(&[]).unwrap();
        assert!(decoded.batches.is_empty());
        assert_eq!(decoded.valid_len, 0);
        let header = encode_wal_header();
        let decoded = decode_wal(&header).unwrap();
        assert!(decoded.batches.is_empty());
        assert_eq!(decoded.valid_len, header.len() as u64);
        // A torn header write is a prefix of the canonical header: empty log.
        let decoded = decode_wal(&header[..7]).unwrap();
        assert!(decoded.batches.is_empty());
        assert_eq!(decoded.valid_len, 0);
        assert_eq!(decoded.torn_bytes(), 7);
    }

    #[test]
    fn torn_tails_truncate_instead_of_erroring() {
        let batches = vec![batch(&[(1, &[(0, 0), (4, 1)])]), batch(&[(2, &[(2, 3)])])];
        let clean = wal_bytes(&batches);
        let first_end = (WAL_HEADER_LEN + encode_frame(&batches[0]).len()) as u64;

        // Cut anywhere inside the second frame: the first survives.
        for cut in (first_end as usize + 1)..clean.len() {
            let decoded = decode_wal(&clean[..cut]).unwrap();
            assert_eq!(decoded.batches.len(), 1, "cut at {cut}");
            assert_eq!(decoded.valid_len, first_end, "cut at {cut}");
            assert_eq!(decoded.torn_bytes(), cut as u64 - first_end, "cut at {cut}");
        }

        // A flipped bit in the tail frame's payload fails its checksum: torn.
        let mut corrupt = clean.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x10;
        let decoded = decode_wal(&corrupt).unwrap();
        assert_eq!(decoded.batches.len(), 1);
        assert_eq!(decoded.valid_len, first_end);

        // Truncating to valid_len and re-decoding is a fixpoint.
        let repaired = &corrupt[..decoded.valid_len as usize];
        let again = decode_wal(repaired).unwrap();
        assert_eq!(again.batches, decoded.batches);
        assert_eq!(again.torn_bytes(), 0);
    }

    #[test]
    fn header_and_frame_corruption_is_typed() {
        assert_eq!(decode_wal(b"NOTAWAL!").unwrap_err(), StoreError::BadMagic);
        assert_eq!(decode_wal(b"USTWALOG\xff\x00").unwrap_err(), StoreError::Truncated {
            context: "wal header"
        });
        let mut w = ByteWriter::new();
        w.bytes(&WAL_MAGIC);
        w.u32(WAL_VERSION + 9);
        assert_eq!(
            decode_wal(&w.into_bytes()).unwrap_err(),
            StoreError::UnsupportedVersion { found: WAL_VERSION + 9 }
        );

        // A checksum-valid frame with zero appends is corruption, not a tear.
        let mut bytes = encode_wal_header();
        bytes.extend_from_slice(&encode_frame(&[]));
        assert_eq!(
            decode_wal(&bytes).unwrap_err(),
            StoreError::Malformed { context: "wal frame with zero appends" }
        );

        // Likewise non-increasing times inside a checksum-valid frame.
        let bad = batch(&[(3, &[(5, 0), (5, 1)])]);
        let mut bytes = encode_wal_header();
        bytes.extend_from_slice(&encode_frame(&bad));
        assert_eq!(
            decode_wal(&bytes).unwrap_err(),
            StoreError::Malformed { context: "wal append times not strictly increasing" }
        );
    }

    #[test]
    fn file_append_read_repair_cycle() {
        let dir = std::env::temp_dir();
        let store = dir.join(format!("ust_wal_unit_{}.ustore", std::process::id()));
        let path = wal_path(&store);
        assert!(path.to_string_lossy().ends_with(".ustore.wal"));
        let _ = std::fs::remove_file(&path);

        assert_eq!(read_wal(&path).unwrap(), None, "missing WAL reads as nothing to replay");

        let b1 = batch(&[(1, &[(0, 0), (3, 1)])]);
        let b2 = batch(&[(2, &[(5, 2)])]);
        let s1 = append_frame(&path, &b1).unwrap();
        assert_eq!(s1.appends, 1);
        assert_eq!(s1.observations, 2);
        let s2 = append_frame(&path, &b2).unwrap();
        assert!(s2.wal_bytes > s1.wal_bytes);
        assert_eq!(s2.wal_bytes, std::fs::metadata(&path).unwrap().len());

        let decoded = read_wal(&path).unwrap().unwrap();
        assert_eq!(decoded.batches, vec![b1.clone(), b2]);

        // Tear the tail on disk, then repair: only the first frame remains.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let torn = read_wal(&path).unwrap().unwrap();
        assert_eq!(torn.batches.len(), 1);
        assert!(torn.torn_bytes() > 0);
        repair_wal(&path, torn.valid_len).unwrap();
        let repaired = read_wal(&path).unwrap().unwrap();
        assert_eq!(repaired.batches, vec![b1]);
        assert_eq!(repaired.torn_bytes(), 0);

        truncate_wal(&path).unwrap();
        assert_eq!(read_wal(&path).unwrap(), None);
        truncate_wal(&path).unwrap(); // idempotent on a missing file
    }

    #[test]
    fn append_rejects_invalid_batches() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ust_wal_reject_{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            append_frame(&path, &[]).unwrap_err(),
            StoreError::Malformed { context: "wal frame with zero appends" }
        );
        assert_eq!(
            append_frame(&path, &batch(&[(1, &[])])).unwrap_err(),
            StoreError::Malformed { context: "wal append with zero observations" }
        );
        assert_eq!(
            append_frame(&path, &batch(&[(1, &[(4, 0), (2, 1)])])).unwrap_err(),
            StoreError::Malformed { context: "wal append times not strictly increasing" }
        );
        assert!(!path.exists(), "a rejected batch never touches the file");
    }
}
