//! The binary container format: magic, version gate, section framing and the
//! bounds-checked primitive reader/writer.
//!
//! ```text
//! store   := magic(8) version(u32) section_count(u32) section*
//! section := id(u32) payload_len(u64) checksum(u64) payload(payload_len)
//! ```
//!
//! All integers are little-endian and fixed-width; `f64`s travel as their IEEE
//! bit patterns, so encode→decode→encode is byte-identical. The checksum is
//! FNV-1a 64 over the payload bytes — the same digest primitive the bench
//! harness uses for result sets. Trailing bytes after the last section are an
//! error: a store is exactly its announced sections, nothing more.
//!
//! The reader never trusts a length before checking it against the remaining
//! input (`checked_mul`, no saturation), so a hostile 2⁶⁰ element count is a
//! typed [`StoreError::CountOverflow`] — not a giant `Vec::with_capacity`.

use crate::error::StoreError;

/// The eight magic bytes every store starts with.
pub const MAGIC: [u8; 8] = *b"USTSTORE";

/// The store format version this build writes and reads. Decoders reject any
/// other version outright ([`StoreError::UnsupportedVersion`]); there is no
/// cross-version "best effort" path.
pub const FORMAT_VERSION: u32 = 1;

/// Known section ids of format version 1.
pub mod section {
    /// The trajectory database (state space, a-priori models, objects).
    /// Required — every store has one.
    pub const DATABASE: u32 = 1;
    /// The built UST-tree (diamond arena + build stats; the R\*-tree is
    /// rebuilt by a deterministic STR bulk load on decode). Optional.
    pub const TREE: u32 = 2;
    /// Adapted (a-posteriori) Markov models from the adaptation cache.
    /// Optional.
    pub const MODELS: u32 = 3;
}

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64 over a byte slice — the per-section content checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut digest = FNV_OFFSET;
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

// ---------------------------------------------------------------------------
// ByteWriter
// ---------------------------------------------------------------------------

/// Append-only little-endian writer backing the encoders.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (little-endian).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

// ---------------------------------------------------------------------------
// ByteReader
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a byte slice.
///
/// Every primitive read checks the remaining length first and returns
/// [`StoreError::Truncated`] (tagged with the structure under decode) instead
/// of slicing out of bounds. Element counts go through [`ByteReader::count`],
/// which proves `count × min_element_size` bytes are actually present before
/// the caller sizes any allocation from it.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`; `context` tags truncation errors.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        ByteReader { buf, pos: 0, context }
    }

    /// Re-tags subsequent errors (cheap, call on entering a substructure).
    pub fn set_context(&mut self, context: &'static str) {
        self.context = context;
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context: self.context });
        }
        // The check above proves the range is in bounds (and pos + n cannot
        // overflow); `get` keeps the read panic-free even if a future edit
        // breaks that invariant.
        let out = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(StoreError::Truncated { context: self.context })?;
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an element count and proves the input can back it: the count
    /// times `min_element_size` (the smallest possible encoding of one
    /// element) must not exceed the remaining bytes. Returns the count as
    /// `usize`, safe to pass to `Vec::with_capacity`.
    pub fn count(
        &mut self,
        context: &'static str,
        min_element_size: usize,
    ) -> Result<usize, StoreError> {
        let raw = self.u64()?;
        let needed = raw.checked_mul(min_element_size as u64);
        match needed {
            Some(needed) if needed <= self.remaining() as u64 => Ok(raw as usize),
            _ => Err(StoreError::CountOverflow { context, count: raw }),
        }
    }

    /// Rejects the input if any bytes remain (`context` names the structure
    /// that should have consumed them).
    pub fn expect_end(&self, context: &'static str) -> Result<(), StoreError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(StoreError::Malformed { context })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.bytes(3).unwrap(), b"xyz");
        assert!(r.is_empty());
        r.expect_end("test").unwrap();
    }

    #[test]
    fn truncation_is_typed_and_tagged() {
        let mut r = ByteReader::new(&[1, 2], "header");
        assert_eq!(r.u32().unwrap_err(), StoreError::Truncated { context: "header" });
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn counts_are_checked_before_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // a count no input can back
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(
            r.count("entries", 8).unwrap_err(),
            StoreError::CountOverflow { context: "entries", count: u64::MAX }
        );
        // A plausible count passes.
        let mut w = ByteWriter::new();
        w.u64(2);
        w.u64(0);
        w.u64(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.count("entries", 8).unwrap(), 2);
    }

    #[test]
    fn fnv_checksum_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[0], "x");
        assert_eq!(
            r.expect_end("section payload").unwrap_err(),
            StoreError::Malformed { context: "section payload" }
        );
    }
}
