//! Forward–backward model adaptation (Section 5.2, Algorithm 2 of the paper).
//!
//! A traditional Monte-Carlo sampler that only uses the a-priori chain and the
//! first observation produces trajectories that almost never pass through the
//! later observations (Section 5.1, Figure 3): the expected number of attempts
//! per valid sample grows exponentially in the number of observations.
//!
//! The paper instead *adapts the model itself*: Bayesian inference transforms
//! the a-priori chain `M^o(t)` and the observations `Θ^o` into an
//! a-posteriori chain `F^o(t)` with
//!
//! ```text
//! F^o_ij(t) = P(o(t+1) = s_j | o(t) = s_i, Θ^o)
//! ```
//!
//! so that *every* realisation of the adapted chain is a possible trajectory
//! consistent with all observations, drawn exactly with its possible-world
//! probability.
//!
//! The construction has two phases (both `O(|T| · nnz)` with the sparse
//! representation used here):
//!
//! 1. **Forward phase** — walk time forward from the first observation,
//!    propagating the belief state and materialising the *time-reversed*
//!    chain `R^o(t)_{ij} = P(o(t-1)=s_j | o(t)=s_i, past^o(t))` via Bayes'
//!    theorem (Lemma 4). Each observation reached collapses the belief to the
//!    observed state.
//! 2. **Backward phase** — walk time backwards from the last observation
//!    using `R^o(t)`, which (by the reverse Markov property, Lemma 5)
//!    propagates the information of *future* observations into the past and
//!    yields both the a-posteriori transition matrices `F^o(t)` and the
//!    a-posteriori marginals `P(o(t) = s | Θ^o)`.

use crate::alias::AliasKernel;
use crate::model::TransitionModel;
use crate::sparse::SparseDist;
use crate::{StateId, Timestamp};
use rustc_hash::FxHashMap;

/// Errors produced by the model adaptation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// The observation set was empty.
    NoObservations,
    /// Observation timestamps were not strictly increasing.
    UnsortedObservations,
    /// An observation referenced a state outside the model's state space.
    StateOutOfRange {
        /// The offending observation time.
        time: Timestamp,
        /// The offending state.
        state: StateId,
    },
    /// The observations contradict the a-priori model: no possible trajectory
    /// of the chain visits all of them (Section 5.2.1 requires observations to
    /// be non-contradicting).
    ContradictoryObservations {
        /// The first time at which the belief state became incompatible.
        time: Timestamp,
    },
}

impl std::fmt::Display for AdaptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptError::NoObservations => write!(f, "object has no observations"),
            AdaptError::UnsortedObservations => {
                write!(f, "observation timestamps must be strictly increasing")
            }
            AdaptError::StateOutOfRange { time, state } => {
                write!(f, "observation at time {time} references unknown state {state}")
            }
            AdaptError::ContradictoryObservations { time } => {
                write!(f, "observations contradict the a-priori model at time {time}")
            }
        }
    }
}

impl std::error::Error for AdaptError {}

/// A time-slice of an (adapted) transition model: for each source state a
/// sparse distribution over target states.
#[derive(Debug, Clone, Default)]
pub struct TransitionTable {
    rows: FxHashMap<StateId, SparseDist>,
}

impl TransitionTable {
    /// Builds a table from raw per-row weights, normalizing every row.
    fn from_weights(rows: FxHashMap<StateId, Vec<(StateId, f64)>>) -> Self {
        let mut out: FxHashMap<StateId, SparseDist> = FxHashMap::default();
        out.reserve(rows.len());
        for (state, weights) in rows {
            let mut dist = SparseDist::from_pairs(weights);
            if dist.normalize() {
                out.insert(state, dist);
            }
        }
        TransitionTable { rows: out }
    }

    /// Reassembles a table from already-normalized per-row distributions,
    /// without renormalizing them. This is the store-loading counterpart of
    /// the private normalizing construction used during adaptation: the rows
    /// were normalized once when the model was built, and renormalizing on
    /// load would perturb their bit patterns. Duplicate source states keep
    /// the last distribution.
    pub fn from_rows(rows: impl IntoIterator<Item = (StateId, SparseDist)>) -> Self {
        TransitionTable { rows: rows.into_iter().collect() }
    }

    /// The outgoing distribution of `state`, if `state` is reachable at this
    /// time slice.
    pub fn row(&self, state: StateId) -> Option<&SparseDist> {
        self.rows.get(&state)
    }

    /// Number of source states with a stored row.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over `(source state, outgoing distribution)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &SparseDist)> {
        self.rows.iter().map(|(&s, d)| (s, d))
    }

    /// The rows sorted by ascending source state. The backing map is
    /// unordered, so this is the canonical deterministic view — it is what
    /// [`AliasKernel`] construction consumes, keeping the kernel layout
    /// byte-identical across platforms and runs.
    pub fn sorted_rows(&self) -> Vec<(StateId, &SparseDist)> {
        let mut rows: Vec<(StateId, &SparseDist)> = self.iter().collect();
        rows.sort_unstable_by_key(|&(s, _)| s);
        rows
    }
}

/// Configuration of the model adaptation.
///
/// The default configuration is the full forward–backward adaptation (the
/// "FB" model of Figure 12). Setting [`ModelAdaptation::uniform_transitions`]
/// reproduces the "FBU" ablation: the *support* of the a-priori chain is kept
/// but every transition out of a state is considered equally likely, as if the
/// turning probabilities had not been learned.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelAdaptation {
    /// Replace every a-priori row by a uniform distribution over its support
    /// ("FBU" in Figure 12).
    pub uniform_transitions: bool,
}

impl ModelAdaptation {
    /// The standard forward–backward adaptation.
    pub fn new() -> Self {
        Self::default()
    }

    /// The "FBU" ablation (uniform transition probabilities, learned support).
    pub fn with_uniform_transitions() -> Self {
        ModelAdaptation { uniform_transitions: true }
    }

    /// Runs Algorithm 2 for one object.
    ///
    /// `observations` must be sorted by strictly increasing time; each
    /// observation is a certain `(time, state)` pair.
    pub fn adapt<M: TransitionModel>(
        &self,
        model: &M,
        observations: &[(Timestamp, StateId)],
    ) -> Result<AdaptedModel, AdaptError> {
        let first = *observations.first().ok_or(AdaptError::NoObservations)?;
        if observations.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(AdaptError::UnsortedObservations);
        }
        for &(time, state) in observations {
            if (state as usize) >= model.num_states() {
                return Err(AdaptError::StateOutOfRange { time, state });
            }
        }
        let last = *observations.last().expect("non-empty");
        let start = first.0;
        let end = last.0;
        let horizon = (end - start) as usize;
        let obs_at: FxHashMap<Timestamp, StateId> = observations.iter().copied().collect();

        // ------------------------------------------------------------------
        // Forward phase: belief propagation + time-reversed chain R(t).
        // ------------------------------------------------------------------
        let mut forward: Vec<SparseDist> = Vec::with_capacity(horizon + 1);
        // reversed[k] is R(start + k + 1): rows indexed by the state at time
        // t = start+k+1, each a distribution over states at time t-1.
        let mut reversed: Vec<TransitionTable> = Vec::with_capacity(horizon);

        let mut belief = SparseDist::delta(first.1);
        forward.push(belief.clone());

        for step in 1..=horizon {
            let t = start + step as Timestamp;
            let mut acc: FxHashMap<StateId, f64> = FxHashMap::default();
            let mut back_rows: FxHashMap<StateId, Vec<(StateId, f64)>> = FxHashMap::default();
            for (j, pj) in belief.iter() {
                let (cols, vals) = model.row(j, t - 1);
                if cols.is_empty() {
                    continue;
                }
                let uniform = 1.0 / cols.len() as f64;
                for (idx, &i) in cols.iter().enumerate() {
                    let m_ji = if self.uniform_transitions { uniform } else { vals[idx] };
                    let w = m_ji * pj;
                    if w > 0.0 {
                        *acc.entry(i).or_insert(0.0) += w;
                        back_rows.entry(i).or_default().push((j, w));
                    }
                }
            }
            if acc.is_empty() {
                return Err(AdaptError::ContradictoryObservations { time: t });
            }
            reversed.push(TransitionTable::from_weights(back_rows));

            let mut new_belief = SparseDist::from_pairs(acc);
            new_belief.normalize();

            if let Some(&theta) = obs_at.get(&t) {
                if new_belief.prob(theta) <= 0.0 {
                    return Err(AdaptError::ContradictoryObservations { time: t });
                }
                belief = SparseDist::delta(theta);
            } else {
                belief = new_belief;
            }
            forward.push(belief.clone());
        }

        // ------------------------------------------------------------------
        // Backward phase: a-posteriori marginals and transitions F(t).
        // ------------------------------------------------------------------
        let mut posterior: Vec<SparseDist> = vec![SparseDist::new(); horizon + 1];
        let mut transitions: Vec<TransitionTable> =
            (0..horizon).map(|_| TransitionTable::default()).collect();
        posterior[horizon] = SparseDist::delta(last.1);

        for step in (0..horizon).rev() {
            let next_post = posterior[step + 1].clone();
            let r_table = &reversed[step]; // R(start + step + 1)
            let mut acc: FxHashMap<StateId, f64> = FxHashMap::default();
            let mut fwd_rows: FxHashMap<StateId, Vec<(StateId, f64)>> = FxHashMap::default();
            for (j, pj) in next_post.iter() {
                let Some(row) = r_table.row(j) else { continue };
                for (i, r_ji) in row.iter() {
                    let w = r_ji * pj;
                    if w > 0.0 {
                        *acc.entry(i).or_insert(0.0) += w;
                        fwd_rows.entry(i).or_default().push((j, w));
                    }
                }
            }
            if acc.is_empty() {
                // The forward phase guarantees a consistent corridor, so this
                // can only be triggered by numerical underflow.
                return Err(AdaptError::ContradictoryObservations {
                    time: start + step as Timestamp,
                });
            }
            transitions[step] = TransitionTable::from_weights(fwd_rows);
            let mut dist = SparseDist::from_pairs(acc);
            dist.normalize();
            posterior[step] = dist;
        }

        let kernel = AliasKernel::from_steps(transitions.iter().map(TransitionTable::sorted_rows));
        Ok(AdaptedModel {
            start,
            end,
            forward,
            posterior,
            transitions,
            kernel,
            observations: observations.to_vec(),
        })
    }
}

/// The a-posteriori model of one uncertain object: the output of Algorithm 2.
///
/// It covers the closed timestamp interval `[start, end]` spanned by the
/// object's observations.
#[derive(Debug, Clone)]
pub struct AdaptedModel {
    start: Timestamp,
    end: Timestamp,
    /// `forward[k]`: P(o(start+k) = s | observations at times ≤ start+k).
    forward: Vec<SparseDist>,
    /// `posterior[k]`: P(o(start+k) = s | all observations Θ).
    posterior: Vec<SparseDist>,
    /// `transitions[k]`: F(start+k), i.e. rows
    /// P(o(start+k+1) = s_j | o(start+k) = s_i, Θ).
    transitions: Vec<TransitionTable>,
    /// Precomputed Walker/Vose alias tables over all transition rows — the
    /// O(1) sampling kernel behind [`AdaptedModel::sample_transition`]. A
    /// deterministic pure function of `transitions`, rebuilt on store load
    /// rather than serialized.
    kernel: AliasKernel,
    observations: Vec<(Timestamp, StateId)>,
}

impl AdaptedModel {
    /// Convenience constructor using the default [`ModelAdaptation`].
    pub fn build<M: TransitionModel>(
        model: &M,
        observations: &[(Timestamp, StateId)],
    ) -> Result<Self, AdaptError> {
        ModelAdaptation::new().adapt(model, observations)
    }

    /// Reassembles a model from its stored parts (the store-loading
    /// counterpart of [`AdaptedModel::build`]). The covered interval is
    /// derived from the first and last observation; `forward` and `posterior`
    /// must hold one marginal per covered timestamp and `transitions` one
    /// table per covered step. No probabilistic post-processing happens here
    /// — the parts are adopted bit-for-bit.
    pub fn from_parts(
        observations: Vec<(Timestamp, StateId)>,
        forward: Vec<SparseDist>,
        posterior: Vec<SparseDist>,
        transitions: Vec<TransitionTable>,
    ) -> Result<Self, &'static str> {
        let Some(&(start, _)) = observations.first() else {
            return Err("adapted model needs at least one observation");
        };
        let (end, _) = observations[observations.len() - 1];
        if observations.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("observation times must be strictly increasing");
        }
        let horizon = (end - start) as usize;
        if forward.len() != horizon + 1 {
            return Err("forward marginal count must equal horizon + 1");
        }
        if posterior.len() != horizon + 1 {
            return Err("posterior marginal count must equal horizon + 1");
        }
        if transitions.len() != horizon {
            return Err("transition-table count must equal the horizon");
        }
        // The alias kernel is a deterministic function of the transition
        // rows, so it is rebuilt here instead of being serialized — the
        // `.ustore` format carries only the rows (see `ust-persist`).
        let kernel = AliasKernel::from_steps(transitions.iter().map(TransitionTable::sorted_rows));
        Ok(AdaptedModel { start, end, forward, posterior, transitions, kernel, observations })
    }

    /// First observed timestamp.
    #[inline]
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Last observed timestamp.
    #[inline]
    pub fn end(&self) -> Timestamp {
        self.end
    }

    /// Number of transitions covered (`end - start`).
    #[inline]
    pub fn horizon(&self) -> usize {
        self.transitions.len()
    }

    /// Whether timestamp `t` lies in the covered interval `[start, end]`.
    #[inline]
    pub fn covers(&self, t: Timestamp) -> bool {
        t >= self.start && t <= self.end
    }

    /// The observations this model was conditioned on.
    pub fn observations(&self) -> &[(Timestamp, StateId)] {
        &self.observations
    }

    /// A-posteriori marginal `P(o(t) = · | Θ)`, or `None` outside `[start, end]`.
    pub fn posterior_at(&self, t: Timestamp) -> Option<&SparseDist> {
        self.index_of(t).map(|k| &self.posterior[k])
    }

    /// Forward-only marginal `P(o(t) = · | observations up to t)` — the "F"
    /// model of Figure 12.
    pub fn forward_at(&self, t: Timestamp) -> Option<&SparseDist> {
        self.index_of(t).map(|k| &self.forward[k])
    }

    /// The a-posteriori transition distribution out of `state` for the step
    /// `t → t+1`, or `None` if `t` is outside `[start, end)` or `state` is not
    /// reachable at `t`.
    pub fn transition_row(&self, t: Timestamp, state: StateId) -> Option<&SparseDist> {
        if t < self.start || t >= self.end {
            return None;
        }
        self.transitions[(t - self.start) as usize].row(state)
    }

    /// The full transition table for the step `t → t+1`.
    pub fn transition_table(&self, t: Timestamp) -> Option<&TransitionTable> {
        if t < self.start || t >= self.end {
            return None;
        }
        Some(&self.transitions[(t - self.start) as usize])
    }

    /// Draws the next state for the step `t → t+1` out of `state` with one
    /// uniform `u ∈ [0, 1)`, answered in O(1) by the precomputed alias
    /// kernel after a binary row search.
    ///
    /// Returns `None` under exactly the conditions where
    /// [`AdaptedModel::transition_row`] does (step outside `[start, end)` or
    /// `state` unreachable at `t`), and draws each target with exactly the
    /// probability of that row — distributionally equivalent to an
    /// inverse-CDF scan via [`SparseDist::sample_with`], though the
    /// individual `u → state` mapping differs.
    #[inline]
    pub fn sample_transition(&self, t: Timestamp, state: StateId, u: f64) -> Option<StateId> {
        if t < self.start || t >= self.end {
            return None;
        }
        self.kernel.sample((t - self.start) as usize, state, u)
    }

    /// The precomputed O(1) alias-table sampling kernel over all steps.
    pub fn alias_kernel(&self) -> &AliasKernel {
        &self.kernel
    }

    /// States with non-zero a-posteriori probability at time `t`.
    pub fn support_at(&self, t: Timestamp) -> impl Iterator<Item = StateId> + '_ {
        self.posterior_at(t).into_iter().flat_map(|d| d.support())
    }

    /// The a-posteriori most likely state at time `t`.
    pub fn most_likely_state(&self, t: Timestamp) -> Option<StateId> {
        self.posterior_at(t).and_then(|d| d.argmax())
    }

    /// Internal index of timestamp `t`.
    fn index_of(&self, t: Timestamp) -> Option<usize> {
        if self.covers(t) {
            Some((t - self.start) as usize)
        } else {
            None
        }
    }

    /// Validates the stochastic invariants of the adapted model:
    /// * every posterior and forward marginal is a probability distribution,
    /// * every transition row is a probability distribution,
    /// * the support of each transition row at time `t` is contained in the
    ///   posterior support at `t+1`,
    /// * posteriors at observation times are point masses on the observation.
    ///
    /// Intended for tests and debugging; returns a human-readable description
    /// of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (k, dist) in self.posterior.iter().enumerate() {
            if !dist.is_normalized() {
                return Err(format!("posterior at offset {k} is not normalized"));
            }
        }
        for (k, dist) in self.forward.iter().enumerate() {
            if !dist.is_normalized() {
                return Err(format!("forward marginal at offset {k} is not normalized"));
            }
        }
        for (k, table) in self.transitions.iter().enumerate() {
            let next_support: Vec<StateId> = self.posterior[k + 1].support().collect();
            for (src, row) in table.iter() {
                if !row.is_normalized() {
                    return Err(format!("transition row ({k}, {src}) is not normalized"));
                }
                for (dst, _) in row.iter() {
                    if next_support.binary_search(&dst).is_err() {
                        return Err(format!(
                            "transition row ({k}, {src}) reaches state {dst} outside the posterior support"
                        ));
                    }
                }
            }
        }
        for &(t, theta) in &self.observations {
            let post = self.posterior_at(t).expect("observation inside the covered interval");
            if (post.prob(theta) - 1.0).abs() > 1e-6 {
                return Err(format!(
                    "posterior at observation time {t} is not concentrated on the observed state"
                ));
            }
        }
        Ok(())
    }
}

// The query engine shares adapted models across its TS-phase worker threads
// (`Arc<AdaptedModel>` handed between scoped threads), so these types must
// stay `Send + Sync`. The assertion is compile-time: adding interior
// mutability or non-atomic shared state to any of them breaks the build here
// rather than at the distant engine call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AdaptedModel>();
    assert_send_sync::<ModelAdaptation>();
    assert_send_sync::<AdaptError>();
    assert_send_sync::<TransitionTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MarkovModel;
    use crate::sparse::CsrMatrix;

    /// The running example of the paper (Figure 1): object o1 starts at s2
    /// and can reach {s1, s3}; from s3 it reaches {s1, s3}. All branches have
    /// probability 0.5. States: s1=0, s2=1, s3=2, s4=3.
    fn example_o1_model() -> MarkovModel {
        MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],             // s1 -> s1
            vec![(0, 0.5), (2, 0.5)],   // s2 -> {s1, s3}
            vec![(0, 0.5), (2, 0.5)],   // s3 -> {s1, s3}
            vec![(3, 1.0)],             // s4 -> s4
        ]))
    }

    #[test]
    fn rejects_bad_observation_sets() {
        let m = example_o1_model();
        assert_eq!(
            ModelAdaptation::new().adapt(&m, &[]).unwrap_err(),
            AdaptError::NoObservations
        );
        assert_eq!(
            ModelAdaptation::new().adapt(&m, &[(3, 0), (3, 1)]).unwrap_err(),
            AdaptError::UnsortedObservations
        );
        assert_eq!(
            ModelAdaptation::new().adapt(&m, &[(0, 99)]).unwrap_err(),
            AdaptError::StateOutOfRange { time: 0, state: 99 }
        );
    }

    #[test]
    fn detects_contradictory_observations() {
        let m = example_o1_model();
        // From s2 the object can never reach s4.
        let err = ModelAdaptation::new().adapt(&m, &[(1, 1), (3, 3)]).unwrap_err();
        assert_eq!(err, AdaptError::ContradictoryObservations { time: 3 });
    }

    #[test]
    fn single_observation_is_a_point_mass() {
        let m = example_o1_model();
        let adapted = AdaptedModel::build(&m, &[(5, 1)]).unwrap();
        assert_eq!(adapted.start(), 5);
        assert_eq!(adapted.end(), 5);
        assert_eq!(adapted.horizon(), 0);
        assert_eq!(adapted.posterior_at(5).unwrap(), &SparseDist::delta(1));
        assert!(adapted.posterior_at(6).is_none());
        assert!(adapted.check_invariants().is_ok());
    }

    #[test]
    fn unconstrained_endpoint_matches_forward_propagation() {
        // With observations only at the start and end, the posterior at the
        // end time must equal the delta of the final observation, and the
        // posterior at the start the delta of the first.
        let m = example_o1_model();
        let adapted = AdaptedModel::build(&m, &[(0, 1), (2, 0)]).unwrap();
        assert_eq!(adapted.posterior_at(0).unwrap(), &SparseDist::delta(1));
        assert_eq!(adapted.posterior_at(2).unwrap(), &SparseDist::delta(0));
        assert!(adapted.check_invariants().is_ok());
    }

    /// Brute-force reference: enumerate all trajectories of the a-priori
    /// chain starting at the first observation, keep the ones hitting all
    /// observations, normalize, and compute marginals / transition
    /// probabilities from them.
    fn brute_force_posterior(
        model: &MarkovModel,
        obs: &[(Timestamp, StateId)],
    ) -> (Vec<FxHashMap<StateId, f64>>, f64) {
        let start = obs[0].0;
        let end = obs[obs.len() - 1].0;
        let horizon = (end - start) as usize;
        let mut paths: Vec<(Vec<StateId>, f64)> = vec![(vec![obs[0].1], 1.0)];
        for step in 0..horizon {
            let t = start + step as Timestamp;
            let mut next = Vec::new();
            for (path, p) in &paths {
                let last = *path.last().unwrap();
                for (s, w) in model.matrix_at(t).row_iter(last) {
                    let mut np = path.clone();
                    np.push(s);
                    next.push((np, p * w));
                }
            }
            paths = next;
        }
        // Filter on all observations.
        let mut total = 0.0;
        let mut kept: Vec<(Vec<StateId>, f64)> = Vec::new();
        for (path, p) in paths {
            let ok = obs.iter().all(|&(t, s)| path[(t - start) as usize] == s);
            if ok {
                total += p;
                kept.push((path, p));
            }
        }
        let mut marginals: Vec<FxHashMap<StateId, f64>> =
            vec![FxHashMap::default(); horizon + 1];
        for (path, p) in &kept {
            for (k, &s) in path.iter().enumerate() {
                *marginals[k].entry(s).or_insert(0.0) += p / total;
            }
        }
        (marginals, total)
    }

    #[test]
    fn posterior_matches_possible_world_enumeration() {
        let m = example_o1_model();
        // o1 of Figure 1: observed at s2 (t=1); additionally pin t=3 to s1 so
        // that non-trivial inference happens at t=2.
        let obs = vec![(1u32, 1u32), (3, 0)];
        let adapted = AdaptedModel::build(&m, &obs).unwrap();
        assert!(adapted.check_invariants().is_ok());
        let (marginals, _) = brute_force_posterior(&m, &obs);
        for (k, marginal) in marginals.iter().enumerate() {
            let t = 1 + k as Timestamp;
            let post = adapted.posterior_at(t).unwrap();
            for s in 0..4u32 {
                let expected = marginal.get(&s).copied().unwrap_or(0.0);
                assert!(
                    (post.prob(s) - expected).abs() < 1e-9,
                    "t={t} s={s}: adapted {} vs brute force {expected}",
                    post.prob(s)
                );
            }
        }
    }

    #[test]
    fn adapted_transitions_reproduce_world_probabilities() {
        // Sampling-free check: multiplying adapted transition probabilities
        // along a path must give exactly the conditional possible-world
        // probability P(path | observations).
        let m = example_o1_model();
        let obs = vec![(1u32, 1u32), (3, 2)];
        let adapted = AdaptedModel::build(&m, &obs).unwrap();

        // Enumerate a-priori paths consistent with observations.
        let (_, total) = brute_force_posterior(&m, &obs);
        // Path s2 -> s3 -> s3 has a-priori probability 0.25, conditioned 0.25/total.
        let path = [1u32, 2, 2];
        let mut p_adapted = 1.0;
        for (k, w) in path.windows(2).enumerate() {
            let t = 1 + k as Timestamp;
            let row = adapted.transition_row(t, w[0]).expect("row exists");
            p_adapted *= row.prob(w[1]);
        }
        let expected = 0.25 / total;
        assert!((p_adapted - expected).abs() < 1e-9, "{p_adapted} vs {expected}");
    }

    #[test]
    fn intermediate_observations_pin_the_posterior() {
        let m = example_o1_model();
        let obs = vec![(0u32, 1u32), (2, 2), (4, 0)];
        let adapted = AdaptedModel::build(&m, &obs).unwrap();
        assert_eq!(adapted.posterior_at(2).unwrap(), &SparseDist::delta(2));
        assert!(adapted.check_invariants().is_ok());
        // All transition rows out of the observation state at t=2 exist.
        assert!(adapted.transition_row(2, 2).is_some());
        assert!(adapted.transition_row(2, 0).is_none(), "unreachable state has no row");
    }

    #[test]
    fn uniform_transition_variant_differs_but_is_consistent() {
        // A chain with non-uniform probabilities.
        let m = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 0.9), (1, 0.1)],
            vec![(0, 0.2), (1, 0.8)],
        ]));
        let obs = vec![(0u32, 0u32), (3, 1)];
        let fb = ModelAdaptation::new().adapt(&m, &obs).unwrap();
        let fbu = ModelAdaptation::with_uniform_transitions().adapt(&m, &obs).unwrap();
        assert!(fb.check_invariants().is_ok());
        assert!(fbu.check_invariants().is_ok());
        // Both must have the same support but different probabilities at t=1.
        let support_fb: Vec<_> = fb.support_at(1).collect();
        let support_fbu: Vec<_> = fbu.support_at(1).collect();
        assert_eq!(support_fb, support_fbu);
        let p_fb = fb.posterior_at(1).unwrap().prob(0);
        let p_fbu = fbu.posterior_at(1).unwrap().prob(0);
        assert!((p_fb - p_fbu).abs() > 1e-3, "FB {p_fb} and FBU {p_fbu} should differ");
    }

    #[test]
    fn forward_marginals_differ_from_posterior_before_an_observation() {
        // Directly before the final observation the forward-only model is
        // still spread out while the posterior is already pinned; this is the
        // effect visible in Figure 12.
        let m = example_o1_model();
        let obs = vec![(0u32, 1u32), (4, 0)];
        let adapted = AdaptedModel::build(&m, &obs).unwrap();
        let fwd = adapted.forward_at(3).unwrap();
        let post = adapted.posterior_at(3).unwrap();
        assert!(fwd.support_size() >= post.support_size());
        // The posterior at t=3 can only contain states that reach s1 in one step.
        for (s, _) in post.iter() {
            assert!(
                m.matrix_at(3).get(s, 0) > 0.0,
                "state {s} cannot reach the final observation"
            );
        }
    }
}
