//! Walker/Vose alias tables over CSR-laid-out adapted transition rows.
//!
//! The Monte-Carlo refinement phase draws one transition per object per chain
//! step per sampled world — at paper scale (10 000 worlds, hundreds of
//! influence objects, tens of timestamps) that is easily 10⁷–10⁸ categorical
//! draws per query. [`crate::SparseDist::sample_with`] answers each draw with
//! a linear inverse-CDF scan, O(support) per draw and one pointer chase per
//! row lookup (`FxHashMap` row → `Vec` entries).
//!
//! An [`AliasKernel`] precomputes, once per [`crate::AdaptedModel`], the
//! Walker/Vose alias table of every reachable transition row and lays all of
//! them out in flat CSR-style arenas:
//!
//! * `step_starts` — per chain step `k`, the range of rows of `F(start+k)`,
//! * `sources` / `row_starts` — per row, its source state (sorted within the
//!   step) and the range of its slots,
//! * `cols` / `probs` — per slot, the target state and its probability (the
//!   plain CSR image of the row, used by scans and equivalence tests),
//! * `threshold` / `alias` — per slot, the Vose acceptance threshold and the
//!   aliased target.
//!
//! A draw is then O(1) after one binary search over the step's sources:
//! `u · n` selects a slot, its fractional part is compared against the slot's
//! threshold, and either the slot's own column or its alias wins. Exactly one
//! uniform `u ∈ [0, 1)` is consumed per transition — the same RNG-draw
//! discipline as the inverse-CDF path, so prefix sampling and draw-burning
//! keep working unchanged on top of either kernel.
//!
//! Alias draws consume `u` differently from inverse-CDF draws, so the two
//! paths are *not* bit-identical per world; they are distributionally
//! identical (each target is selected with exactly its row probability, up to
//! f64 rounding of `p·n/mass`), which the equivalence suite in
//! `tests/alias_equivalence.rs` pins by construction checks and frequency
//! comparison on shared `u` streams.
//!
//! Construction is deterministic: rows are visited in (step, source-id)
//! order, the Vose small/large worklists are filled in increasing slot order
//! and drained LIFO, so equal inputs produce byte-equal kernels on every
//! platform and thread count.

use crate::sparse::SparseDist;
use crate::StateId;

/// One flattened alias-table slot range: the half-open `[start, end)` window
/// into the kernel's slot arenas belonging to one transition row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRange {
    start: usize,
    end: usize,
}

/// Precomputed O(1) sampling kernel of an adapted model: per chain step, the
/// Walker/Vose alias tables of every reachable row, in flat CSR arenas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AliasKernel {
    /// `step_starts[k]..step_starts[k+1]` indexes the rows of step `k` in
    /// `sources`/`row_starts`. Length `num_steps + 1`.
    step_starts: Vec<u32>,
    /// Source state of each row, strictly increasing within a step.
    sources: Vec<StateId>,
    /// `row_starts[r]..row_starts[r+1]` indexes the slots of row `r` in
    /// `cols`/`probs`/`threshold`/`alias`. Length `sources.len() + 1`.
    row_starts: Vec<u32>,
    /// Primary target state of each slot (the CSR column array).
    cols: Vec<StateId>,
    /// Probability of the slot's primary target (the CSR value array; feeds
    /// scans and tests, not the draw itself).
    probs: Vec<f64>,
    /// Vose acceptance threshold of each slot, in `[0, 1]`.
    threshold: Vec<f64>,
    /// Aliased target state of each slot (drawn when the fractional part of
    /// `u·n` lands at or above the threshold).
    alias: Vec<StateId>,
}

impl AliasKernel {
    /// Builds the kernel from per-step `(source, row)` lists.
    ///
    /// Each step's rows must be sorted by strictly increasing source state —
    /// [`crate::adapt::TransitionTable::sorted_rows`] provides exactly that —
    /// so the per-draw binary search and the deterministic layout hold.
    pub fn from_steps<'a, I, R>(steps: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = (StateId, &'a SparseDist)>,
    {
        let mut kernel = AliasKernel {
            step_starts: vec![0],
            sources: Vec::new(),
            row_starts: vec![0],
            cols: Vec::new(),
            probs: Vec::new(),
            threshold: Vec::new(),
            alias: Vec::new(),
        };
        for step in steps {
            for (source, row) in step {
                debug_assert!(
                    kernel.sources.len() + 1 == kernel.row_starts.len()
                        && (kernel.step_starts.last().copied().unwrap_or(0) as usize
                            == kernel.sources.len()
                            || kernel.sources.last().is_none_or(|&prev| prev < source)),
                    "rows of a step must arrive in strictly increasing source order"
                );
                kernel.push_row(source, row);
            }
            kernel.step_starts.push(kernel.sources.len() as u32);
        }
        kernel
    }

    /// Appends one row: records its CSR image and runs Vose's O(n) alias
    /// construction on it.
    fn push_row(&mut self, source: StateId, row: &SparseDist) {
        let base = self.cols.len();
        for (state, p) in row.iter() {
            self.cols.push(state);
            self.probs.push(p);
        }
        let n = self.cols.len() - base;
        self.sources.push(source);
        self.row_starts.push(self.cols.len() as u32);
        if n == 0 {
            return;
        }
        // Vose: scale each probability by n/mass, split slots into "small"
        // (< 1) and "large" (≥ 1), and repeatedly pair one of each — the
        // small slot keeps its own target below its threshold and borrows the
        // large slot's target above it. Worklists are filled in slot order
        // and drained from the back, so the construction is deterministic.
        let mass = row.total_mass();
        let mut scaled: Vec<f64> = self.probs[base..].iter().map(|&p| p * n as f64 / mass).collect();
        self.threshold.resize(base + n, 1.0);
        self.alias.extend_from_slice(&self.cols[base..]);
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            self.threshold[base + s] = scaled[s];
            self.alias[base + s] = self.cols[base + l];
            // The large slot donated `1 - scaled[s]` of its mass.
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (all ≈ 1 up to rounding) keep threshold 1.0 / self-alias
        // from the initialisation above: they always accept their own target.
    }

    /// Number of chain steps covered.
    #[inline]
    pub fn num_steps(&self) -> usize {
        self.step_starts.len() - 1
    }

    /// Total number of stored rows across all steps.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.sources.len()
    }

    /// Total number of slots (non-zero transition entries) across all rows.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.cols.len()
    }

    /// The slot window of `(step, source)`, found by binary search over the
    /// step's sorted sources. `None` if the step is out of range or the
    /// source has no row there.
    #[inline]
    fn row_range(&self, step: usize, source: StateId) -> Option<SlotRange> {
        let lo = *self.step_starts.get(step)? as usize;
        let hi = *self.step_starts.get(step + 1)? as usize;
        let r = lo + self.sources[lo..hi].binary_search(&source).ok()?;
        Some(SlotRange {
            start: self.row_starts[r] as usize,
            end: self.row_starts[r + 1] as usize,
        })
    }

    /// The CSR image of a row: parallel `(targets, probabilities)` slices.
    pub fn row(&self, step: usize, source: StateId) -> Option<(&[StateId], &[f64])> {
        let range = self.row_range(step, source)?;
        Some((&self.cols[range.start..range.end], &self.probs[range.start..range.end]))
    }

    /// Draws from the row of `(step, source)` with one uniform `u ∈ [0, 1)`:
    /// one binary search for the row, then an O(1) alias pick. Returns `None`
    /// if the row does not exist or is empty.
    ///
    /// `u` obeys the same `[0, 1)` contract as
    /// [`SparseDist::sample_with`](crate::SparseDist::sample_with).
    #[inline]
    pub fn sample(&self, step: usize, source: StateId, u: f64) -> Option<StateId> {
        debug_assert!(
            u.is_finite() && (0.0..1.0).contains(&u),
            "alias sample requires u in [0, 1), got {u}"
        );
        let range = self.row_range(step, source)?;
        let n = range.end - range.start;
        if n == 0 {
            return None;
        }
        let scaled = u * n as f64;
        // `u` close to 1 can round `u·n` up to `n` for large rows; clamp to
        // the last slot (the standard guard of the alias method).
        let idx = (scaled as usize).min(n - 1);
        let frac = scaled - idx as f64;
        let slot = range.start + idx;
        Some(if frac < self.threshold[slot] { self.cols[slot] } else { self.alias[slot] })
    }

    /// The exact probability the alias table assigns to `target` in the row
    /// of `(step, source)` under a uniform `u`: the Lebesgue measure of the
    /// `u`-values that select it. Used by the equivalence tests to prove the
    /// table is a faithful encoding of the row, independent of sampling.
    pub fn table_probability(&self, step: usize, source: StateId, target: StateId) -> f64 {
        let Some(range) = self.row_range(step, source) else { return 0.0 };
        let n = range.end - range.start;
        if n == 0 {
            return 0.0;
        }
        let mut measure = 0.0;
        for slot in range.start..range.end {
            if self.cols[slot] == target {
                measure += self.threshold[slot];
            }
            if self.alias[slot] == target {
                measure += 1.0 - self.threshold[slot];
            }
        }
        measure / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_of(rows: Vec<(StateId, SparseDist)>) -> AliasKernel {
        AliasKernel::from_steps(vec![rows.iter().map(|(s, d)| (*s, d))])
    }

    #[test]
    fn empty_kernel_has_no_rows() {
        let k = AliasKernel::from_steps(Vec::<Vec<(StateId, &SparseDist)>>::new());
        assert_eq!(k.num_steps(), 0);
        assert_eq!(k.num_rows(), 0);
        assert!(k.sample(0, 0, 0.5).is_none());
    }

    #[test]
    fn delta_row_always_returns_its_single_target() {
        let k = kernel_of(vec![(3, SparseDist::delta(7))]);
        assert_eq!(k.num_slots(), 1);
        for u in [0.0, 0.25, 0.999] {
            assert_eq!(k.sample(0, 3, u), Some(7));
        }
        assert_eq!(k.sample(0, 4, 0.5), None, "missing source has no row");
        assert_eq!(k.sample(1, 3, 0.5), None, "step out of range");
    }

    #[test]
    fn table_measure_reproduces_row_probabilities_exactly() {
        // Probabilities with exact binary representations, so the Vose
        // scaling is lossless and the slot measures must recover them
        // bit-for-bit.
        let row = SparseDist::from_pairs(vec![(10, 0.5), (20, 0.25), (30, 0.125), (40, 0.125)]);
        let k = kernel_of(vec![(0, row.clone())]);
        for (state, p) in row.iter() {
            assert_eq!(k.table_probability(0, 0, state), p, "state {state}");
        }
        assert_eq!(k.table_probability(0, 0, 99), 0.0);
    }

    #[test]
    fn heavy_tail_row_measures_match_within_rounding() {
        let row = SparseDist::from_pairs((0..64u32).map(|s| (s, 0.97f64.powi(s as i32))));
        let k = kernel_of(vec![(0, row.clone())]);
        let mass = row.total_mass();
        for (state, p) in row.iter() {
            let want = p / mass;
            let got = k.table_probability(0, 0, state);
            assert!((got - want).abs() < 1e-12, "state {state}: {got} vs {want}");
        }
    }

    #[test]
    fn sampling_never_leaves_the_support_and_hits_every_state() {
        let row = SparseDist::from_pairs(vec![(2, 0.1), (5, 0.6), (9, 0.3)]);
        let k = kernel_of(vec![(1, row.clone())]);
        let support: Vec<StateId> = row.support().collect();
        let mut seen = [false; 3];
        // A deterministic low-discrepancy sweep of u.
        for i in 0..10_000 {
            let u = (i as f64 + 0.5) / 10_000.0;
            let s = k.sample(0, 1, u).unwrap();
            let pos = support.binary_search(&s).expect("target inside the support");
            seen[pos] = true;
        }
        assert!(seen.iter().all(|&b| b), "every support state is reachable");
    }

    #[test]
    fn top_of_range_u_is_clamped_to_the_last_slot() {
        let row = SparseDist::uniform(0..1000u32);
        let k = kernel_of(vec![(0, row)]);
        let max_u = 1.0 - f64::EPSILON / 2.0;
        assert!(k.sample(0, 0, max_u).is_some(), "u → 1 must not index past the slots");
    }

    #[test]
    fn multi_step_layout_keeps_rows_separate() {
        let k = AliasKernel::from_steps(vec![
            vec![(0u32, &SparseDist::delta(1)), (2, &SparseDist::delta(3))],
            vec![(1u32, &SparseDist::delta(2))],
        ]);
        assert_eq!(k.num_steps(), 2);
        assert_eq!(k.num_rows(), 3);
        assert_eq!(k.sample(0, 0, 0.5), Some(1));
        assert_eq!(k.sample(0, 2, 0.5), Some(3));
        assert_eq!(k.sample(1, 1, 0.5), Some(2));
        assert_eq!(k.sample(1, 0, 0.5), None);
        let (cols, probs) = k.row(0, 2).unwrap();
        assert_eq!(cols, &[3]);
        assert_eq!(probs, &[1.0]);
    }

    #[test]
    fn construction_is_deterministic() {
        let rows: Vec<(StateId, SparseDist)> = (0..20u32)
            .map(|s| (s, SparseDist::from_pairs((0..8u32).map(|t| (t, (s + t + 1) as f64)))))
            .collect();
        let a = kernel_of(rows.clone());
        let b = kernel_of(rows);
        assert_eq!(a, b, "equal inputs must produce byte-equal kernels");
    }
}
