//! Micro-benchmark: PCNN queries (Algorithm 1) at different thresholds.
//!
//! Small thresholds force the Apriori lattice towards the full subset lattice
//! of the query interval, which is the worst case the paper discusses in
//! Section 4.3.

use criterion::{criterion_group, criterion_main, Criterion};
use ust_bench::args::RunScale;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_core::{EngineConfig, Query, QueryEngine};

fn bench_pcnn(c: &mut Criterion) {
    let mut params = ScaleParams::for_scale(RunScale::Quick);
    params.num_queries = 2;
    params.interval_len = 8;
    let dataset = build_synthetic(&params, 2_000, 8.0, 150, 13);
    let workload = build_queries(&dataset, &params, 13);
    let engine = QueryEngine::new(
        &dataset.database,
        EngineConfig { num_samples: 300, ..Default::default() },
    );
    engine.prepare_all().expect("adaptation succeeds");
    let spec = &workload.queries[0];
    let query = Query::at_point(spec.location, spec.times.iter().copied()).unwrap();

    let mut group = c.benchmark_group("pcnn");
    group.sample_size(10);
    for tau in [0.1, 0.5, 0.9] {
        group.bench_function(format!("pcnn_tau_{tau}"), |b| {
            b.iter(|| engine.pcnn(&query, tau).unwrap())
        });
    }
    group.bench_function("pc2nn_tau_0.5", |b| {
        b.iter(|| engine.pcknn(&query, 2, 0.5).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pcnn);
criterion_main!(benches);
