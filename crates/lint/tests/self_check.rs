//! The self-run: the workspace must be clean under its own checked-in
//! `lint.toml`. This is the test-suite twin of the CI step
//! `cargo run -p ust-lint -- check --workspace`.

use std::path::{Path, PathBuf};

use ust_lint::{check_tree, Config, Mode};

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_the_checked_in_config() {
    let root = workspace_root();
    let config = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = check_tree(&root, &config, Mode::Scoped).expect("tree readable");
    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean; run `cargo run -p ust-lint -- check --workspace`:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk must actually cover the source tree, or a path bug could make
    // emptiness vacuous.
    assert!(
        report.files_checked > 100,
        "only {} files checked — the walker lost the tree",
        report.files_checked
    );
}

#[test]
fn known_bad_fixture_fails_scoped_runs_too() {
    // The fixture corpus is excluded from workspace runs by lint.toml, but
    // pointing the checker straight at a bad fixture (as the CI known-bad
    // step does, with --all-rules) must fail with the exact rule id.
    let root = workspace_root();
    let path = root.join("crates/lint/tests/fixtures/u001_bad.rs");
    let findings = ust_lint::check_file_all_rules(&path, "u001_bad.rs").expect("readable");
    assert!(findings.iter().any(|f| f.rule == "U001"));
}
