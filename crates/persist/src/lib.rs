//! Durable on-disk stores for the pnnq workspace.
//!
//! A *store* is a single file holding the expensive-to-build state of a query
//! session: the [`TrajectoryDatabase`](ust_trajectory::TrajectoryDatabase)
//! (required), the built [`UstTree`](ust_index::UstTree) and the adapted
//! (a-posteriori) Markov models (both optional). Loading a store skips the
//! model-adaptation and index-build phases entirely — a cold start becomes a
//! read-and-go.
//!
//! # Format
//!
//! The container (see [`mod@format`]) is versioned and checksummed:
//!
//! ```text
//! "USTSTORE" version(u32) section_count(u32)
//!   { id(u32) payload_len(u64) fnv1a64(u64) payload }*
//! ```
//!
//! All integers are little-endian; floats travel as IEEE-754 bit patterns, so
//! encode→decode→encode is byte-identical. Hash-map-backed structures are
//! written in sorted key order for the same reason. The R\*-tree is *not*
//! serialized: STR bulk loading is deterministic, so the tree section stores
//! only the diamond arena plus the node capacity and rebuilds the rest.
//!
//! # Incremental ingest
//!
//! A store file is complemented by an optional sidecar write-ahead log
//! (`<store>.wal`, see [`mod@wal`]): observation appends land there as
//! checksummed, fsynced frames instead of rewriting the container, and
//! `ust_core::EngineStore` replays the log on load — truncating a torn tail
//! at the last valid frame. [`write_store`] itself stages through a
//! `<path>.tmp` sibling plus atomic rename, so checkpoints can never leave a
//! truncated container behind.
//!
//! # Hostile input
//!
//! [`decode_store`] treats its input as untrusted: every length and count is
//! proved against the remaining bytes before it sizes an allocation, every
//! structural invariant the in-memory types rely on is validated before
//! their constructors run, and every rejection is a typed [`StoreError`] —
//! never a panic. The [`fuzz`] module ships the deterministic mutator the
//! fuzz-smoke tests drive against this promise.
//!
//! # Not a competitor snapshot
//!
//! `ust_core::snapshot` serializes *query results* for golden tests; this
//! crate serializes the *engine state itself*. The two formats share nothing
//! but the FNV digest primitive.

mod codec;
pub mod error;
pub mod format;
pub mod fuzz;
pub mod store;
pub mod wal;

pub use error::StoreError;
pub use fuzz::Mutator;
pub use store::{
    decode_store, encode_store, read_store, write_store, LoadedStore, StoreContents, StoreStats,
};
pub use wal::{WalAppendStats, WalBatch, WalContents};

/// The fault points this crate registers with [`ust_fault`] (see the chaos
/// suite at the workspace root and the crash matrix in
/// `crates/bench/tests/store_recovery.rs`):
///
/// * the store write path — a hard failure, a synthetic signal interruption
///   feeding the bounded retry loop, the staging fsync and the atomic rename
///   of the temp-file protocol;
/// * the store read path — a hard failure, a retried interruption and a torn
///   section read surfacing mid-container decode;
/// * the WAL — the append write, the append fsync, the replay read and the
///   post-checkpoint truncation.
pub const FAULT_POINTS: &[&str] = &[
    "persist.read.file",
    "persist.read.interrupted",
    "persist.write.file",
    "persist.write.interrupted",
    "persist.write.sync",
    "persist.write.rename",
    "persist.read.section",
    "persist.wal.append.write",
    "persist.wal.append.sync",
    "persist.wal.replay.read",
    "persist.checkpoint.truncate",
];
