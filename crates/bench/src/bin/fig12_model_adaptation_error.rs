//! Figure 12: effectiveness of the forward-backward model adaptation.
//!
//! For every model variant (NO = a-priori only, F = forward-only,
//! FB = forward-backward, U = uniform over reachable states, FBU =
//! forward-backward with uniform transition probabilities) the harness reports
//! the mean distance between the predicted distribution and the held-out
//! ground-truth position, per offset within the observation gap. The paper's
//! qualitative result: NO is worst, F helps but degrades just before an
//! observation, FB is best, FBU is close behind FB, and U lies between FBU
//! and NO.

use ust_bench::datasets::{build_taxi, ScaleParams};
use ust_bench::effectiveness::measure_model_error;
use ust_bench::{ExperimentReport, RunScale, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig12_model_adaptation_error");
    settings.reject_store_flag("fig12_model_adaptation_error");
    settings.reject_wal_flags("fig12_model_adaptation_error");
    settings.reject_deadline_flag("fig12_model_adaptation_error");
    let params = ScaleParams::for_scale(settings.scale);
    let threads = resolve_adaptation_threads(settings.adaptation_threads.unwrap_or(0));
    let (num_objects, max_evaluated) = match settings.scale {
        RunScale::Quick => (60, 30),
        RunScale::Default => (400, 150),
        RunScale::Paper => (2_000, 500),
    };
    eprintln!("[fig12] building simulated taxi dataset ({num_objects} taxis)");
    let dataset = build_taxi(&params, num_objects, settings.seed);
    eprintln!("[fig12] evaluating {max_evaluated} objects ({threads} adaptation threads)");
    let start = std::time::Instant::now();
    let rows = measure_model_error(&dataset, max_evaluated, threads);
    let elapsed = start.elapsed();
    let mut report = ExperimentReport::new(
        "figure12_model_adaptation_error",
        "Mean prediction error (expected distance to the held-out true position) per offset \
         within the observation gap, for the model variants NO/F/FB/U/FBU \
         (paper: Figure 12, simulated taxi data)",
    )
    .with_meta("adaptation_threads", threads as f64)
    .with_meta("evaluation_seconds", elapsed.as_secs_f64());
    for row in rows {
        report.push(row);
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
