//! # ust-core
//!
//! Probabilistic nearest-neighbor query processing over uncertain moving
//! object trajectories — the primary contribution of Niedermayer et al.,
//! PVLDB 7(3), 2013.
//!
//! ## Query semantics (Section 3.2)
//!
//! Given a certain query state or trajectory `q`, a set of timestamps `T` and
//! a probability threshold `τ`:
//!
//! * **P∃NNQ** (Definition 1) returns every object whose probability of being
//!   a nearest neighbor of `q` at *at least one* timestamp of `T` is at least
//!   `τ`.
//! * **P∀NNQ** (Definition 2) returns every object whose probability of being
//!   a nearest neighbor at *every* timestamp of `T` is at least `τ`.
//! * **PCNNQ** (Definition 3) returns, per object, the timestamp subsets
//!   `T_i ⊆ T` during which the object is a ∀-nearest-neighbor with
//!   probability at least `τ`.
//! * Section 8 generalises all three to `k` nearest neighbors.
//!
//! ## Evaluation strategies
//!
//! * [`engine::QueryEngine`] — the paper's practical algorithm: UST-tree
//!   pruning (`ust-index`), forward–backward model adaptation (`ust-markov`,
//!   batched and parallelised by the stampede-free [`prepare`] subsystem),
//!   Monte-Carlo sampling of possible worlds (`ust-sampling`) and
//!   certain-world NN evaluation (`ust-trajectory`). PCNN uses the
//!   Apriori-style lattice of Algorithm 1, mined vertically over per-timestamp
//!   world bitsets ([`pcnn`], [`pcnn::WorldSet`]).
//! * [`exact`] — exponential possible-world enumeration, feasible only for
//!   tiny instances; serves as the correctness reference (P∃NN is NP-hard,
//!   Section 4.1).
//! * [`snapshot`] — the competitor approach of \[19\] adapted to NN queries:
//!   per-timestamp probabilities combined under temporal independence. It is
//!   biased (Figure 11); implemented for the effectiveness comparison.
//! * [`effectiveness`] — the model-adaptation error study of Figure 12
//!   (a-priori vs. forward vs. forward–backward vs. uniform models).

pub mod domination;
pub mod effectiveness;
pub mod engine;
pub mod exact;
pub mod govern;
pub mod pcnn;
pub mod prepare;
pub mod query;
pub mod results;
pub mod sat;
pub mod snapshot;
pub mod store;

pub use engine::{EngineConfig, QueryEngine};
pub use govern::{BudgetGauge, CancelToken, QueryBudget, QueryPhase, Verdict};
pub use prepare::{AdaptationCache, CacheStats, PrepareOutcome};
pub use store::{EngineStore, WalReplayStats};
pub use exact::{ExactError, ExactResult};
pub use pcnn::{PcnnConfig, PcnnResult, WorldSet};
pub use query::{Query, QueryError};
pub use results::{ObjectProbability, PcnnOutcome, QueryOutcome, QueryStats};

/// The fault points this crate registers with [`ust_fault`] (see the chaos
/// suite at the workspace root). `core.adapt.worker` panics inside a live
/// adaptation worker, exercising the claim-release path of
/// [`prepare::AdaptationCache`] under real threads.
pub const FAULT_POINTS: &[&str] = &["core.adapt.worker"];

pub use ust_markov::Timestamp;
pub use ust_spatial::StateId;
pub use ust_trajectory::{DatabaseSummary, ObjectId};
