//! Certain (materialised) trajectories.
//!
//! A certain trajectory is one realisation of an object's stochastic process:
//! one state per timestamp over a contiguous time interval. The Monte-Carlo
//! query algorithms draw one certain trajectory per object per possible world
//! and run classic trajectory-NN algorithms on them (Section 5.2.3).

use crate::{StateId, Timestamp};
use ust_spatial::{Point, StateSpace};

/// A certain trajectory: one state per tic, covering the closed interval
/// `[start, start + len - 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trajectory {
    start: Timestamp,
    states: Vec<StateId>,
}

impl Trajectory {
    /// Creates a trajectory starting at `start` with one state per subsequent
    /// timestamp.
    ///
    /// # Panics
    /// Panics if `states` is empty.
    pub fn new(start: Timestamp, states: Vec<StateId>) -> Self {
        assert!(!states.is_empty(), "a trajectory needs at least one state");
        Trajectory { start, states }
    }

    /// First covered timestamp.
    #[inline]
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Last covered timestamp.
    #[inline]
    pub fn end(&self) -> Timestamp {
        self.start + (self.states.len() as Timestamp) - 1
    }

    /// Number of covered timestamps.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Trajectories are never empty, but clippy likes the pair.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the trajectory covers timestamp `t`.
    #[inline]
    pub fn covers(&self, t: Timestamp) -> bool {
        t >= self.start && t <= self.end()
    }

    /// The state occupied at time `t`, or `None` outside the covered interval.
    #[inline]
    pub fn state_at(&self, t: Timestamp) -> Option<StateId> {
        if self.covers(t) {
            Some(self.states[(t - self.start) as usize])
        } else {
            None
        }
    }

    /// The spatial position at time `t`.
    #[inline]
    pub fn position_at(&self, t: Timestamp, space: &StateSpace) -> Option<Point> {
        self.state_at(t).map(|s| space.position(s))
    }

    /// The raw state sequence.
    #[inline]
    pub fn states(&self) -> &[StateId] {
        &self.states
    }

    /// Replaces the trajectory in place: clears the state buffer (keeping its
    /// allocation), lets `fill` push the new states, and re-anchors the
    /// trajectory at `start`. This is the reuse hook of the Monte-Carlo world
    /// loop, which previously allocated one state vector per object per world.
    ///
    /// # Panics
    /// Panics if `fill` leaves the state buffer empty.
    pub fn refill(&mut self, start: Timestamp, fill: impl FnOnce(&mut Vec<StateId>)) {
        self.states.clear();
        fill(&mut self.states);
        assert!(!self.states.is_empty(), "a trajectory needs at least one state");
        self.start = start;
    }

    /// Iterator over `(timestamp, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, StateId)> + '_ {
        self.states.iter().enumerate().map(move |(k, &s)| (self.start + k as Timestamp, s))
    }

    /// Euclidean length of the polyline through the visited state positions.
    pub fn path_length(&self, space: &StateSpace) -> f64 {
        self.states.windows(2).map(|w| space.dist(w[0], w[1])).sum()
    }

    /// Whether the trajectory passes through all given `(time, state)`
    /// observations. Sampled trajectories must always satisfy this for the
    /// observations they were conditioned on.
    pub fn consistent_with(&self, observations: &[(Timestamp, StateId)]) -> bool {
        observations.iter().all(|&(t, s)| self.state_at(t) == Some(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> StateSpace {
        StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ])
    }

    #[test]
    fn coverage_and_lookup() {
        let tr = Trajectory::new(5, vec![0, 1, 2, 1]);
        assert_eq!(tr.start(), 5);
        assert_eq!(tr.end(), 8);
        assert_eq!(tr.len(), 4);
        assert!(tr.covers(5) && tr.covers(8));
        assert!(!tr.covers(4) && !tr.covers(9));
        assert_eq!(tr.state_at(6), Some(1));
        assert_eq!(tr.state_at(9), None);
    }

    #[test]
    fn positions_and_length() {
        let tr = Trajectory::new(0, vec![0, 2, 1]);
        let sp = space();
        assert_eq!(tr.position_at(0, &sp), Some(Point::new(0.0, 0.0)));
        assert_eq!(tr.position_at(1, &sp), Some(Point::new(2.0, 0.0)));
        assert_eq!(tr.path_length(&sp), 3.0);
    }

    #[test]
    fn iteration_yields_time_state_pairs() {
        let tr = Trajectory::new(3, vec![2, 0]);
        let v: Vec<_> = tr.iter().collect();
        assert_eq!(v, vec![(3, 2), (4, 0)]);
    }

    #[test]
    fn observation_consistency() {
        let tr = Trajectory::new(0, vec![0, 1, 2, 2]);
        assert!(tr.consistent_with(&[(0, 0), (2, 2)]));
        assert!(!tr.consistent_with(&[(1, 2)]));
        assert!(!tr.consistent_with(&[(9, 0)]));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_trajectory_panics() {
        let _ = Trajectory::new(0, vec![]);
    }
}
