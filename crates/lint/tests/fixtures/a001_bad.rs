//! A001 negative fixture: allocation sized straight from a decoded integer.
//! Findings pinned by `tests/rules_fixtures.rs` — keep line numbers stable.

fn decode_list(r: &mut ByteReader<'_>) -> Result<Vec<u64>, StoreError> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}
