//! Map matching: snapping raw GPS fixes onto the road-network state graph.
//!
//! The paper's real-data setup map-matches Beijing T-Drive GPS logs onto a
//! reduced OpenStreetMap graph and discretises time into one tic per 10
//! seconds. This module implements that pipeline over any [`Network`]
//! (DESIGN.md §4):
//!
//! 1. **Projection** — lon/lat is mapped linearly into the network's unit
//!    coordinate space through a [`GeoFrame`] (either given explicitly or
//!    fitted to the data's bounding box).
//! 2. **Time discretisation** — fix times become engine tics,
//!    `tick = (seconds - origin) / tick_seconds`; a later fix landing in an
//!    already-occupied tic is dropped (first fix wins), a fix whose tic
//!    overflows the tic domain is dropped as out-of-window, and a fix more
//!    than [`MapMatchConfig::max_gap`] tics after the previously kept one
//!    starts a new *session* (a separate database object) — overnight
//!    parking breaks keep their data, while neither they nor a mistyped
//!    far-future timestamp can balloon the interpolation.
//! 3. **Nearest-state snap** — each fix snaps to the nearest network state
//!    through a spatial hash grid; fixes farther than
//!    [`MapMatchConfig::snap_radius`] from any state are rejected as
//!    outliers.
//! 4. **Feasibility** — a snapped fix is kept only if the network allows a
//!    path from the previously kept state within the tic gap (one hop per
//!    tic, waiting allowed); otherwise the fix is dropped as infeasible.
//!    A breadth-first search bounded by the gap is the exact minimum-hop
//!    witness and only ever explores the gap-hop neighborhood.
//! 5. **Gap interpolation** — between kept observations the object is
//!    materialised along that minimum-hop path, one hop per tic and then
//!    waiting, which yields a per-tic [`Trajectory`] used to learn the
//!    shared transition matrix ("aggregating the turning probabilities at
//!    crossroads") and kept as the reconstructed reference path.
//!
//! Every step is deterministic: equal input bytes produce byte-identical
//! observations, statistics and learned models on every platform.

use crate::grid::GridIndex;
use crate::network::Network;
use crate::tdrive::{group_fixes, RawFix};
use crate::Timestamp;
use rustc_hash::FxHashMap;
use ust_markov::MarkovModel;
use ust_spatial::{Point, StateId};
use ust_trajectory::{ObjectId, Trajectory, UncertainObject};

/// A linear georeference between WGS84 lon/lat degrees and the network's
/// unit coordinate space (the simulated road networks live in `[0, 1]²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoFrame {
    /// Longitude mapped to network `x = 0`.
    pub lon_min: f64,
    /// Longitude mapped to network `x = 1`.
    pub lon_max: f64,
    /// Latitude mapped to network `y = 0`.
    pub lat_min: f64,
    /// Latitude mapped to network `y = 1`.
    pub lat_max: f64,
}

impl GeoFrame {
    /// Creates a frame.
    ///
    /// # Panics
    /// Panics if either span is not strictly positive.
    pub fn new(lon_min: f64, lon_max: f64, lat_min: f64, lat_max: f64) -> Self {
        assert!(lon_max > lon_min, "longitude span must be positive");
        assert!(lat_max > lat_min, "latitude span must be positive");
        GeoFrame { lon_min, lon_max, lat_min, lat_max }
    }

    /// The frame used by the deterministic fixtures: a half-degree box over
    /// central Beijing (the T-Drive study area).
    pub fn beijing() -> Self {
        GeoFrame::new(116.0, 116.5, 39.5, 40.0)
    }

    /// Fits a frame to the bounding box of the given fixes, or `None` for an
    /// empty slice. Degenerate spans (all fixes on one meridian/parallel) are
    /// widened symmetrically so the frame stays invertible.
    pub fn fit(fixes: &[RawFix]) -> Option<Self> {
        let first = fixes.first()?;
        let (mut lon_min, mut lon_max) = (first.lon, first.lon);
        let (mut lat_min, mut lat_max) = (first.lat, first.lat);
        for f in fixes {
            lon_min = lon_min.min(f.lon);
            lon_max = lon_max.max(f.lon);
            lat_min = lat_min.min(f.lat);
            lat_max = lat_max.max(f.lat);
        }
        const MIN_SPAN: f64 = 1e-6;
        if lon_max - lon_min < MIN_SPAN {
            lon_min -= MIN_SPAN / 2.0;
            lon_max += MIN_SPAN / 2.0;
        }
        if lat_max - lat_min < MIN_SPAN {
            lat_min -= MIN_SPAN / 2.0;
            lat_max += MIN_SPAN / 2.0;
        }
        Some(GeoFrame::new(lon_min, lon_max, lat_min, lat_max))
    }

    /// Projects lon/lat degrees into network coordinates.
    pub fn to_network(&self, lon: f64, lat: f64) -> Point {
        Point::new(
            (lon - self.lon_min) / (self.lon_max - self.lon_min),
            (lat - self.lat_min) / (self.lat_max - self.lat_min),
        )
    }

    /// Projects a network position back to lon/lat degrees (inverse of
    /// [`GeoFrame::to_network`]).
    pub fn to_lonlat(&self, p: &Point) -> (f64, f64) {
        (
            self.lon_min + p.x * (self.lon_max - self.lon_min),
            self.lat_min + p.y * (self.lat_max - self.lat_min),
        )
    }
}

/// Configuration of the map-matching pipeline.
#[derive(Debug, Clone, Copy)]
pub struct MapMatchConfig {
    /// Maximum snap distance in network coordinate units; fixes farther from
    /// every state are rejected as GPS outliers.
    pub snap_radius: f64,
    /// Seconds per engine tic (the paper discretises the taxi data at one tic
    /// per 10 seconds).
    pub tick_seconds: i64,
    /// Unix seconds of tic 0; `None` anchors tic 0 at the earliest fix of the
    /// input. Fixes before the origin are dropped.
    pub origin_seconds: Option<i64>,
    /// Georeference; `None` fits the frame to the input's bounding box.
    pub frame: Option<GeoFrame>,
    /// Maximum tic gap bridged *within* one object (the paper's database
    /// horizon, 1 000 tics, by default). A fix farther than this from the
    /// previously kept one starts a new *session*: the taxi's trace is split
    /// into separate database objects rather than interpolated across the
    /// gap — the gap interpolation materialises one state per tic, so an
    /// unbounded gap (an overnight parking break, or a single mistyped
    /// far-future year that still parses) would otherwise balloon one
    /// object's path across millions of tics. The first session keeps the
    /// taxi's id; later sessions get fresh ids beyond the largest input id
    /// (see [`MatchedObject::source`]).
    pub max_gap: Timestamp,
}

impl Default for MapMatchConfig {
    fn default() -> Self {
        MapMatchConfig {
            snap_radius: 0.05,
            tick_seconds: 10,
            origin_seconds: None,
            frame: None,
            max_gap: 1_000,
        }
    }
}

/// Counters describing what happened to every input fix; the ingestion
/// observability surfaced by `fig09 --csv` and asserted by the tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Input fixes handed to the matcher.
    pub raw_fixes: usize,
    /// Fixes kept as observations.
    pub snapped: usize,
    /// Fixes dropped: farther than the snap radius from every state.
    pub out_of_radius: usize,
    /// Fixes dropped: an earlier fix already occupies the same tic.
    pub duplicate_tick: usize,
    /// Fixes dropped: the network path from the previous kept state does not
    /// fit into the tic gap (or the state is unreachable).
    pub infeasible: usize,
    /// Fixes dropped: timestamp before the configured origin.
    pub before_origin: usize,
    /// Fixes dropped: tic beyond the representable tic domain, or — only in
    /// the degenerate case where an input id is `u32::MAX` — a later session
    /// that could not be assigned a fresh object id. Large but representable
    /// gaps are handled by a session split, not a drop.
    pub out_of_window: usize,
    /// Distinct object ids in the input.
    pub objects_in: usize,
    /// Objects that produced at least one observation.
    pub objects_matched: usize,
    /// Objects whose every fix was dropped.
    pub objects_dropped: usize,
    /// Additional sessions created by gaps larger than
    /// [`MapMatchConfig::max_gap`] (`objects_matched` already counts them).
    pub sessions_split: usize,
}

impl MatchStats {
    /// Total fixes dropped by any rule.
    pub fn dropped_fixes(&self) -> usize {
        self.out_of_radius
            + self.duplicate_tick
            + self.infeasible
            + self.before_origin
            + self.out_of_window
    }
}

/// One successfully matched object (one *session* of one input taxi).
#[derive(Debug, Clone)]
pub struct MatchedObject {
    /// The uncertain object built from the kept (snapped, discretised)
    /// observations — ready for the trajectory database and model adaptation.
    pub object: UncertainObject,
    /// The taxi id this session came from. Equals `object.id()` for a
    /// taxi's first session; later sessions (started by a gap larger than
    /// [`MapMatchConfig::max_gap`]) carry fresh object ids beyond the
    /// largest input id, and this field links them back to their taxi.
    pub source: ObjectId,
    /// The shortest-path interpolation between the kept observations: one
    /// state per tic from the first to the last observation (one hop per tic
    /// along the network minimum-hop path, then waiting at the segment's
    /// end). Sessions are interpolated independently, so no gap larger than
    /// `max_gap` is ever materialised.
    pub path: Trajectory,
}

/// Result of map-matching one T-Drive input onto a network.
#[derive(Debug, Clone)]
pub struct MapMatchOutcome {
    /// Matched objects, grouped by taxi (ascending input id) with each
    /// taxi's sessions in chronological order.
    pub objects: Vec<MatchedObject>,
    /// Per-fix and per-object counters.
    pub stats: MatchStats,
    /// The georeference that was used (given or fitted).
    pub frame: GeoFrame,
    /// Unix seconds of tic 0 (given or the earliest fix).
    pub origin_seconds: i64,
}

impl MapMatchOutcome {
    /// The matched uncertain objects, consumed into a plain vector (the input
    /// of [`ust_trajectory::TrajectoryDatabase::with_objects`]).
    pub fn into_objects(self) -> Vec<UncertainObject> {
        self.objects.into_iter().map(|m| m.object).collect()
    }
}

/// Snaps raw GPS fixes onto the network and discretises them into the
/// engine's tic domain (see the module docs for the pipeline).
pub fn map_match(network: &Network, fixes: &[RawFix], cfg: &MapMatchConfig) -> MapMatchOutcome {
    assert!(cfg.tick_seconds > 0, "tick_seconds must be positive");
    assert!(cfg.snap_radius > 0.0, "snap_radius must be positive");
    let frame = cfg
        .frame
        .or_else(|| GeoFrame::fit(fixes))
        .unwrap_or_else(GeoFrame::beijing);
    let origin_seconds = cfg
        .origin_seconds
        .unwrap_or_else(|| fixes.iter().map(|f| f.seconds).min().unwrap_or(0));

    let mut stats = MatchStats { raw_fixes: fixes.len(), ..Default::default() };
    let points = network.space().positions();
    let snapper = (!points.is_empty()).then(|| GridIndex::build(points, grid_cell(points)));
    let mut finder = PathFinder::new(network.num_states());

    let groups = group_fixes(fixes);
    stats.objects_in = groups.len();
    // Fresh object ids for second and later sessions start beyond the
    // largest input id (groups are sorted ascending).
    let mut next_session_id: Option<ObjectId> =
        groups.last().and_then(|(id, _)| id.checked_add(1));
    let mut objects = Vec::with_capacity(groups.len());
    for (id, group) in groups {
        // One taxi becomes one object per *session*: runs of fixes whose
        // consecutive tic gaps stay within `max_gap`.
        type Session = (Vec<(Timestamp, StateId)>, Vec<Vec<StateId>>);
        let mut sessions: Vec<Session> = Vec::new();
        for fix in &group {
            let elapsed = fix.seconds - origin_seconds;
            if elapsed < 0 {
                stats.before_origin += 1;
                continue;
            }
            let tick64 = elapsed / cfg.tick_seconds;
            if tick64 > i64::from(Timestamp::MAX) {
                stats.out_of_window += 1;
                continue;
            }
            let tick = tick64 as Timestamp;
            let p = frame.to_network(fix.lon, fix.lat);
            let Some(state) = snapper.as_ref().and_then(|g| g.nearest(points, &p)) else {
                stats.out_of_radius += 1;
                continue;
            };
            // lint: allow(P001) state is an index returned by GridSnapper::nearest over these points
            if points[state as usize].dist(&p) > cfg.snap_radius {
                stats.out_of_radius += 1;
                continue;
            }
            let starts_new_session = match sessions.last().and_then(|(obs, _)| obs.last()) {
                None => true,
                Some(&(last_tick, _)) if tick == last_tick => {
                    stats.duplicate_tick += 1;
                    continue;
                }
                Some(&(last_tick, _)) => tick - last_tick > cfg.max_gap,
            };
            if starts_new_session {
                if !sessions.is_empty() {
                    stats.sessions_split += 1;
                }
                sessions.push((vec![(tick, state)], Vec::new()));
                continue;
            }
            let (observations, segments) =
                // lint: allow(P001) starts_new_session pushed a session on the None arm above
                sessions.last_mut().expect("a session exists past the None arm");
            // lint: allow(P001) every session is created with its first observation
            let &(last_tick, last_state) = observations.last().expect("sessions are non-empty");
            let gap = (tick - last_tick) as usize;
            match finder.path_within(network, last_state, state, gap) {
                Some(path) => {
                    observations.push((tick, state));
                    segments.push(path);
                }
                None => stats.infeasible += 1,
            }
        }
        if sessions.is_empty() {
            stats.objects_dropped += 1;
            continue;
        }
        for (k, (observations, segments)) in sessions.into_iter().enumerate() {
            let session_id = if k == 0 {
                id
            } else {
                match next_session_id {
                    Some(n) => {
                        next_session_id = n.checked_add(1);
                        n
                    }
                    // The id space is exhausted (an input id was u32::MAX);
                    // the session cannot be represented.
                    None => {
                        stats.out_of_window += observations.len();
                        continue;
                    }
                }
            };
            stats.snapped += observations.len();
            stats.objects_matched += 1;
            let path = interpolate(&observations, &segments);
            let object = UncertainObject::from_pairs(session_id, observations)
                // lint: allow(P001) duplicate-tick and gap filters enforce strict increase
                .expect("kept observations are strictly increasing");
            objects.push(MatchedObject { object, source: id, path });
        }
    }
    MapMatchOutcome { objects, stats, frame, origin_seconds }
}

/// A reusable breadth-first path search bounded by a hop budget.
///
/// Feasibility asks exactly "is `to` reachable from `from` in at most `gap`
/// hops", so a BFS limited to `gap` levels is both the *exact* witness
/// (minimum-hop, where a weighted search could over-count hops on irregular
/// networks) and cheap: it touches at most the `gap`-hop neighborhood
/// instead of the whole graph, and its visit/parent scratch is allocated
/// once per [`map_match`] call rather than per fix pair. Neighbors are
/// expanded in adjacency order from a FIFO frontier, so the returned path is
/// deterministic.
struct PathFinder {
    /// Visit stamp per state (`stamp` marks the current search).
    visited: Vec<u32>,
    parent: Vec<StateId>,
    frontier: Vec<StateId>,
    next: Vec<StateId>,
    stamp: u32,
}

impl PathFinder {
    fn new(num_states: usize) -> Self {
        PathFinder {
            visited: vec![0; num_states],
            parent: vec![0; num_states],
            frontier: Vec::new(),
            next: Vec::new(),
            stamp: 0,
        }
    }

    /// The minimum-hop path from `from` to `to` (inclusive), or `None` if
    /// `to` is not reachable within `max_hops`.
    fn path_within(
        &mut self,
        network: &Network,
        from: StateId,
        to: StateId,
        max_hops: usize,
    ) -> Option<Vec<StateId>> {
        if from == to {
            return Some(vec![from]);
        }
        if self.stamp == u32::MAX {
            self.visited.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        // lint: allow(P001) visited/parent are sized to the network node count; from is a node id
        self.visited[from as usize] = self.stamp;
        self.frontier.clear();
        self.frontier.push(from);
        for _ in 0..max_hops {
            self.next.clear();
            for &state in &self.frontier {
                for &(neighbor, _) in network.neighbors(state) {
                    // lint: allow(P001) neighbor ids are validated against the node count at graph build
                    if self.visited[neighbor as usize] == self.stamp {
                        continue;
                    }
                    // lint: allow(P001) neighbor ids are validated against the node count at graph build
                    self.visited[neighbor as usize] = self.stamp;
                    // lint: allow(P001) neighbor ids are validated against the node count at graph build
                    self.parent[neighbor as usize] = state;
                    if neighbor == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            // lint: allow(P001) cur walks parent links the BFS just wrote
                            cur = self.parent[cur as usize];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    self.next.push(neighbor);
                }
            }
            if self.next.is_empty() {
                return None;
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        None
    }
}

/// Cell size for the nearest-state hash grid: roughly one state per cell for
/// uniformly spread states, never degenerate.
fn grid_cell(points: &[Point]) -> f64 {
    let mut min = points[0];
    let mut max = points[0];
    for p in points {
        min = Point::new(min.x.min(p.x), min.y.min(p.y));
        max = Point::new(max.x.max(p.x), max.y.max(p.y));
    }
    let extent = (max.x - min.x).max(max.y - min.y).max(1e-9);
    extent / (points.len() as f64).sqrt().max(1.0)
}

/// Materialises the per-tic path between kept observations: inside segment
/// `k` the object advances one hop per tic along the stored shortest path and
/// then waits at the segment's end state.
fn interpolate(observations: &[(Timestamp, StateId)], segments: &[Vec<StateId>]) -> Trajectory {
    let (start, first_state) = observations[0];
    let mut states = vec![first_state];
    for (k, seg) in segments.iter().enumerate() {
        // lint: allow(P001) k enumerates segments, which has observations.len() - 1 entries
        let (from_t, _) = observations[k];
        // lint: allow(P001) k enumerates segments, which has observations.len() - 1 entries
        let (to_t, _) = observations[k + 1];
        let hops = seg.len() - 1;
        for t in (from_t + 1)..=to_t {
            // lint: allow(P001) the index is clamped to hops = seg.len() - 1, and segments are never empty
            states.push(seg[((t - from_t) as usize).min(hops)]);
        }
    }
    Trajectory::new(start, states)
}

/// Learns the shared a-priori Markov model from the matched trajectories by
/// aggregating turning counts at crossings over the interpolated per-tic
/// paths (the paper: "the transition matrix was extracted by aggregating the
/// turning probabilities at crossroads"). `smoothing` is added to every
/// network edge and self-loop so the model supports the whole graph.
pub fn learn_model_from_matches(
    network: &Network,
    matches: &[MatchedObject],
    smoothing: f64,
) -> MarkovModel {
    let mut counts: FxHashMap<(StateId, StateId), f64> = FxHashMap::default();
    for m in matches {
        for w in m.path.states().windows(2) {
            *counts.entry((w[0], w[1])).or_insert(0.0) += 1.0;
        }
    }
    network.learned_model(&counts, smoothing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road_network::RoadNetworkConfig;
    use crate::tdrive;
    use std::sync::Arc;
    use ust_markov::AdaptedModel;
    use ust_spatial::StateSpace;

    /// A clean 5x5 grid network (block 0.2, no jitter, no removals).
    fn grid5() -> Network {
        RoadNetworkConfig {
            grid_width: 5,
            grid_height: 5,
            jitter: 0.0,
            removal_fraction: 0.0,
            seed: 0,
        }
        .generate()
    }

    fn fix(object: u32, seconds: i64, p: Point, frame: &GeoFrame) -> RawFix {
        let (lon, lat) = frame.to_lonlat(&p);
        RawFix { object, seconds, lon, lat }
    }

    #[test]
    fn frame_projection_roundtrips() {
        let frame = GeoFrame::beijing();
        let p = Point::new(0.3, 0.7);
        let (lon, lat) = frame.to_lonlat(&p);
        let q = frame.to_network(lon, lat);
        assert!(p.dist(&q) < 1e-12);
    }

    #[test]
    fn frame_fit_covers_the_data_and_survives_degenerate_input() {
        let fixes = vec![
            RawFix { object: 1, seconds: 0, lon: 116.2, lat: 39.8 },
            RawFix { object: 1, seconds: 1, lon: 116.4, lat: 39.9 },
        ];
        let frame = GeoFrame::fit(&fixes).unwrap();
        assert_eq!(frame.lon_min, 116.2);
        assert_eq!(frame.lon_max, 116.4);
        let corner = frame.to_network(116.2, 39.8);
        assert!(corner.dist(&Point::new(0.0, 0.0)) < 1e-12);
        // One single fix: spans are widened, projection stays finite.
        let one = GeoFrame::fit(&fixes[..1]).unwrap();
        let p = one.to_network(116.2, 39.8);
        assert!(p.x.is_finite() && p.y.is_finite());
        assert!(GeoFrame::fit(&[]).is_none());
    }

    #[test]
    fn fixes_on_states_match_exactly() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        // Walk along the bottom row: states 0, 1, 2 (block 0.2, 1 hop apart),
        // observed every 3 tics (30 s at 10 s/tic).
        let fixes: Vec<RawFix> = [0u32, 1, 2]
            .iter()
            .enumerate()
            .map(|(k, &s)| fix(9, 1_000 + 30 * k as i64, net.position(s), &frame))
            .collect();
        let cfg = MapMatchConfig { frame: Some(frame), ..Default::default() };
        let out = map_match(&net, &fixes, &cfg);
        assert_eq!(out.origin_seconds, 1_000);
        assert_eq!(out.stats.snapped, 3);
        assert_eq!(out.stats.dropped_fixes(), 0);
        assert_eq!(out.objects.len(), 1);
        let obj = &out.objects[0].object;
        assert_eq!(obj.id(), 9);
        assert_eq!(obj.observation_pairs(), vec![(0, 0), (3, 1), (6, 2)]);
        // The interpolated path moves one hop per tic, then waits.
        assert_eq!(out.objects[0].path.states(), &[0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn out_of_radius_and_duplicate_tick_fixes_are_dropped() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        let on_state = fix(1, 0, net.position(12), &frame);
        // Same tic (4 s later at 10 s/tic) — dropped as duplicate.
        let same_tick = fix(1, 4, net.position(12), &frame);
        // Far outside the network (network coords ~(3, 3)).
        let outlier = RawFix { object: 1, seconds: 20, lon: 117.5, lat: 41.0 };
        let cfg = MapMatchConfig { frame: Some(frame), ..Default::default() };
        let out = map_match(&net, &[on_state, same_tick, outlier], &cfg);
        assert_eq!(out.stats.duplicate_tick, 1);
        assert_eq!(out.stats.out_of_radius, 1);
        assert_eq!(out.stats.snapped, 1);
        assert_eq!(out.objects[0].object.num_observations(), 1);
    }

    #[test]
    fn infeasible_jumps_are_dropped() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        // Corner to corner is 8 hops; one tic apart is infeasible.
        let a = fix(2, 0, net.position(0), &frame);
        let b = fix(2, 10, net.position(24), &frame);
        // 9 tics later: 8 hops within 9 tics is feasible again.
        let c = fix(2, 100, net.position(24), &frame);
        let cfg = MapMatchConfig { frame: Some(frame), ..Default::default() };
        let out = map_match(&net, &[a, b, c], &cfg);
        assert_eq!(out.stats.infeasible, 1);
        assert_eq!(out.objects[0].object.observation_pairs(), vec![(0, 0), (10, 24)]);
        let path = &out.objects[0].path;
        assert_eq!(path.start(), 0);
        assert_eq!(path.end(), 10);
        // The interpolation follows network edges or waits.
        for w in path.states().windows(2) {
            assert!(w[0] == w[1] || net.neighbors(w[0]).iter().any(|&(s, _)| s == w[1]));
        }
    }

    #[test]
    fn far_future_fixes_split_or_drop_instead_of_interpolating() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        let a = fix(5, 0, net.position(0), &frame);
        // A mistyped far-future year that still parses: tick 4e8 is
        // representable but sits max_gap beyond everything else. Without the
        // session split this would interpolate hundreds of millions of tics.
        let far = fix(5, 4_000_000_000, net.position(1), &frame);
        // Beyond the tic domain entirely (tick > u32::MAX) — dropped.
        let overflow = fix(5, 50_000_000_000, net.position(2), &frame);
        let b = fix(5, 40, net.position(1), &frame);
        let cfg = MapMatchConfig { frame: Some(frame), ..Default::default() };
        let out = map_match(&net, &[a, far, overflow, b], &cfg);
        assert_eq!(out.stats.out_of_window, 1, "only the unrepresentable tic is dropped");
        assert_eq!(out.stats.sessions_split, 1, "the far-future fix starts its own session");
        assert_eq!(out.objects.len(), 2);
        assert_eq!(out.objects[0].object.observation_pairs(), vec![(0, 0), (4, 1)]);
        assert!(out.objects[0].path.len() <= 5);
        // The stray session is its own tiny object — nothing interpolates
        // across the gap.
        assert_eq!(out.objects[1].object.id(), 6, "fresh id beyond the largest input id");
        assert_eq!(out.objects[1].source, 5, "linked back to its taxi");
        assert_eq!(out.objects[1].object.num_observations(), 1);
        assert_eq!(out.objects[1].path.len(), 1);
    }

    #[test]
    fn gaps_beyond_max_gap_start_a_new_session_and_keep_the_data() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        let cfg = MapMatchConfig { frame: Some(frame), max_gap: 8, ..Default::default() };
        let a = fix(6, 0, net.position(0), &frame);
        let at_limit = fix(6, 80, net.position(1), &frame); // gap 8 = max_gap
        let beyond = fix(6, 170, net.position(2), &frame); // gap 9 > max_gap
        let resumes = fix(6, 210, net.position(3), &frame); // gap 4, same session
        let out = map_match(&net, &[a, at_limit, beyond, resumes], &cfg);
        assert_eq!(out.stats.out_of_window, 0, "a session gap is not data loss");
        assert_eq!(out.stats.sessions_split, 1);
        assert_eq!(out.stats.snapped, 4, "every fix survives");
        assert_eq!(out.objects.len(), 2);
        assert_eq!(out.objects[0].object.id(), 6);
        assert_eq!(out.objects[0].object.observation_pairs(), vec![(0, 0), (8, 1)]);
        assert_eq!(out.objects[1].object.id(), 7);
        assert_eq!(out.objects[1].source, 6);
        assert_eq!(out.objects[1].object.observation_pairs(), vec![(17, 2), (21, 3)]);
        // The second session's path starts at its own first observation.
        assert_eq!(out.objects[1].path.start(), 17);
        assert_eq!(out.objects[1].path.end(), 21);
    }

    #[test]
    fn explicit_origin_drops_earlier_fixes() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        let early = fix(3, 50, net.position(6), &frame);
        let later = fix(3, 200, net.position(6), &frame);
        let cfg = MapMatchConfig {
            frame: Some(frame),
            origin_seconds: Some(100),
            ..Default::default()
        };
        let out = map_match(&net, &[early, later], &cfg);
        assert_eq!(out.stats.before_origin, 1);
        assert_eq!(out.objects[0].object.observation_pairs(), vec![(10, 6)]);
    }

    #[test]
    fn matched_objects_adapt_under_the_learned_model() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        // Two taxis on realistic short trips.
        let mut fixes = Vec::new();
        for (id, walk) in [(1u32, [0u32, 1, 6, 7]), (2, [12, 13, 18, 17])] {
            for (k, &s) in walk.iter().enumerate() {
                fixes.push(fix(id, 40 * k as i64, net.position(s), &frame));
            }
        }
        let cfg = MapMatchConfig { frame: Some(frame), ..Default::default() };
        let out = map_match(&net, &fixes, &cfg);
        assert_eq!(out.stats.objects_matched, 2);
        let model = learn_model_from_matches(&net, &out.objects, 0.05);
        assert!(model.is_valid());
        for m in &out.objects {
            let adapted = AdaptedModel::build(&model, &m.object.observation_pairs());
            assert!(adapted.is_ok(), "ingested observations contradict the learned model");
            assert!(m.path.consistent_with(&m.object.observation_pairs()));
        }
    }

    #[test]
    fn empty_network_rejects_everything() {
        let space = Arc::new(StateSpace::new());
        let net = Network::new(space, Vec::<(StateId, StateId)>::new());
        let fixes = vec![RawFix { object: 1, seconds: 0, lon: 116.2, lat: 39.8 }];
        let out = map_match(&net, &fixes, &MapMatchConfig::default());
        assert_eq!(out.stats.out_of_radius, 1);
        assert!(out.objects.is_empty());
        assert_eq!(out.stats.objects_dropped, 1);
    }

    #[test]
    fn workload_rendering_reingests_identically() {
        let net = grid5();
        let frame = GeoFrame::beijing();
        let objects = vec![
            UncertainObject::from_pairs(4, vec![(0, 0), (4, 2), (8, 4)]).unwrap(),
            UncertainObject::from_pairs(11, vec![(2, 5), (6, 7)]).unwrap(),
        ];
        let csv = tdrive::render_workload(net.space(), &objects, &frame, 10, 1_000_000);
        let load = tdrive::parse_str(&csv);
        assert!(load.errors.is_empty());
        let cfg = MapMatchConfig {
            frame: Some(frame),
            origin_seconds: Some(1_000_000),
            ..Default::default()
        };
        let out = map_match(&net, &load.fixes, &cfg);
        assert_eq!(out.objects.len(), 2);
        for (matched, original) in out.objects.iter().zip(&objects) {
            assert_eq!(matched.object.id(), original.id());
            assert_eq!(matched.object.observation_pairs(), original.observation_pairs());
        }
    }
}
