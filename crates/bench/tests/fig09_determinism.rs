//! Determinism tests for the real-data (fig09 `--csv`) pipeline.
//!
//! The ingested workload must be a pure function of the file bytes and the
//! seed: re-running the full parse → map-match → learn → query pipeline must
//! produce byte-identical result sets, and so must changing the TS-phase
//! (`adaptation_threads`) or PCNN-lattice (`pcnn_threads`) worker counts —
//! the same style of equivalence checks as `crates/core/tests/
//! pcnn_equivalence.rs`, but over the checked-in T-Drive fixture and the
//! fig09 measurement path instead of synthetic world sets.

use ust_bench::args::RunScale;
use ust_bench::datasets::{build_queries, ScaleParams};
use ust_bench::efficiency::measure_efficiency;
use ust_bench::ingest::{ingest_taxi_csv, IngestedTaxi};
use ust_core::{EngineConfig, PcnnOutcome, Query, QueryEngine, QueryOutcome};

/// The checked-in golden fixture that also drives the CI smoke run.
const FIXTURE: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/data/tdrive_small.csv"
));

fn quick_params() -> ScaleParams {
    let mut params = ScaleParams::for_scale(RunScale::Quick);
    params.num_queries = 3;
    params
}

fn ingest() -> IngestedTaxi {
    ingest_taxi_csv(&quick_params(), FIXTURE, 0)
}

fn assert_same_nn_outcome(a: &QueryOutcome, b: &QueryOutcome) {
    assert_eq!(a.results.len(), b.results.len());
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.object, rb.object);
        assert_eq!(
            ra.probability.to_bits(),
            rb.probability.to_bits(),
            "probability of object {} diverged",
            ra.object
        );
    }
    assert_eq!(a.stats.candidates, b.stats.candidates);
    assert_eq!(a.stats.influencers, b.stats.influencers);
}

fn assert_same_pcnn_outcome(a: &PcnnOutcome, b: &PcnnOutcome) {
    assert_eq!(a.results.len(), b.results.len());
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.object, rb.object);
        assert_eq!(ra.sets.len(), rb.sets.len());
        for ((ta, pa), (tb, pb)) in ra.sets.iter().zip(&rb.sets) {
            assert_eq!(ta, tb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        assert_eq!(ra.candidate_sets_evaluated, rb.candidate_sets_evaluated);
    }
    assert_eq!(a.candidate_sets_evaluated, b.candidate_sets_evaluated);
    assert_eq!(a.max_level(), b.max_level());
    assert_eq!(a.frontier_peak(), b.frontier_peak());
}

#[test]
fn ingested_fixture_has_the_expected_shape() {
    let ingested = ingest();
    assert_eq!(ingested.lines, 67);
    assert_eq!(ingested.load_errors.len(), 7, "the fixture carries 7 malformed rows");
    assert_eq!(
        ingested.match_stats.objects_in, 5,
        "5 taxis (malformed rows never become objects)"
    );
    assert_eq!(ingested.match_stats.objects_matched, 5);
    assert!(ingested.dataset.database.shared_model().is_valid());
    // Every ingested object admits the forward–backward adaptation under the
    // model learned from its own matched traces.
    let engine = QueryEngine::new(&ingested.dataset.database, EngineConfig::with_samples(1));
    for o in ingested.dataset.database.objects() {
        assert!(engine.adapted_model(o.id()).is_ok(), "object {} fails to adapt", o.id());
    }
}

#[test]
fn fig09_measurement_is_identical_across_runs_and_thread_counts() {
    let params = quick_params();
    let run = |threads: usize| {
        let ingested = ingest();
        let queries = build_queries(&ingested.dataset, &params, 0);
        measure_efficiency(&ingested.dataset, &queries, params.num_samples, 0, threads)
    };
    let a = run(1);
    let b = run(1); // identical re-run, fresh ingest
    let c = run(2); // different TS-phase worker count
    assert_ne!(a.digest, 0);
    assert_eq!(a.digest, b.digest, "re-running the pipeline must not change the result set");
    assert_eq!(a.digest, c.digest, "the TS worker count must not change the result set");
    assert_eq!(a.candidates.to_bits(), c.candidates.to_bits());
    assert_eq!(a.influencers.to_bits(), c.influencers.to_bits());
    assert_eq!(a.cold_adaptations.to_bits(), c.cold_adaptations.to_bits());
}

#[test]
fn queries_on_ingested_data_are_thread_count_invariant() {
    let ingested = ingest();
    let params = quick_params();
    let queries = build_queries(&ingested.dataset, &params, 1);
    let spec = &queries.queries[0];
    let query = Query::at_point(spec.location, spec.times.iter().copied()).expect("valid query");
    let outcomes: Vec<(QueryOutcome, QueryOutcome, PcnnOutcome)> = [1usize, 2]
        .iter()
        .map(|&threads| {
            let engine = QueryEngine::new(
                &ingested.dataset.database,
                EngineConfig {
                    num_samples: 200,
                    seed: 5,
                    adaptation_threads: threads,
                    pcnn_threads: threads,
                    ..Default::default()
                },
            );
            (
                engine.pforall_nn(&query, 0.0).expect("P∀NN succeeds"),
                engine.pexists_nn(&query, 0.0).expect("P∃NN succeeds"),
                engine.pcnn(&query, 0.1).expect("PCNN succeeds"),
            )
        })
        .collect();
    assert_same_nn_outcome(&outcomes[0].0, &outcomes[1].0);
    assert_same_nn_outcome(&outcomes[0].1, &outcomes[1].1);
    assert_same_pcnn_outcome(&outcomes[0].2, &outcomes[1].2);
}
