//! # pnnq — Probabilistic Nearest Neighbor Queries on Uncertain Moving Object Trajectories
//!
//! A from-scratch Rust reproduction of Niedermayer, Züfle, Emrich, Renz,
//! Mamoulis, Chen, Kriegel: *Probabilistic Nearest Neighbor Queries on
//! Uncertain Moving Object Trajectories*, PVLDB 7(3), 2013.
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! * [`spatial`] — geometry, discrete state spaces and the R\*-tree,
//! * [`markov`] — sparse Markov chains and the forward–backward model
//!   adaptation (Algorithm 2),
//! * [`trajectory`] — observations, uncertain objects, the trajectory
//!   database and certain-world NN primitives,
//! * [`sampling`] — rejection and a-posteriori trajectory samplers,
//! * [`index`] — the UST-tree with `dmin`/`dmax` pruning,
//! * [`persist`] — versioned, checksummed on-disk stores for the database,
//!   the UST-tree and adapted models, behind a fuzz-hardened decoder,
//! * [`core`] — the P∃NN / P∀NN / PCNN / kNN query semantics (sampling-based,
//!   exact and snapshot evaluation) plus cold-starting engines from a store,
//! * [`generator`] — synthetic and simulated-taxi workload generators, the
//!   T-Drive-format loader and the map-matching real-data ingestion pipeline.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough and `DESIGN.md`
//! for the architecture and the per-experiment index.

pub use ust_core as core;
pub use ust_generator as generator;
pub use ust_index as index;
pub use ust_markov as markov;
pub use ust_persist as persist;
pub use ust_sampling as sampling;
pub use ust_spatial as spatial;
pub use ust_trajectory as trajectory;

/// Commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use ust_core::{
        AdaptationCache, CacheStats, DatabaseSummary, EngineConfig, EngineStore,
        ObjectProbability, PcnnOutcome, PrepareOutcome, Query, QueryEngine, QueryOutcome,
    };
    pub use ust_persist::{StoreError, StoreStats};
    pub use ust_generator::{
        learn_model_from_matches, map_match, Dataset, GeoFrame, LoadError, LoadErrorKind,
        LoadOutcome, MapMatchConfig, MapMatchOutcome, MatchStats, MatchedObject,
        ObjectWorkloadConfig, QueryWorkload, QueryWorkloadConfig, RawFix, RoadNetworkConfig,
        SyntheticNetworkConfig, TaxiWorkloadConfig,
    };
    pub use ust_index::{IndexBuildStats, UstTree, UstTreeConfig};
    pub use ust_markov::{AdaptedModel, CsrMatrix, MarkovModel, ModelAdaptation, Timestamp};
    pub use ust_sampling::{PosteriorSampler, WorldSampler};
    pub use ust_spatial::{Point, Rect2, Rect3, StateId, StateSpace};
    pub use ust_trajectory::{ObjectId, Observation, Trajectory, TrajectoryDatabase, UncertainObject};
}
