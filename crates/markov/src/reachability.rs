//! Support-only reachability propagation.
//!
//! The UST-tree (Section 6) approximates, for each pair of consecutive
//! observations `Θ_i = (t_i, θ_i)` and `Θ_{i+1} = (t_{i+1}, θ_{i+1})`, the set
//! of `(time, location)` pairs the object may visit in between — the
//! "diamond" shape visible in Figures 4 and 5. A state `s` is possible at
//! time `t` iff it is forward-reachable from `θ_i` in `t - t_i` steps *and*
//! backward-reachable from `θ_{i+1}` in `t_{i+1} - t` steps.
//!
//! This module computes those sets using only the *support* of the transition
//! matrix (which states can follow which), without tracking probabilities —
//! that is all the index needs, and it is considerably cheaper than a full
//! adaptation. It is also the basis of the "U" (uniform) effectiveness
//! baseline of Figure 12, which assigns equal probability to every reachable
//! state.

use crate::sparse::CsrMatrix;
use crate::{StateId, Timestamp};

/// Per-timestamp reachable state sets between two observations.
#[derive(Debug, Clone)]
pub struct ReachabilitySets {
    /// Timestamp of the first observation.
    pub start: Timestamp,
    /// Timestamp of the second observation.
    pub end: Timestamp,
    /// `per_time[k]` lists (sorted) the states the object may occupy at time
    /// `start + k`, consistent with both observations. Empty sets indicate
    /// contradictory observations.
    pub per_time: Vec<Vec<StateId>>,
}

impl ReachabilitySets {
    /// The states possible at time `t`, or an empty slice outside `[start, end]`.
    pub fn at(&self, t: Timestamp) -> &[StateId] {
        if t < self.start || t > self.end {
            return &[];
        }
        &self.per_time[(t - self.start) as usize]
    }

    /// Whether at least one state is possible at every covered timestamp.
    pub fn is_consistent(&self) -> bool {
        self.per_time.iter().all(|s| !s.is_empty())
    }

    /// Total number of possible `(time, state)` pairs.
    pub fn cardinality(&self) -> usize {
        self.per_time.iter().map(|s| s.len()).sum()
    }
}

/// Precomputed forward/backward support of a transition matrix, shared by all
/// objects that use the same a-priori model.
#[derive(Debug, Clone)]
pub struct ReachabilityIndex {
    forward: CsrMatrix,
    backward: CsrMatrix,
}

impl ReachabilityIndex {
    /// Builds the index from a transition matrix (probabilities are ignored,
    /// only the sparsity pattern matters).
    pub fn from_matrix(matrix: &CsrMatrix) -> Self {
        ReachabilityIndex { forward: matrix.clone(), backward: matrix.transpose() }
    }

    /// Number of states of the underlying model.
    pub fn num_states(&self) -> usize {
        self.forward.num_states()
    }

    /// States reachable from `origin` in exactly `0..=steps` transitions:
    /// `result[k]` is the sorted set after `k` steps.
    pub fn forward_reachable(&self, origin: StateId, steps: usize) -> Vec<Vec<StateId>> {
        expand(&self.forward, origin, steps)
    }

    /// States from which `target` is reachable in exactly `0..=steps`
    /// transitions (walking backwards in time): `result[k]` is the sorted set
    /// of possible states `k` steps *before* the target.
    pub fn backward_reachable(&self, target: StateId, steps: usize) -> Vec<Vec<StateId>> {
        expand(&self.backward, target, steps)
    }

    /// Per-timestamp possible states between two consecutive observations.
    ///
    /// If the second observation is not forward-reachable from the first in
    /// the given number of steps, the segment is contradictory — no
    /// trajectory satisfies both observations, so the possible-state set is
    /// empty at *every* covered timestamp — and the backward BFS is skipped
    /// entirely. Hop-infeasible commutes are common in map-matched real
    /// data, so the index build benefits from paying one expansion instead
    /// of two for them.
    pub fn segment(
        &self,
        from: (Timestamp, StateId),
        to: (Timestamp, StateId),
    ) -> ReachabilitySets {
        assert!(from.0 <= to.0, "observations must be ordered in time");
        let steps = (to.0 - from.0) as usize;
        let fwd = self.forward_reachable(from.1, steps);
        if fwd[steps].binary_search(&to.1).is_err() {
            return ReachabilitySets {
                start: from.0,
                end: to.0,
                per_time: vec![Vec::new(); steps + 1],
            };
        }
        let bwd = self.backward_reachable(to.1, steps);
        let per_time: Vec<Vec<StateId>> = (0..=steps)
            .map(|k| intersect_sorted(&fwd[k], &bwd[steps - k]))
            .collect();
        ReachabilitySets { start: from.0, end: to.0, per_time }
    }
}

/// Breadth-first support expansion: `result[k]` is the sorted set of states
/// reachable from `origin` in exactly `k` steps of the given matrix.
fn expand(matrix: &CsrMatrix, origin: StateId, steps: usize) -> Vec<Vec<StateId>> {
    let mut out = Vec::with_capacity(steps + 1);
    out.push(vec![origin]);
    for k in 0..steps {
        let prev = &out[k];
        let mut next: Vec<StateId> = Vec::new();
        for &s in prev {
            next.extend_from_slice(matrix.successors(s));
        }
        next.sort_unstable();
        next.dedup();
        out.push(next);
    }
    out
}

/// Intersection of two sorted, deduplicated slices.
fn intersect_sorted(a: &[StateId], b: &[StateId]) -> Vec<StateId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-state line graph: 0 <-> 1 <-> 2 <-> 3, plus self-loops.
    fn line_graph() -> CsrMatrix {
        CsrMatrix::stochastic_from_weights(vec![
            vec![(0, 1.0), (1, 1.0)],
            vec![(0, 1.0), (1, 1.0), (2, 1.0)],
            vec![(1, 1.0), (2, 1.0), (3, 1.0)],
            vec![(2, 1.0), (3, 1.0)],
        ])
    }

    #[test]
    fn forward_expansion_grows_along_the_line() {
        let idx = ReachabilityIndex::from_matrix(&line_graph());
        let fwd = idx.forward_reachable(0, 3);
        assert_eq!(fwd[0], vec![0]);
        assert_eq!(fwd[1], vec![0, 1]);
        assert_eq!(fwd[2], vec![0, 1, 2]);
        assert_eq!(fwd[3], vec![0, 1, 2, 3]);
    }

    #[test]
    fn backward_expansion_mirrors_forward_on_symmetric_graphs() {
        let idx = ReachabilityIndex::from_matrix(&line_graph());
        let bwd = idx.backward_reachable(3, 2);
        assert_eq!(bwd[0], vec![3]);
        assert_eq!(bwd[1], vec![2, 3]);
        assert_eq!(bwd[2], vec![1, 2, 3]);
    }

    #[test]
    fn segment_intersects_forward_and_backward() {
        let idx = ReachabilityIndex::from_matrix(&line_graph());
        // From state 0 at t=10 to state 3 at t=13: the object must move right
        // every step, so the diamond is a thin corridor.
        let seg = idx.segment((10, 0), (13, 3));
        assert!(seg.is_consistent());
        assert_eq!(seg.at(10), &[0]);
        assert_eq!(seg.at(11), &[1]);
        assert_eq!(seg.at(12), &[2]);
        assert_eq!(seg.at(13), &[3]);
        assert_eq!(seg.cardinality(), 4);
        assert_eq!(seg.at(9), &[] as &[StateId]);
    }

    #[test]
    fn segment_with_slack_forms_a_diamond() {
        let idx = ReachabilityIndex::from_matrix(&line_graph());
        // Same endpoints but 6 steps of time: intermediate sets widen and then
        // narrow again (the "bead"/diamond of the paper).
        let seg = idx.segment((0, 0), (6, 3));
        assert!(seg.is_consistent());
        assert!(seg.at(3).len() >= seg.at(1).len());
        assert!(seg.at(3).len() >= seg.at(5).len());
        assert_eq!(seg.at(0), &[0]);
        assert_eq!(seg.at(6), &[3]);
    }

    #[test]
    fn contradictory_segment_yields_empty_sets() {
        let idx = ReachabilityIndex::from_matrix(&line_graph());
        // Cannot get from state 0 to state 3 in a single step. No trajectory
        // satisfies both observations, so every covered timestamp is empty
        // (the early exit that skips the backward BFS).
        let seg = idx.segment((0, 0), (1, 3));
        assert!(!seg.is_consistent());
        assert_eq!(seg.cardinality(), 0, "impossible segments have no possible states at all");
        assert_eq!(seg.at(0), &[] as &[StateId]);
        assert_eq!(seg.at(1), &[] as &[StateId]);
    }

    #[test]
    fn zero_length_segment() {
        let idx = ReachabilityIndex::from_matrix(&line_graph());
        let seg = idx.segment((4, 2), (4, 2));
        assert!(seg.is_consistent());
        assert_eq!(seg.cardinality(), 1);
        assert_eq!(seg.at(4), &[2]);
    }
}
