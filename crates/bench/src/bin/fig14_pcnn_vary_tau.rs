//! Figure 14: PCNN query efficiency while varying the probability threshold τ.
//!
//! Paper sweep: τ ∈ {0.1, 0.5, 0.9}. Reported series: the model-adaptation
//! time (TS), the sampling + vertical lattice time (SA), the number of
//! qualifying timestamp sets, the number of validated candidate sets and the
//! lattice observability counters (deepest level, peak frontier width). The
//! paper observes that small thresholds blow up both the lattice
//! (near-exponential in |T|) and the result set, while large thresholds make
//! the query cheap; `MaxLevel`/`FrontierPeak` make that blow-up directly
//! visible in the JSON trajectory.
//!
//! `--threads N` fans the TS phase and the per-candidate lattice runs across
//! `N` workers (0 = available parallelism; default: serial, so timings are
//! comparable with the other paper-series figures).

use std::time::Instant;
use ust_bench::continuous::measure_pcnn;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::{ExperimentReport, Row, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig14_pcnn_vary_tau");
    settings.reject_store_flag("fig14_pcnn_vary_tau");
    settings.reject_wal_flags("fig14_pcnn_vary_tau");
    settings.reject_deadline_flag("fig14_pcnn_vary_tau");
    let params = ScaleParams::for_scale(settings.scale);
    let threads = resolve_adaptation_threads(settings.adaptation_threads.unwrap_or(1));
    let dataset = build_synthetic(
        &params,
        params.num_states,
        params.branching,
        params.num_objects,
        settings.seed,
    );
    let queries = build_queries(&dataset, &params, settings.seed);
    let mut report = ExperimentReport::new(
        "figure14_pcnn_vary_tau",
        "PCNN efficiency while varying the probability threshold tau \
         (paper: Figure 14; TS/SA in seconds, timestamp sets = qualifying (object, set) pairs, \
         MaxLevel/FrontierPeak = lattice depth/width observability)",
    )
    .with_meta("threads", threads as f64);
    let wall_start = Instant::now();
    for tau in [0.1, 0.5, 0.9] {
        eprintln!("[fig14] tau = {tau} (threads: {threads})");
        let m = measure_pcnn(&dataset, &queries, params.num_samples, tau, settings.seed, threads);
        report.push(
            Row::new(format!("tau={tau}"))
                .with("TS", m.ts_seconds)
                .with("SA", m.sa_seconds)
                .with("#TimestampSets", m.timestamp_sets)
                .with("#CandidateSets", m.candidate_sets)
                .with("MaxLevel", m.max_level)
                .with("FrontierPeak", m.frontier_peak)
                .with("wall", m.wall_seconds),
        );
    }
    report.set_meta("wall_clock_seconds", wall_start.elapsed().as_secs_f64());
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
