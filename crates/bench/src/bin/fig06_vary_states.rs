//! Figure 6: P∀NNQ / P∃NNQ efficiency while varying the number of states `N`.
//!
//! Paper sweep: N ∈ {10k, 100k, 500k}. Default harness sweep: a proportional
//! reduction (see DESIGN.md §3). Reported series: CPU time of the adaptation
//! phase (TS), of the P∀NNQ sampling (FA) and of the P∃NNQ sampling (EX), plus
//! the candidate and influence set sizes |C(q)| and |I(q)|.

use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::measure_efficiency;
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};

fn main() {
    let settings = RunSettings::from_env();
    let params = ScaleParams::for_scale(settings.scale);
    let sweep: Vec<usize> = match settings.scale {
        RunScale::Quick => vec![1_000, 2_000, 4_000],
        RunScale::Default => vec![2_000, 10_000, 50_000],
        RunScale::Paper => vec![10_000, 100_000, 500_000],
    };
    let mut report = ExperimentReport::new(
        "figure06_vary_states",
        "Efficiency of P∀NNQ/P∃NNQ while varying the number of states N \
         (paper: Figure 6; series TS/FA/EX in seconds, |C(q)|/|I(q)| in objects)",
    );
    for n in sweep {
        eprintln!("[fig06] N = {n}");
        let dataset = build_synthetic(&params, n, params.branching, params.num_objects, settings.seed);
        let queries = build_queries(&dataset, &params, settings.seed);
        let m = measure_efficiency(&dataset, &queries, params.num_samples, settings.seed);
        report.push(
            Row::new(format!("|S|={n}"))
                .with("TS", m.ts_seconds)
                .with("FA", m.fa_seconds)
                .with("EX", m.ex_seconds)
                .with("|C(q)|", m.candidates)
                .with("|I(q)|", m.influencers),
        );
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
