//! # ust-sampling
//!
//! Trajectory sampling for uncertain moving objects (Section 5 of the paper).
//!
//! Probabilistic NN queries are `NP`-hard (P∃NN) or have no known
//! polynomial-time algorithm (P∀NN), so the paper answers them by Monte-Carlo
//! simulation: draw possible worlds (one certain trajectory per object,
//! consistent with its observations), run certain-trajectory NN algorithms on
//! every world and average.
//!
//! Three samplers are provided:
//!
//! * [`rejection::RejectionSampler`] — "TS1": forward simulation of the
//!   a-priori chain from the first observation, discarding every trajectory
//!   that misses a later observation. The expected number of attempts per
//!   valid sample grows exponentially in the number of observations
//!   (Section 5.1, Figure 10).
//! * [`rejection::SegmentedSampler`] — "TS2": segment-wise rejection between
//!   consecutive observations, reducing the expected cost to linear in the
//!   number of observations (still typically > 10⁵ attempts, Figure 10).
//! * [`posterior::PosteriorSampler`] — the paper's contribution: sampling
//!   from the forward–backward adapted a-posteriori chain (`ust-markov`),
//!   which needs exactly **one** attempt per sample and still draws each
//!   possible trajectory with its correct conditional probability.
//!
//! [`world::WorldSampler`] combines per-object samplers into possible worlds,
//! and [`hoeffding`] provides the sample-size / confidence bounds the paper
//! refers to (\[29\]).

pub mod block;
pub mod hoeffding;
pub mod posterior;
pub mod rejection;
pub mod world;

pub use block::{WorldBlock, WORLD_BLOCK_WIDTH};
pub use hoeffding::{confidence_radius, required_samples};
pub use posterior::PosteriorSampler;
pub use rejection::{RejectionOutcome, RejectionSampler, SegmentedSampler};
pub use world::{PossibleWorld, WorldSampler};

pub use ust_markov::Timestamp;
pub use ust_spatial::StateId;

use rand::Rng;

/// Samples an index from parallel `(values, weights)` slices proportionally to
/// the weights, using inverse-CDF sampling. Returns `None` for empty input.
pub(crate) fn sample_weighted<R: Rng>(
    states: &[StateId],
    weights: &[f64],
    rng: &mut R,
) -> Option<StateId> {
    if states.is_empty() {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let target = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return Some(states[i]);
        }
    }
    states.last().copied()
}
