//! T001 negative fixture: wall-clock reads outside the bench timing layer.
//! Findings pinned by `tests/rules_fixtures.rs` — keep line numbers stable.

fn stamp_result(out: &mut Vec<u8>) {
    let started = Instant::now();
    out.push(0);
    let elapsed = started.elapsed().as_nanos() as u8;
    out.push(elapsed);
    let wall = SystemTime::now();
    let _ = wall;
}
