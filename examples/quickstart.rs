//! Quickstart: build an uncertain trajectory database and answer probabilistic
//! nearest-neighbor queries.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example
//! 1. generates a small synthetic network and a database of uncertain objects
//!    (sparse observations of shortest-path motion),
//! 2. builds the query engine (UST-tree pruning + forward-backward adaptation
//!    + Monte-Carlo sampling),
//! 3. answers a P∀NNQ, a P∃NNQ and a PCNNQ for a random query state, and
//! 4. prints the results together with the filter statistics.

use pnnq::prelude::*;

fn main() {
    // 1. Dataset: 2 000 states, branching factor 8, 150 uncertain objects.
    let network_cfg = SyntheticNetworkConfig { num_states: 2_000, branching_factor: 8.0, seed: 1 };
    let object_cfg = ObjectWorkloadConfig {
        num_objects: 150,
        lifetime: 60,
        horizon: 200,
        observation_interval: 10,
        lag: 0.5,
        standing_fraction: 0.0,
        seed: 2,
    };
    println!("generating dataset ({} states, {} objects)...", network_cfg.num_states, object_cfg.num_objects);
    let dataset = Dataset::synthetic(&network_cfg, &object_cfg, 1.0);
    println!(
        "  -> {} observations total, time horizon {:?}",
        dataset.database.total_observations(),
        dataset.database.time_horizon().unwrap()
    );

    // 2. Query engine: 2 000 sampled worlds per query.
    let engine = QueryEngine::new(&dataset.database, EngineConfig { num_samples: 2_000, ..Default::default() });

    // 3. A query state (uniformly drawn from the state space) and interval.
    let workload = QueryWorkload::generate_covered(
        &dataset.network,
        &dataset.database,
        &QueryWorkloadConfig { num_queries: 1, interval_length: 10, horizon: 200, seed: 7 },
        3,
    );
    let spec = &workload.queries[0];
    let query = Query::at_point(spec.location, spec.times.iter().copied()).unwrap();
    println!(
        "\nquery: location ({:.3}, {:.3}), T = [{}, {}]",
        spec.location.x,
        spec.location.y,
        query.start(),
        query.end()
    );

    // P∀NNQ: who is the nearest neighbor during the WHOLE interval?
    let forall = engine.pforall_nn(&query, 0.05).expect("query succeeds");
    println!(
        "\nP∀NNQ (tau = 0.05): {} result(s); |C(q)| = {}, |I(q)| = {}",
        forall.results.len(),
        forall.stats.candidates,
        forall.stats.influencers
    );
    for r in forall.results.iter().take(5) {
        println!("  object {:>4}  P∀NN = {:.3}", r.object, r.probability);
    }

    // P∃NNQ: who is the nearest neighbor at SOME point of the interval?
    let exists = engine.pexists_nn(&query, 0.05).expect("query succeeds");
    println!("\nP∃NNQ (tau = 0.05): {} result(s)", exists.results.len());
    for r in exists.results.iter().take(5) {
        println!("  object {:>4}  P∃NN = {:.3}", r.object, r.probability);
    }

    // PCNNQ: for each object, during which sub-intervals is it the NN?
    let pcnn = engine.pcnn(&query, 0.3).expect("query succeeds");
    println!(
        "\nPCNNQ (tau = 0.3): {} objects, {} qualifying timestamp sets",
        pcnn.results.len(),
        pcnn.total_result_sets()
    );
    for obj in pcnn.results.iter().take(3) {
        let largest = obj.sets.iter().max_by_key(|(ts, _)| ts.len()).unwrap();
        println!(
            "  object {:>4}: largest qualifying set {:?} (P = {:.3})",
            obj.object, largest.0, largest.1
        );
    }

    println!(
        "\nphase timings: adaptation {:.1} ms ({} cold, {} cache hits), sampling {:.1} ms ({} worlds)",
        forall.stats.adaptation_time.as_secs_f64() * 1e3,
        forall.stats.cold_adaptations,
        forall.stats.cache_hits,
        forall.stats.sampling_time.as_secs_f64() * 1e3,
        forall.stats.worlds
    );

    // 4. The UST-tree build is observable and shareable: further engines
    //    (e.g. one per serving thread) reuse the same build through an `Arc`
    //    instead of re-indexing or cloning the tree.
    let build = engine.index_build_stats().expect("filter step enabled");
    println!(
        "\nUST-tree build: {} diamonds over {} segments in {:.1} ms \
         ({} build threads, {:.0}% reach-memo hits, peak frontier {})",
        build.diamonds,
        build.segments,
        build.build_time.as_secs_f64() * 1e3,
        build.build_threads,
        build.memo_hit_rate() * 100.0,
        build.peak_frontier
    );
    let second = QueryEngine::with_index(
        &dataset.database,
        engine.shared_index().expect("filter step enabled"),
        EngineConfig { num_samples: 2_000, ..Default::default() },
    );
    let again = second.pforall_nn(&query, 0.05).expect("query succeeds");
    assert_eq!(again.results.len(), forall.results.len(), "shared index, same answers");
    println!("a second engine over the shared index returns the same {} result(s)", again.results.len());
}
