//! Observations and uncertain moving objects.

use crate::{StateId, Timestamp};

/// Identifier of a moving object in the trajectory database.
pub type ObjectId = u32;

/// One observation `(t, θ)`: object was certainly at state `θ` at time `t`
/// (Section 3.1 — "the location of an observation is assumed to be certain").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Observation time.
    pub time: Timestamp,
    /// Observed state.
    pub state: StateId,
}

impl Observation {
    /// Creates an observation.
    pub const fn new(time: Timestamp, state: StateId) -> Self {
        Observation { time, state }
    }
}

/// Errors raised when constructing an [`UncertainObject`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservationError {
    /// The observation list was empty.
    Empty,
    /// Observation times were not strictly increasing.
    NotStrictlyIncreasing {
        /// Index of the offending observation.
        index: usize,
    },
}

impl std::fmt::Display for ObservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObservationError::Empty => write!(f, "an uncertain object needs at least one observation"),
            ObservationError::NotStrictlyIncreasing { index } => {
                write!(f, "observation times must be strictly increasing (violated at index {index})")
            }
        }
    }
}

impl std::error::Error for ObservationError {}

/// An uncertain moving object: an identifier plus its chronologically sorted
/// observations. Everything in between the observations is uncertain.
#[derive(Debug, Clone)]
pub struct UncertainObject {
    id: ObjectId,
    observations: Vec<Observation>,
}

impl UncertainObject {
    /// Creates an uncertain object, validating the observation sequence.
    pub fn new(
        id: ObjectId,
        observations: Vec<Observation>,
    ) -> Result<Self, ObservationError> {
        if observations.is_empty() {
            return Err(ObservationError::Empty);
        }
        for (i, w) in observations.windows(2).enumerate() {
            if w[0].time >= w[1].time {
                return Err(ObservationError::NotStrictlyIncreasing { index: i + 1 });
            }
        }
        Ok(UncertainObject { id, observations })
    }

    /// Creates an object from `(time, state)` pairs.
    pub fn from_pairs(
        id: ObjectId,
        pairs: impl IntoIterator<Item = (Timestamp, StateId)>,
    ) -> Result<Self, ObservationError> {
        Self::new(id, pairs.into_iter().map(|(t, s)| Observation::new(t, s)).collect())
    }

    /// Object identifier.
    #[inline]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The observations in chronological order.
    #[inline]
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations `|Θ^o|`.
    #[inline]
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Time of the first observation (start of the object's covered interval).
    #[inline]
    pub fn first_time(&self) -> Timestamp {
        self.observations[0].time
    }

    /// Time of the last observation (end of the object's covered interval).
    #[inline]
    pub fn last_time(&self) -> Timestamp {
        self.observations[self.observations.len() - 1].time
    }

    /// Whether the object's covered interval `[first, last]` includes `t`.
    #[inline]
    pub fn covers(&self, t: Timestamp) -> bool {
        t >= self.first_time() && t <= self.last_time()
    }

    /// Whether the object's covered interval includes every timestamp of the
    /// (inclusive) interval `[from, to]`.
    #[inline]
    pub fn covers_interval(&self, from: Timestamp, to: Timestamp) -> bool {
        self.first_time() <= from && self.last_time() >= to
    }

    /// The observation at exactly time `t`, if any.
    pub fn observed_state_at(&self, t: Timestamp) -> Option<StateId> {
        self.observations
            .binary_search_by_key(&t, |o| o.time)
            .ok()
            .map(|i| self.observations[i].state)
    }

    /// Appends observations to the end of the sequence. The appended times
    /// must be strictly increasing and strictly after [`Self::last_time`];
    /// on error nothing is applied and the object is unchanged. This is the
    /// in-memory half of an incremental (WAL-backed) ingest — observations
    /// only ever arrive at the chronological tail.
    pub fn append_observations(
        &mut self,
        appended: &[Observation],
    ) -> Result<(), ObservationError> {
        if appended.is_empty() {
            return Err(ObservationError::Empty);
        }
        let mut last = self.last_time();
        for (i, o) in appended.iter().enumerate() {
            if o.time <= last {
                return Err(ObservationError::NotStrictlyIncreasing {
                    index: self.observations.len() + i,
                });
            }
            last = o.time;
        }
        self.observations.extend_from_slice(appended);
        Ok(())
    }

    /// The observations as `(time, state)` pairs (the input format of the
    /// model adaptation in `ust-markov`).
    pub fn observation_pairs(&self) -> Vec<(Timestamp, StateId)> {
        self.observations.iter().map(|o| (o.time, o.state)).collect()
    }

    /// Iterator over consecutive observation pairs — the "segments" whose
    /// reachable (time, state) diamonds the UST-tree approximates.
    pub fn segments(&self) -> impl Iterator<Item = (Observation, Observation)> + '_ {
        self.observations.windows(2).map(|w| (w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> UncertainObject {
        UncertainObject::from_pairs(7, vec![(0, 10), (5, 20), (10, 30)]).unwrap()
    }

    #[test]
    fn construction_validates_observations() {
        assert_eq!(UncertainObject::new(0, vec![]).unwrap_err(), ObservationError::Empty);
        let err = UncertainObject::from_pairs(0, vec![(3, 1), (3, 2)]).unwrap_err();
        assert_eq!(err, ObservationError::NotStrictlyIncreasing { index: 1 });
        let err = UncertainObject::from_pairs(0, vec![(5, 1), (2, 2)]).unwrap_err();
        assert_eq!(err, ObservationError::NotStrictlyIncreasing { index: 1 });
        assert!(UncertainObject::from_pairs(0, vec![(5, 1)]).is_ok());
    }

    #[test]
    fn accessors() {
        let o = obj();
        assert_eq!(o.id(), 7);
        assert_eq!(o.num_observations(), 3);
        assert_eq!(o.first_time(), 0);
        assert_eq!(o.last_time(), 10);
        assert_eq!(o.observation_pairs(), vec![(0, 10), (5, 20), (10, 30)]);
    }

    #[test]
    fn coverage_checks() {
        let o = obj();
        assert!(o.covers(0));
        assert!(o.covers(7));
        assert!(o.covers(10));
        assert!(!o.covers(11));
        assert!(o.covers_interval(2, 8));
        assert!(!o.covers_interval(2, 12));
    }

    #[test]
    fn observed_state_lookup() {
        let o = obj();
        assert_eq!(o.observed_state_at(5), Some(20));
        assert_eq!(o.observed_state_at(6), None);
    }

    #[test]
    fn append_validates_then_extends() {
        let mut o = obj();
        // Times must land strictly after the current tail.
        let err = o.append_observations(&[Observation::new(10, 40)]).unwrap_err();
        assert_eq!(err, ObservationError::NotStrictlyIncreasing { index: 3 });
        let err = o
            .append_observations(&[Observation::new(12, 40), Observation::new(12, 41)])
            .unwrap_err();
        assert_eq!(err, ObservationError::NotStrictlyIncreasing { index: 4 });
        assert_eq!(o.num_observations(), 3, "a rejected append leaves the object unchanged");
        assert_eq!(o.append_observations(&[]).unwrap_err(), ObservationError::Empty);

        o.append_observations(&[Observation::new(12, 40), Observation::new(15, 41)]).unwrap();
        assert_eq!(o.num_observations(), 5);
        assert_eq!(o.last_time(), 15);
        assert_eq!(o.observed_state_at(12), Some(40));
    }

    #[test]
    fn segments_are_consecutive_pairs() {
        let o = obj();
        let segs: Vec<_> = o.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0.time, 0);
        assert_eq!(segs[0].1.time, 5);
        assert_eq!(segs[1].0.time, 5);
        assert_eq!(segs[1].1.time, 10);
    }
}
