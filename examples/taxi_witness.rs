//! The paper's running application: finding taxi drivers that may have
//! witnessed an incident.
//!
//! "PNN queries can be used [...] for search tasks like searching for taxi
//! drivers that might have observed a certain event like a car accident or a
//! criminal activity such as a bank robbery. The taxi drivers that have been
//! closest to the certain event location during the time the event might
//! happened are potential witnesses." (Section 1)
//!
//! Run with:
//! ```text
//! cargo run --release --example taxi_witness
//! ```

use pnnq::prelude::*;

fn main() {
    // Simulated city with GPS-tracked taxis (the T-Drive substitute).
    let road = RoadNetworkConfig { grid_width: 40, grid_height: 40, seed: 5, ..Default::default() };
    let taxis = TaxiWorkloadConfig {
        num_objects: 300,
        lifetime: 80,
        horizon: 300,
        observation_interval: 8,
        training_trips: 800,
        standing_fraction: 0.1,
        ..Default::default()
    };
    println!("simulating {} taxis on a {}x{} road network...", taxis.num_objects, road.grid_width, road.grid_height);
    let dataset = Dataset::taxi(&road, &taxis);

    // The "bank": a fixed location in the city centre. The robbery happened
    // somewhere during a 12-tic window.
    let bank = Point::new(0.52, 0.48);
    let robbery_window = 100u32..=111u32;
    let query = Query::at_point(bank, robbery_window.clone()).unwrap();
    println!(
        "incident at ({:.2}, {:.2}) during tics {}..={}",
        bank.x,
        bank.y,
        robbery_window.start(),
        robbery_window.end()
    );

    let engine = QueryEngine::new(&dataset.database, EngineConfig { num_samples: 2_000, seed: 1, ..Default::default() });

    // Potential witnesses of ANY part of the incident (P∃NNQ).
    let partial_witnesses = engine.pexists_nn(&query, 0.10).expect("query succeeds");
    println!(
        "\ntaxis with >= 10% probability of having been closest to the scene at some point: {}",
        partial_witnesses.results.len()
    );
    for r in partial_witnesses.results.iter().take(8) {
        println!("  taxi {:>4}: P∃NN = {:.3}", r.object, r.probability);
    }

    // Witnesses of the WHOLE incident (P∀NNQ) — these may have seen everything.
    let full_witnesses = engine.pforall_nn(&query, 0.10).expect("query succeeds");
    println!(
        "\ntaxis with >= 10% probability of having been closest during the whole incident: {}",
        full_witnesses.results.len()
    );
    for r in &full_witnesses.results {
        println!("  taxi {:>4}: P∀NN = {:.3}", r.object, r.probability);
    }

    // Which parts of the incident does each candidate witness cover (PCNNQ)?
    // Useful to "synchronize the evidence of multiple witnesses".
    let coverage = engine.pcnn(&query, 0.25).expect("query succeeds");
    println!("\nper-taxi covered sub-intervals (tau = 0.25):");
    for obj in coverage.results.iter().take(5) {
        let best = obj.sets.iter().max_by_key(|(ts, _)| ts.len()).unwrap();
        println!(
            "  taxi {:>4}: covers {} of {} tics, best set {:?} (P = {:.2})",
            obj.object,
            best.0.len(),
            query.len(),
            best.0,
            best.1
        );
    }

    println!(
        "\nfilter statistics: {} candidates, {} influence objects out of {} taxis",
        full_witnesses.stats.candidates,
        full_witnesses.stats.influencers,
        dataset.database.len()
    );
}
