//! Equivalence suite for the alias-table sampling kernel.
//!
//! The Monte-Carlo engine switched from inverse-CDF scans
//! ([`SparseDist::sample_with`]) to Walker/Vose alias draws
//! ([`AliasKernel::sample`]). The two consume one uniform `u ∈ [0, 1)` per
//! draw but map it to states differently, so individual draws are *not*
//! bit-identical; what must hold — and what this suite pins — is
//! **distributional equivalence**:
//!
//! 1. exactly, by construction: the Lebesgue measure of `u`-values the alias
//!    table maps to each state equals the row's probability (up to f64
//!    rounding of the `p·n/mass` scaling), for random rows and the edge
//!    shapes (empty / delta / single-entry / heavy-tail);
//! 2. empirically: on one shared seeded `u` stream, both samplers' frequency
//!    vectors pass a chi-square-style goodness-of-fit check against the row.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ust_markov::alias::AliasKernel;
use ust_markov::{SparseDist, StateId};

/// Builds a one-step kernel holding `row` for source state 0.
fn kernel_of(row: &SparseDist) -> AliasKernel {
    AliasKernel::from_steps([[(0u32, row)]])
}

/// A normalized distribution from raw `(state, weight)` pairs; `None` if the
/// weights carry too little mass to normalize.
fn dist_of(pairs: &[(StateId, f64)]) -> Option<SparseDist> {
    let mut d = SparseDist::from_pairs(pairs.iter().copied());
    d.normalize().then_some(d)
}

/// Asserts that for every support state the alias table's selection measure
/// equals the row probability to within `tol`, and that no foreign state has
/// positive measure.
fn assert_measure_matches(row: &SparseDist, tol: f64) {
    let kernel = kernel_of(row);
    let mut covered = 0.0;
    for (state, p) in row.iter() {
        let measure = kernel.table_probability(0, 0, state);
        assert!(
            (measure - p).abs() <= tol,
            "state {state}: alias measure {measure} vs row probability {p}"
        );
        covered += measure;
    }
    assert!((covered - 1.0).abs() <= tol, "total alias measure {covered} must be 1");
}

/// Draws `n` samples with each sampler from one shared `u` stream and
/// returns the per-state counts `(alias, inverse_cdf)` in support order.
fn paired_frequencies(row: &SparseDist, n: usize, seed: u64) -> Vec<(StateId, usize, usize)> {
    let kernel = kernel_of(row);
    let support: Vec<StateId> = row.support().collect();
    let mut counts: Vec<(StateId, usize, usize)> = support.iter().map(|&s| (s, 0, 0)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        let u = rng.gen::<f64>();
        let a = kernel.sample(0, 0, u).expect("non-empty row");
        let c = row.sample_with(u).expect("non-empty row");
        let ia = support.binary_search(&a).expect("alias draw inside the support");
        let ic = support.binary_search(&c).expect("CDF draw inside the support");
        counts[ia].1 += 1;
        counts[ic].2 += 1;
    }
    counts
}

/// Chi-square statistic of observed counts against the row's probabilities.
fn chi_square(row: &SparseDist, counts: impl Iterator<Item = (StateId, usize)>, n: usize) -> f64 {
    let mut stat = 0.0;
    for (state, observed) in counts {
        let expected = row.prob(state) * n as f64;
        if expected > 0.0 {
            let d = observed as f64 - expected;
            stat += d * d / expected;
        }
    }
    stat
}

// ---------------------------------------------------------------------------
// Edge shapes
// ---------------------------------------------------------------------------

#[test]
fn empty_row_has_no_kernel_row_and_no_cdf_sample() {
    let empty = SparseDist::new();
    assert_eq!(empty.sample_with(0.5), None);
    let kernel = AliasKernel::from_steps([[(0u32, &empty)]]);
    assert_eq!(kernel.sample(0, 0, 0.5), None, "empty row yields no draw");
}

#[test]
fn delta_and_single_entry_rows_agree_bit_for_bit() {
    // With one support state both samplers are forced onto it for every u,
    // so here (and only here) bit-identity holds trivially.
    for row in [SparseDist::delta(11), dist_of(&[(4, 0.35)]).unwrap()] {
        let kernel = kernel_of(&row);
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            assert_eq!(kernel.sample(0, 0, u), row.sample_with(u));
        }
    }
}

#[test]
fn heavy_tail_row_is_distributionally_equivalent() {
    // Geometric-style tail over 48 states: p(s) ∝ 0.82^s spans ~4 orders of
    // magnitude, the shape that stresses Vose's small/large pairing most.
    let row = dist_of(
        &(0..48u32).map(|s| (s * 3, 0.82f64.powi(s as i32))).collect::<Vec<_>>(),
    )
    .unwrap();
    assert_measure_matches(&row, 1e-12);
    let n = 200_000;
    let counts = paired_frequencies(&row, n, 0x5eed);
    // 99.9%-ile of chi-square with 47 degrees of freedom is ≈ 84; both
    // samplers must sit far under a generous 120.
    let stat_alias = chi_square(&row, counts.iter().map(|&(s, a, _)| (s, a)), n);
    let stat_cdf = chi_square(&row, counts.iter().map(|&(s, _, c)| (s, c)), n);
    assert!(stat_alias < 120.0, "alias chi-square {stat_alias}");
    assert!(stat_cdf < 120.0, "inverse-CDF chi-square {stat_cdf}");
}

#[test]
fn top_of_range_u_stays_in_support_for_both_samplers() {
    let row = dist_of(&[(1, 0.2), (2, 0.3), (3, 0.5)]).unwrap();
    let kernel = kernel_of(&row);
    let support: Vec<StateId> = row.support().collect();
    let max_u = 1.0 - f64::EPSILON / 2.0;
    for u in [0.0, f64::MIN_POSITIVE, 0.999_999, max_u] {
        for s in [kernel.sample(0, 0, u).unwrap(), row.sample_with(u).unwrap()] {
            assert!(support.contains(&s), "u={u} produced out-of-support state {s}");
        }
    }
}

// ---------------------------------------------------------------------------
// Random rows
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Construction faithfulness on random rows: the alias table's selection
    /// measure reproduces every probability of the normalized row.
    #[test]
    fn alias_measure_matches_row_probabilities(
        weights in proptest::collection::vec(1e-6f64..1.0, 1..40),
        stride in 1u32..9,
    ) {
        let pairs: Vec<(StateId, f64)> =
            weights.iter().enumerate().map(|(i, &w)| (i as u32 * stride, w)).collect();
        let row = dist_of(&pairs).expect("weights are bounded away from zero");
        assert_measure_matches(&row, 1e-9);
    }

    /// Frequency sanity on random rows: both samplers, fed the same seeded
    /// `u` stream, stay within a chi-square bound of the row.
    #[test]
    fn shared_u_stream_frequencies_match_the_row(
        weights in proptest::collection::vec(0.05f64..1.0, 2..12),
        seed in 0u64..1_000_000,
    ) {
        let pairs: Vec<(StateId, f64)> =
            weights.iter().enumerate().map(|(i, &w)| (i as u32, w)).collect();
        let row = dist_of(&pairs).expect("weights are bounded away from zero");
        let n = 20_000;
        let counts = paired_frequencies(&row, n, seed);
        // 99.99%-ile of chi-square with 11 degrees of freedom is ≈ 33.
        let stat_alias = chi_square(&row, counts.iter().map(|&(s, a, _)| (s, a)), n);
        let stat_cdf = chi_square(&row, counts.iter().map(|&(s, _, c)| (s, c)), n);
        prop_assert!(stat_alias < 45.0, "alias chi-square {}", stat_alias);
        prop_assert!(stat_cdf < 45.0, "inverse-CDF chi-square {}", stat_cdf);
    }
}
