//! Dense reference implementation of Algorithm 2.
//!
//! This module is a literal transcription of the paper's Algorithm 2
//! ("AdaptTransitionMatrices") using dense `|S| × |S|` matrices. It exists for
//! two purposes:
//!
//! * **Correctness oracle.** The production implementation in [`crate::adapt`]
//!   is sparse and touches only reachable states; tests cross-check it against
//!   this straightforward dense version on small state spaces.
//! * **Ablation baseline.** The `adaptation` Criterion bench compares the
//!   dense `O(|T| · |S|²)` formulation against the sparse one to quantify the
//!   benefit of exploiting transition sparsity (Section 5.2.3 derives the
//!   `O(|T| · |S|²)` bound for the dense case).

// The explicit `for i in 0..n` index loops below deliberately mirror the
// paper's matrix equations (X'[i][j] = M[j][i] * belief[j], ...); iterator
// rewrites would obscure the correspondence this module exists to provide.
#![allow(clippy::needless_range_loop)]

use crate::{StateId, Timestamp};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix { n, data: vec![0.0; n * n] }
    }

    /// Creates a matrix from a row-major slice of length `n * n`.
    ///
    /// # Panics
    /// Panics if the slice length is not `n * n`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "dense matrix needs n*n entries");
        DenseMatrix { n, data }
    }

    /// Dimension of the (square) matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Whether every row sums to one (or zero) within `1e-9`.
    pub fn is_row_stochastic(&self) -> bool {
        (0..self.n).all(|i| {
            let sum: f64 = (0..self.n).map(|j| self.get(i, j)).sum();
            sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9
        })
    }
}

/// Result of the dense forward–backward adaptation.
#[derive(Debug, Clone)]
pub struct DenseAdapted {
    /// First observed timestamp.
    pub start: Timestamp,
    /// Last observed timestamp.
    pub end: Timestamp,
    /// `posterior[k][s]` = P(o(start+k) = s | Θ).
    pub posterior: Vec<Vec<f64>>,
    /// `transitions[k]` is the a-posteriori matrix F(start+k):
    /// `transitions[k].get(i, j)` = P(o(start+k+1)=j | o(start+k)=i, Θ).
    pub transitions: Vec<DenseMatrix>,
}

/// Runs Algorithm 2 with dense matrices.
///
/// `observations` must be sorted by strictly increasing time. Returns `None`
/// if the observations contradict the model.
pub fn adapt_dense(
    matrix: &DenseMatrix,
    observations: &[(Timestamp, StateId)],
) -> Option<DenseAdapted> {
    let first = *observations.first()?;
    let last = *observations.last().expect("non-empty");
    let n = matrix.n();
    let start = first.0;
    let end = last.0;
    let horizon = (end - start) as usize;

    // Forward phase (Algorithm 2, lines 2-10): belief vector + reversed chain R(t).
    let mut belief = vec![0.0; n];
    belief[first.1 as usize] = 1.0;
    let mut reversed: Vec<DenseMatrix> = Vec::with_capacity(horizon);

    for step in 1..=horizon {
        let t = start + step as Timestamp;
        // X'(t) = M^T * diag(belief):  X'[i][j] = M[j][i] * belief[j].
        let mut x = DenseMatrix::zeros(n);
        for j in 0..n {
            if belief[j] == 0.0 {
                continue;
            }
            for i in 0..n {
                let v = matrix.get(j, i) * belief[j];
                if v != 0.0 {
                    x.set(i, j, v);
                }
            }
        }
        // Row sums give the new belief; normalized rows give R(t).
        let mut new_belief = vec![0.0; n];
        for i in 0..n {
            let sum: f64 = (0..n).map(|j| x.get(i, j)).sum();
            new_belief[i] = sum;
        }
        let mut r = DenseMatrix::zeros(n);
        for i in 0..n {
            if new_belief[i] > 0.0 {
                for j in 0..n {
                    r.set(i, j, x.get(i, j) / new_belief[i]);
                }
            }
        }
        reversed.push(r);
        let total: f64 = new_belief.iter().sum();
        if total <= 0.0 {
            return None;
        }
        for b in &mut new_belief {
            *b /= total;
        }
        if let Some(&(_, theta)) = observations.iter().find(|&&(ot, _)| ot == t) {
            if new_belief[theta as usize] <= 0.0 {
                return None;
            }
            belief = vec![0.0; n];
            belief[theta as usize] = 1.0;
        } else {
            belief = new_belief;
        }
    }

    // Backward phase (lines 12-16).
    let mut posterior = vec![vec![0.0; n]; horizon + 1];
    posterior[horizon][last.1 as usize] = 1.0;
    let mut transitions: Vec<DenseMatrix> = (0..horizon).map(|_| DenseMatrix::zeros(n)).collect();

    for step in (0..horizon).rev() {
        let next = posterior[step + 1].clone();
        let r = &reversed[step];
        // X'(t) = R(t+1)^T * diag(next): X'[i][j] = R[j][i] * next[j].
        let mut x = DenseMatrix::zeros(n);
        for j in 0..n {
            if next[j] == 0.0 {
                continue;
            }
            for i in 0..n {
                let v = r.get(j, i) * next[j];
                if v != 0.0 {
                    x.set(i, j, v);
                }
            }
        }
        let mut cur = vec![0.0; n];
        for i in 0..n {
            cur[i] = (0..n).map(|j| x.get(i, j)).sum();
        }
        let mut f = DenseMatrix::zeros(n);
        for i in 0..n {
            if cur[i] > 0.0 {
                for j in 0..n {
                    f.set(i, j, x.get(i, j) / cur[i]);
                }
            }
        }
        transitions[step] = f;
        let total: f64 = cur.iter().sum();
        if total <= 0.0 {
            return None;
        }
        for c in &mut cur {
            *c /= total;
        }
        posterior[step] = cur;
    }

    Some(DenseAdapted { start, end, posterior, transitions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::AdaptedModel;
    use crate::model::MarkovModel;
    use crate::sparse::CsrMatrix;

    /// A 5-state ring with asymmetric probabilities.
    fn ring_dense() -> DenseMatrix {
        let n = 5;
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            m.set(i, (i + 1) % n, 0.6);
            m.set(i, i, 0.3);
            m.set(i, (i + n - 1) % n, 0.1);
        }
        m
    }

    fn ring_sparse() -> CsrMatrix {
        let d = ring_dense();
        CsrMatrix::from_rows(
            (0..d.n())
                .map(|i| {
                    (0..d.n())
                        .filter(|&j| d.get(i, j) > 0.0)
                        .map(|j| (j as StateId, d.get(i, j)))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn dense_matrix_basics() {
        let mut m = DenseMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 0.5);
        m.set(1, 1, 0.5);
        m.set(2, 2, 1.0);
        assert_eq!(m.get(0, 1), 1.0);
        // All-zero rows count as (unreachable) sinks and are accepted.
        assert!(DenseMatrix::zeros(2).is_row_stochastic());
        m.set(0, 0, 0.0);
        assert!(m.is_row_stochastic());
    }

    #[test]
    fn dense_adaptation_detects_contradictions() {
        // Deterministic forward chain 0 -> 1 -> 2 ... cannot be at state 0 at t=1.
        let mut m = DenseMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(1, 2, 1.0);
        m.set(2, 2, 1.0);
        assert!(adapt_dense(&m, &[(0, 0), (1, 0)]).is_none());
        assert!(adapt_dense(&m, &[(0, 0), (1, 1)]).is_some());
    }

    #[test]
    fn sparse_and_dense_adaptation_agree() {
        let dense = ring_dense();
        let sparse = MarkovModel::homogeneous(ring_sparse());
        let obs = vec![(0u32, 0u32), (4, 3), (7, 1)];
        let da = adapt_dense(&dense, &obs).expect("consistent observations");
        let sa = AdaptedModel::build(&sparse, &obs).expect("consistent observations");
        assert!(sa.check_invariants().is_ok());
        for t in 0..=7u32 {
            let post = sa.posterior_at(t).unwrap();
            for s in 0..5u32 {
                let d = da.posterior[t as usize][s as usize];
                assert!(
                    (post.prob(s) - d).abs() < 1e-9,
                    "posterior mismatch at t={t}, s={s}: sparse {} dense {d}",
                    post.prob(s)
                );
            }
        }
        for t in 0..7u32 {
            for i in 0..5u32 {
                for j in 0..5u32 {
                    let d = da.transitions[t as usize].get(i as usize, j as usize);
                    let s = sa.transition_row(t, i).map(|r| r.prob(j)).unwrap_or(0.0);
                    assert!(
                        (s - d).abs() < 1e-9,
                        "transition mismatch at t={t}, {i}->{j}: sparse {s} dense {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn adapted_transitions_are_stochastic_on_reachable_rows() {
        let dense = ring_dense();
        let obs = vec![(2u32, 1u32), (6, 4)];
        let da = adapt_dense(&dense, &obs).unwrap();
        for (k, f) in da.transitions.iter().enumerate() {
            for i in 0..5 {
                let sum: f64 = (0..5).map(|j| f.get(i, j)).sum();
                assert!(
                    sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9,
                    "row {i} of F({k}) sums to {sum}"
                );
            }
        }
    }
}
