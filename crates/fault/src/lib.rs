//! # ust-fault
//!
//! Deterministic, zero-cost-when-disabled fault injection for the pnnq
//! workspace.
//!
//! Production code marks the places where the outside world can fail — an
//! I/O read, a decode step, an adaptation worker — with a named *fault
//! point*:
//!
//! ```ignore
//! if let Some(message) = ust_fault::inject("persist.read.file") {
//!     return Err(StoreError::Io { message });
//! }
//! ```
//!
//! With no [`FaultPlan`] armed, [`inject`] is a single relaxed atomic load
//! and a branch — cheap enough for hot loops and exactly what the release
//! binaries run. Chaos tests arm a plan describing which points fire, in
//! which occurrence window, and the guard returned by [`FaultPlan::arm`]
//! disarms everything on drop (including on test panic, so one failing chaos
//! test cannot poison the next).
//!
//! ## Naming convention
//!
//! Fault points are named `<crate-area>.<operation>.<failure>`, e.g.
//! `persist.read.interrupted` or `index.build.shard`. Every crate that hosts
//! points exports its full list as `pub const FAULT_POINTS: &[&str]` so the
//! chaos sweep can enumerate them without a registry server; [`hits`] /
//! [`fired`] make a sweep assert that each point was actually reached, which
//! catches registrations that drifted away from the code they guard.
//!
//! ## Determinism
//!
//! A plan is a pure function of its construction: `with(point, skip, times)`
//! fires on occurrences `skip .. skip + times` of `point`, counted per armed
//! plan. [`FaultPlan::seeded`] derives a small plan from a seed using the
//! same xorshift64* mixer as the store-fuzzer's mutator, so a failing chaos
//! seed reproduces byte-for-byte.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Fast-path switch: `false` means no plan is armed anywhere in the process
/// and [`inject`] returns `None` after one relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed plan plus its per-point occurrence counters. `None` while
/// disarmed. Only touched on the slow path (a plan is armed) and by the
/// arm/disarm transitions themselves.
static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

/// One `(point, skip, times)` arm of a plan: occurrences
/// `skip .. skip + times` of `point` fire, all others pass through.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Arm {
    point: String,
    skip: u64,
    times: u64,
}

/// Counter pair for one fault point while a plan is armed.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    hits: u64,
    fired: u64,
}

#[derive(Debug)]
struct PlanState {
    arms: Vec<Arm>,
    counters: BTreeMap<String, Counters>,
}

/// Locks `STATE`, recovering from a poisoned mutex: a panic *at* a fault
/// point (that is the whole purpose of [`panic_point`]) must not wedge the
/// registry for the rest of the process.
fn lock_state() -> MutexGuard<'static, Option<PlanState>> {
    STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A deterministic description of which fault points fire, and when.
///
/// Build one with [`FaultPlan::new`] + [`FaultPlan::with`] (or the
/// shorthands [`FaultPlan::once`] / [`FaultPlan::seeded`]), then call
/// [`FaultPlan::arm`]. Plans are inert until armed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    arms: Vec<Arm>,
}

impl FaultPlan {
    /// An empty plan: arming it enables counting ([`hits`]) but fires
    /// nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan in which the first occurrence of `point` fires, once.
    pub fn once(point: &str) -> Self {
        FaultPlan::new().with(point, 0, 1)
    }

    /// Adds an arm: occurrences `skip .. skip + times` of `point` fire
    /// (occurrences are counted from zero, per armed plan).
    #[must_use]
    pub fn with(mut self, point: &str, skip: u64, times: u64) -> Self {
        self.arms.push(Arm { point: point.to_string(), skip, times });
        self
    }

    /// Derives a small plan from `seed` over `catalog` using the store
    /// fuzzer's xorshift64* lineage: one to three arms, each firing one or
    /// two early occurrences of a catalog point. The same `(seed, catalog)`
    /// always yields the same plan.
    pub fn seeded(seed: u64, catalog: &[&str]) -> Self {
        let mut rng = SplitMix(seed);
        let mut plan = FaultPlan::new();
        if catalog.is_empty() {
            return plan;
        }
        let arms = 1 + (rng.next() % 3) as usize;
        for _ in 0..arms {
            let point = catalog[(rng.next() % catalog.len() as u64) as usize];
            let skip = rng.next() % 3;
            let times = 1 + rng.next() % 2;
            plan = plan.with(point, skip, times);
        }
        plan
    }

    /// The distinct point names this plan can fire, in arm order.
    pub fn points(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(self.arms.len());
        for arm in &self.arms {
            if !out.contains(&arm.point.as_str()) {
                out.push(&arm.point);
            }
        }
        out
    }

    /// Arms the plan process-wide and returns a guard that disarms it on
    /// drop. Arming replaces any previously armed plan (last wins); chaos
    /// tests serialize on their own mutex, so in practice exactly one plan
    /// is live at a time.
    pub fn arm(self) -> ArmedFaults {
        let mut state = lock_state();
        *state = Some(PlanState { arms: self.arms, counters: BTreeMap::new() });
        ARMED.store(true, Ordering::SeqCst);
        ArmedFaults { _private: () }
    }
}

/// Guard returned by [`FaultPlan::arm`]; dropping it disarms fault injection
/// process-wide and clears all counters.
#[derive(Debug)]
pub struct ArmedFaults {
    _private: (),
}

impl Drop for ArmedFaults {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock_state() = None;
    }
}

/// The per-point poll every fault site runs.
///
/// Returns `Some(message)` when the armed plan says this occurrence of
/// `name` fails; the caller maps the message into its own typed error. With
/// no plan armed this is one relaxed atomic load.
#[inline]
pub fn inject(name: &str) -> Option<String> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    inject_slow(name)
}

#[cold]
fn inject_slow(name: &str) -> Option<String> {
    let mut state = lock_state();
    let plan = state.as_mut()?;
    let counters = plan.counters.entry(name.to_string()).or_default();
    let occurrence = counters.hits;
    counters.hits += 1;
    let fires = plan
        .arms
        .iter()
        .any(|arm| arm.point == name && occurrence >= arm.skip && occurrence < arm.skip + arm.times);
    if fires {
        counters.fired += 1;
        Some(format!("injected fault: {name} (occurrence {occurrence})"))
    } else {
        None
    }
}

/// A fault site whose only possible failure is a crash: panics with the
/// injected message when the armed plan fires `name`, otherwise does
/// nothing. This is how chaos tests drive *real* worker panics through the
/// panic-safety machinery (claim release, scoped-thread propagation) that
/// the model checker only proves abstractly.
#[inline]
pub fn panic_point(name: &str) {
    if let Some(message) = inject(name) {
        panic!("{message}");
    }
}

/// How many times `name` was polled (via [`inject`] / [`panic_point`] /
/// [`fault_point!`]) since the current plan was armed. Zero while disarmed —
/// the fast path deliberately does not count.
pub fn hits(name: &str) -> u64 {
    lock_state()
        .as_ref()
        .and_then(|p| p.counters.get(name))
        .map_or(0, |c| c.hits)
}

/// How many times `name` actually fired since the current plan was armed.
pub fn fired(name: &str) -> u64 {
    lock_state()
        .as_ref()
        .and_then(|p| p.counters.get(name))
        .map_or(0, |c| c.fired)
}

/// Marks a fallible fault site: evaluates to `Err(map(message))` when the
/// armed plan fires `$name`, otherwise to `Ok(())`, so call sites can write
/// `fault_point!("persist.read.section", |m| StoreError::Io { message: m })?;`.
#[macro_export]
macro_rules! fault_point {
    ($name:expr, $map:expr) => {
        match $crate::inject($name) {
            Some(message) => Err(($map)(message)),
            None => Ok(()),
        }
    };
}

/// The xorshift64* mixer of the store fuzzer's `Mutator` (PR 6 lineage),
/// kept bit-compatible so seeds reproduce across both harnesses.
#[derive(Debug)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        // A zero state would be a fixed point; remap it like the fuzzer does.
        if self.0 == 0 {
            self.0 = 0x9E37_79B9_7F4A_7C15;
        }
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chaos state is process-global; every test that arms a plan holds this.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_injects_nothing_and_counts_nothing() {
        let _guard = serial();
        assert_eq!(inject("never.registered"), None);
        assert_eq!(hits("never.registered"), 0);
        assert_eq!(fired("never.registered"), 0);
    }

    #[test]
    fn once_fires_exactly_the_first_occurrence() {
        let _guard = serial();
        let armed = FaultPlan::once("a.b.c").arm();
        assert!(inject("a.b.c").is_some());
        assert_eq!(inject("a.b.c"), None);
        assert_eq!(inject("other"), None);
        assert_eq!(hits("a.b.c"), 2);
        assert_eq!(fired("a.b.c"), 1);
        assert_eq!(hits("other"), 1);
        drop(armed);
        assert_eq!(inject("a.b.c"), None);
        assert_eq!(hits("a.b.c"), 0);
    }

    #[test]
    fn skip_window_fires_the_requested_occurrences() {
        let _guard = serial();
        let _armed = FaultPlan::new().with("p", 2, 2).arm();
        let outcomes: Vec<bool> = (0..6).map(|_| inject("p").is_some()).collect();
        assert_eq!(outcomes, vec![false, false, true, true, false, false]);
        assert_eq!(fired("p"), 2);
    }

    #[test]
    fn panic_point_panics_only_when_armed() {
        let _guard = serial();
        panic_point("quiet.when.disarmed");
        let _armed = FaultPlan::once("boom").arm();
        let caught = std::panic::catch_unwind(|| panic_point("boom"));
        assert!(caught.is_err());
        // The registry survives the panic: the mutex is not wedged.
        assert_eq!(fired("boom"), 1);
        panic_point("boom"); // occurrence 1: no longer fires
    }

    #[test]
    fn fault_point_macro_maps_into_the_callers_error() {
        let _guard = serial();
        let _armed = FaultPlan::once("macro.site").arm();
        let fail: Result<(), String> = fault_point!("macro.site", |m: String| m);
        assert!(fail.unwrap_err().contains("macro.site"));
        let pass: Result<(), String> = fault_point!("macro.site", |m: String| m);
        assert!(pass.is_ok());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_drawn_from_the_catalog() {
        let _guard = serial();
        let catalog = ["x.read.file", "x.read.interrupted", "x.decode.section"];
        let a = FaultPlan::seeded(42, &catalog);
        let b = FaultPlan::seeded(42, &catalog);
        assert_eq!(a, b);
        assert!(!a.points().is_empty());
        for point in a.points() {
            assert!(catalog.contains(&point));
        }
        let c = FaultPlan::seeded(43, &catalog);
        // Different seeds *may* collide, but these two are known to differ.
        assert_ne!(a, c);
        assert_eq!(FaultPlan::seeded(7, &[]), FaultPlan::new());
    }

    #[test]
    fn zero_seed_is_remapped_like_the_fuzzer_mutator() {
        let _guard = serial();
        let zero = FaultPlan::seeded(0, &["p.q.r"]);
        let remapped = FaultPlan::seeded(0x9E37_79B9_7F4A_7C15 | 1, &["p.q.r"]);
        // Not necessarily equal (the remap happens pre-mix), but zero must
        // not degenerate into an empty or stuck plan.
        assert!(!zero.points().is_empty());
        assert!(!remapped.points().is_empty());
    }
}
