//! Integration test: Example 1 / Figure 1 of the paper.
//!
//! The paper's worked example: two uncertain objects over the state space
//! {s1, s2, s3, s4} (ordered by increasing distance from the query q) and the
//! query interval T = {1, 2, 3}.
//!
//! * o1 has three possible trajectories: (s2,s1,s1) with probability 0.5,
//!   (s2,s3,s1) with 0.25 and (s2,s3,s3) with 0.25.
//! * o2 has two possible trajectories: (s3,s2,s2) and (s3,s4,s4), each 0.5.
//!
//! The paper states: P∃NN(o2, q, D, T) = 0.25, P∀NN(o1, q, D, T) = 0.75, and
//! PCNNQ(q, D, T, 0.1) returns o1 with {1,2,3} and o2 with {2,3}.
//!
//! The test reproduces the possible worlds with the workspace's own Markov and
//! NN machinery (chains → enumerated worlds → `NnTimeProfile`) and checks all
//! published numbers, including through the PCNN subset probabilities.

use ust_markov::{CsrMatrix, MarkovModel, StateId, Timestamp};
use ust_spatial::{Point, StateSpace};
use ust_trajectory::{NnTimeProfile, TimeMask, Trajectory};

/// s1..s4 at increasing distance from the query located at the origin.
fn space() -> StateSpace {
    StateSpace::from_points(vec![
        Point::new(1.0, 0.0), // s1
        Point::new(2.0, 0.0), // s2
        Point::new(3.0, 0.0), // s3
        Point::new(4.0, 0.0), // s4
    ])
}

/// o1's chain: s2 -> {s1, s3}, s3 -> {s1, s3}, s1/s4 absorbing (each split 0.5).
fn o1_chain() -> MarkovModel {
    MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
        vec![(0, 1.0)],
        vec![(0, 0.5), (2, 0.5)],
        vec![(0, 0.5), (2, 0.5)],
        vec![(3, 1.0)],
    ]))
}

/// o2's chain: s3 -> {s2, s4}, s2/s4 absorbing (each split 0.5).
fn o2_chain() -> MarkovModel {
    MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
        vec![(0, 1.0)],
        vec![(1, 1.0)],
        vec![(1, 0.5), (3, 0.5)],
        vec![(3, 1.0)],
    ]))
}

/// Enumerates all trajectories of a chain starting at `start_state` at time 1
/// over T = {1, 2, 3}, with their probabilities.
fn enumerate(model: &MarkovModel, start_state: StateId) -> Vec<(Trajectory, f64)> {
    let mut worlds: Vec<(Vec<StateId>, f64)> = vec![(vec![start_state], 1.0)];
    for t in 1..3u32 {
        let mut next = Vec::new();
        for (states, p) in &worlds {
            let cur = *states.last().unwrap();
            for (s, w) in model.matrix_at(t).row_iter(cur) {
                let mut ns = states.clone();
                ns.push(s);
                next.push((ns, p * w));
            }
        }
        worlds = next;
    }
    worlds.into_iter().map(|(states, p)| (Trajectory::new(1, states), p)).collect()
}

struct Figure1 {
    space: StateSpace,
    o1_worlds: Vec<(Trajectory, f64)>,
    o2_worlds: Vec<(Trajectory, f64)>,
}

impl Figure1 {
    fn new() -> Self {
        Figure1 {
            space: space(),
            o1_worlds: enumerate(&o1_chain(), 1),
            o2_worlds: enumerate(&o2_chain(), 2),
        }
    }

    /// Sums the probabilities of the possible worlds in which `predicate`
    /// holds, where the predicate receives the NN time profile of the world.
    fn probability_of(&self, times: &[Timestamp], predicate: impl Fn(&NnTimeProfile) -> bool) -> f64 {
        let q = Point::new(0.0, 0.0);
        let mut total = 0.0;
        for (tr1, p1) in &self.o1_worlds {
            for (tr2, p2) in &self.o2_worlds {
                let world = vec![(1u32, tr1), (2u32, tr2)];
                let profile = NnTimeProfile::compute(&world, &self.space, times, |_| q);
                if predicate(&profile) {
                    total += p1 * p2;
                }
            }
        }
        total
    }
}

#[test]
fn object_trajectory_distributions_match_figure_1() {
    let fig = Figure1::new();
    assert_eq!(fig.o1_worlds.len(), 3, "o1 has three possible trajectories");
    assert_eq!(fig.o2_worlds.len(), 2, "o2 has two possible trajectories");
    let probability_of = |worlds: &[(Trajectory, f64)], states: &[StateId]| {
        worlds
            .iter()
            .find(|(tr, _)| tr.states() == states)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    };
    assert!((probability_of(&fig.o1_worlds, &[1, 0, 0]) - 0.5).abs() < 1e-12);
    assert!((probability_of(&fig.o1_worlds, &[1, 2, 0]) - 0.25).abs() < 1e-12);
    assert!((probability_of(&fig.o1_worlds, &[1, 2, 2]) - 0.25).abs() < 1e-12);
    assert!((probability_of(&fig.o2_worlds, &[2, 1, 1]) - 0.5).abs() < 1e-12);
    assert!((probability_of(&fig.o2_worlds, &[2, 3, 3]) - 0.5).abs() < 1e-12);
}

#[test]
fn exists_nn_probability_of_o2_is_a_quarter() {
    let fig = Figure1::new();
    let p = fig.probability_of(&[1, 2, 3], |profile| profile.is_exists_nn(2));
    assert!((p - 0.25).abs() < 1e-12, "paper: P∃NN(o2) = 0.25, got {p}");
}

#[test]
fn forall_nn_probability_of_o1_is_three_quarters() {
    let fig = Figure1::new();
    let p = fig.probability_of(&[1, 2, 3], |profile| profile.is_forall_nn(1));
    assert!((p - 0.75).abs() < 1e-12, "paper: P∀NN(o1) = 0.75, got {p}");
}

#[test]
fn forall_and_exists_are_complementary_for_two_objects() {
    // With exactly two objects and no ties, o1 fails to be the ∀-NN exactly
    // when o2 is the NN at some timestamp.
    let fig = Figure1::new();
    let p_forall_o1 = fig.probability_of(&[1, 2, 3], |p| p.is_forall_nn(1));
    let p_exists_o2 = fig.probability_of(&[1, 2, 3], |p| p.is_exists_nn(2));
    assert!((p_forall_o1 + p_exists_o2 - 1.0).abs() < 1e-12);
}

#[test]
fn pcnn_result_of_the_paper_example() {
    let fig = Figure1::new();
    let times = vec![1, 2, 3];
    // o1 qualifies for the full interval at tau = 0.1 (probability 0.75).
    let full = TimeMask::from_indices(3, [0, 1, 2]);
    let p_o1_full = fig.probability_of(&times, |p| p.covers_subset(1, &full));
    assert!(p_o1_full >= 0.1);
    assert!((p_o1_full - 0.75).abs() < 1e-12);
    // o2 qualifies for {2, 3} (probability 0.125 >= 0.1) ...
    let t23 = TimeMask::from_indices(3, [1, 2]);
    let p_o2_23 = fig.probability_of(&times, |p| p.covers_subset(2, &t23));
    assert!((p_o2_23 - 0.125).abs() < 1e-12, "P∀NN(o2, {{2,3}}) = 0.125, got {p_o2_23}");
    assert!(p_o2_23 >= 0.1);
    // ... but not for the full interval (o1 is strictly closer at t=1).
    let p_o2_full = fig.probability_of(&times, |p| p.covers_subset(2, &full));
    assert!(p_o2_full < 0.1);
    assert!(p_o2_full.abs() < 1e-12);
}

#[test]
fn anti_monotonicity_holds_on_the_example() {
    let fig = Figure1::new();
    let times = vec![1, 2, 3];
    for object in [1u32, 2u32] {
        let singles: Vec<f64> = (0..3)
            .map(|i| {
                let m = TimeMask::from_indices(3, [i]);
                fig.probability_of(&times, |p| p.covers_subset(object, &m))
            })
            .collect();
        let full = TimeMask::from_indices(3, [0, 1, 2]);
        let p_full = fig.probability_of(&times, |p| p.covers_subset(object, &full));
        for p_single in singles {
            assert!(p_single >= p_full - 1e-12);
        }
    }
}
