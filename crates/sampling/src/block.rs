//! Block (structure-of-arrays) possible-world sampling.
//!
//! The query engine's Monte-Carlo loop evaluates every sampled world at every
//! query timestamp. Sampling worlds one at a time stores each world as an
//! array-of-structures (one [`ust_trajectory::Trajectory`] per object), so
//! the per-timestamp evaluation strides across trajectories and the PCNN
//! [`WorldSet`](https://en.wikipedia.org/wiki/Bit_array) columns are written
//! one bit at a time.
//!
//! A [`WorldBlock`] instead samples a *block* of worlds (typically
//! [`WORLD_BLOCK_WIDTH`] = 64, one per bit of a `u64` word) into a
//! structure-of-arrays arena: for each object and each covered timestamp, the
//! states of all worlds in the block sit contiguously. The engine then scans
//! `states_at(object, t)` — one cache-friendly 64-wide row — to build a whole
//! `u64` of world-hit bits at once and feed it to the world set word-wise.
//!
//! **Bit-identity.** `fill` draws worlds in world-major order (world 0's
//! objects in sampler order, then world 1's, …) and walks each object's chain
//! with the same one-`u`-per-transition discipline as
//! [`PosteriorSampler::sample_prefix_into`](crate::posterior::PosteriorSampler::sample_prefix_into).
//! Filling a block therefore consumes the RNG exactly like the same number of
//! consecutive [`WorldSampler::sample_world_prefix_into`] calls, and every
//! stored state is bit-identical to the per-world path — only the memory
//! layout changes. The tests pin this.

use crate::world::WorldSampler;
use rand::Rng;
use std::sync::Arc;
use ust_markov::{AdaptedModel, Timestamp};
use ust_spatial::StateId;
use ust_trajectory::ObjectId;

/// Worlds per block: one per bit of a `u64`, matching the word width of the
/// PCNN world set and the engine's budget-probe interval.
pub const WORLD_BLOCK_WIDTH: usize = 64;

/// Per-object layout and model of a block: the arena window of one object.
#[derive(Debug, Clone)]
struct BlockObject {
    id: ObjectId,
    model: Arc<AdaptedModel>,
    /// First covered timestamp (= the model's first observation time).
    start: Timestamp,
    /// Last *materialised* timestamp: `max(start, min(end, horizon))`. Chain
    /// steps past it burn their RNG draw without storing a state.
    prefix_end: Timestamp,
    /// Start of this object's rows in the state arena.
    offset: usize,
}

/// A structure-of-arrays block of sampled possible worlds.
///
/// Layout: object-major, then timestamp-major, then world-minor —
/// `states[offset(obj) + k · capacity + w]` holds the state of world `w` for
/// object `obj` at its `k`-th covered timestamp, so for a fixed `(obj, t)`
/// the worlds of the block are one contiguous slice.
#[derive(Debug, Clone)]
pub struct WorldBlock {
    capacity: usize,
    count: usize,
    horizon: Timestamp,
    objects: Vec<BlockObject>,
    states: Vec<StateId>,
}

impl WorldBlock {
    /// Builds an (empty) block over the sampler's objects, materialising
    /// states up to `horizon` (the engine passes its last query timestamp)
    /// and holding up to `capacity` worlds per fill.
    pub fn for_sampler(sampler: &WorldSampler, horizon: Timestamp, capacity: usize) -> Self {
        let mut objects = Vec::with_capacity(sampler.len());
        let mut offset = 0usize;
        for (id, model) in sampler.models() {
            let start = model.start();
            let keep_until = horizon.min(model.end());
            let kept_steps = keep_until.saturating_sub(start) as usize;
            objects.push(BlockObject {
                id: *id,
                model: Arc::clone(model),
                start,
                prefix_end: start + kept_steps as Timestamp,
                offset,
            });
            offset += (kept_steps + 1) * capacity;
        }
        WorldBlock { capacity, count: 0, horizon, objects, states: vec![0; offset] }
    }

    /// Samples `count ≤ capacity` fresh worlds into the block, replacing its
    /// previous contents. Worlds are drawn in world-major order with one RNG
    /// draw per chain step, so the RNG stream — and every stored state — is
    /// bit-identical to `count` consecutive
    /// [`WorldSampler::sample_world_prefix_into`] calls at this horizon.
    pub fn fill<R: Rng>(&mut self, rng: &mut R, count: usize) {
        assert!(count <= self.capacity, "block fill of {count} exceeds capacity {}", self.capacity);
        self.count = count;
        let capacity = self.capacity;
        let horizon = self.horizon;
        let states = &mut self.states;
        for w in 0..count {
            for obj in &self.objects {
                let start = obj.start;
                let end = obj.model.end();
                let keep_until = horizon.min(end);
                let first = obj.model.observations()[0].1;
                states[obj.offset + w] = first;
                let mut current = first;
                for t in start..end {
                    let u = rng.gen::<f64>();
                    if t >= keep_until {
                        // Draw consumed, state not materialised — same
                        // prefix discipline as the per-world sampler.
                        continue;
                    }
                    let next = obj
                        .model
                        .sample_transition(t, current, u)
                        .expect("reachable states always have an adapted transition row");
                    states[obj.offset + (t + 1 - start) as usize * capacity + w] = next;
                    current = next;
                }
            }
        }
    }

    /// Number of worlds currently held (set by the last [`fill`](Self::fill)).
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Maximum number of worlds per fill.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of objects per world.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// The object id at block index `obj` (sampler order).
    pub fn object_id(&self, obj: usize) -> Option<ObjectId> {
        self.objects.get(obj).map(|o| o.id)
    }

    /// The states of all held worlds for object index `obj` at timestamp `t`:
    /// a contiguous slice of length [`count`](Self::count), world `w` at
    /// position `w`. `None` if `t` is outside the object's materialised
    /// interval `[start, prefix_end]` (exactly when the per-world trajectory
    /// would not cover `t` either).
    #[inline]
    pub fn states_at(&self, obj: usize, t: Timestamp) -> Option<&[StateId]> {
        let o = self.objects.get(obj)?;
        if t < o.start || t > o.prefix_end {
            return None;
        }
        let base = o.offset + (t - o.start) as usize * self.capacity;
        Some(&self.states[base..base + self.count])
    }

    /// The state of one world for object index `obj` at timestamp `t`.
    pub fn state(&self, obj: usize, t: Timestamp, world: usize) -> Option<StateId> {
        self.states_at(obj, t).and_then(|row| row.get(world).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::PossibleWorld;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ust_markov::{CsrMatrix, MarkovModel};

    fn sampler() -> WorldSampler {
        let model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(1, 0.5), (3, 0.5)],
        ]));
        let o1 = Arc::new(AdaptedModel::build(&model, &[(1, 1)]).unwrap());
        let o2 = Arc::new(AdaptedModel::build(&model, &[(0, 2), (4, 0)]).unwrap());
        let o3 = Arc::new(AdaptedModel::build(&model, &[(2, 3)]).unwrap());
        WorldSampler::from_models(vec![(1, o1), (2, o2), (3, o3)])
    }

    #[test]
    fn block_fill_is_bit_identical_to_per_world_prefix_sampling() {
        let sampler = sampler();
        for horizon in [0u32, 2, 4, 100] {
            let mut rng_block = StdRng::seed_from_u64(42);
            let mut rng_world = StdRng::seed_from_u64(42);
            let mut block = WorldBlock::for_sampler(&sampler, horizon, WORLD_BLOCK_WIDTH);
            let mut world = PossibleWorld::empty();
            // Two full blocks and one partial block.
            for count in [WORLD_BLOCK_WIDTH, WORLD_BLOCK_WIDTH, 13] {
                block.fill(&mut rng_block, count);
                assert_eq!(block.count(), count);
                for w in 0..count {
                    sampler.sample_world_prefix_into(&mut rng_world, &mut world, horizon);
                    for (obj, (id, tr)) in world.trajectories().iter().enumerate() {
                        assert_eq!(block.object_id(obj), Some(*id));
                        for t in tr.start()..=tr.end() {
                            assert_eq!(
                                block.state(obj, t, w),
                                tr.state_at(t),
                                "horizon={horizon} w={w} obj={obj} t={t}"
                            );
                        }
                        // And nothing outside the trajectory's coverage.
                        assert_eq!(block.states_at(obj, tr.end() + 1), None);
                        assert_eq!(
                            block.states_at(obj, tr.start().wrapping_sub(1)),
                            None,
                            "before start"
                        );
                    }
                }
            }
            // Both paths consumed the same number of RNG draws.
            use rand::Rng as _;
            assert_eq!(rng_block.gen::<u64>(), rng_world.gen::<u64>(), "horizon={horizon}");
        }
    }

    #[test]
    fn states_at_rows_are_world_contiguous() {
        let sampler = sampler();
        let mut rng = StdRng::seed_from_u64(7);
        let mut block = WorldBlock::for_sampler(&sampler, 4, WORLD_BLOCK_WIDTH);
        block.fill(&mut rng, 64);
        let row = block.states_at(1, 2).expect("object 2 covers t=2");
        assert_eq!(row.len(), 64);
        for (w, &s) in row.iter().enumerate() {
            assert_eq!(block.state(1, 2, w), Some(s));
        }
    }

    #[test]
    fn refilling_replaces_previous_contents() {
        let sampler = sampler();
        let mut rng = StdRng::seed_from_u64(9);
        let mut block = WorldBlock::for_sampler(&sampler, 4, WORLD_BLOCK_WIDTH);
        block.fill(&mut rng, 64);
        block.fill(&mut rng, 5);
        assert_eq!(block.count(), 5);
        assert_eq!(block.states_at(0, 1).unwrap().len(), 5);
        assert_eq!(block.state(0, 1, 5), None, "world index past count");
    }

    #[test]
    fn empty_sampler_produces_an_empty_block() {
        let block = WorldBlock::for_sampler(&WorldSampler::new(), 10, WORLD_BLOCK_WIDTH);
        assert_eq!(block.num_objects(), 0);
        assert_eq!(block.states_at(0, 0), None);
        assert_eq!(block.object_id(0), None);
    }
}
