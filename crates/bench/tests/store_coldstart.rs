//! Cold-start determinism for the on-disk store: an engine reconstructed
//! from a `.ustore` file must answer the full efficiency workload with a
//! digest byte-identical to the engine that built the dataset from scratch —
//! at every TS-phase worker count. This is the end-to-end counterpart of the
//! byte-level round-trip tests in `crates/persist/tests/roundtrip.rs`.

use std::path::PathBuf;

use ust_bench::args::RunScale;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::measure_efficiency_on;
use ust_core::{EngineConfig, EngineStore, QueryEngine};

fn quick_params() -> ScaleParams {
    let mut params = ScaleParams::for_scale(RunScale::Quick);
    params.num_queries = 3;
    params
}

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ust_store_coldstart_{}_{tag}.ustore", std::process::id()))
}

#[test]
fn cold_started_engine_answers_byte_identically() {
    let params = quick_params();
    let dataset = build_synthetic(&params, 400, params.branching, 40, 0);
    let queries = build_queries(&dataset, &params, 0);

    for threads in [1usize, 2] {
        let config = EngineConfig {
            num_samples: params.num_samples,
            seed: 0,
            adaptation_threads: threads,
            index_build_threads: 1,
            ..Default::default()
        };
        let fresh = QueryEngine::new(&dataset.database, config.clone());
        let fresh_m = measure_efficiency_on(&fresh, &queries);
        assert_ne!(fresh_m.digest, 0);

        let path = store_path(&format!("t{threads}"));
        let written = fresh.save_store(&path).expect("save succeeds");
        assert!(written.bytes > 0);
        assert!(written.sections >= 2, "database and tree sections expected");

        let store = EngineStore::load(&path).expect("load succeeds");
        std::fs::remove_file(&path).ok();
        assert_eq!(store.stats().objects, dataset.database.len());
        assert!(store.index().is_some(), "the tree must survive the trip");

        let cold = store.engine(config);
        let cold_m = measure_efficiency_on(&cold, &queries);
        assert_eq!(
            fresh_m.digest, cold_m.digest,
            "cold-started engine diverged at {threads} TS threads"
        );
        assert_eq!(fresh_m.candidates.to_bits(), cold_m.candidates.to_bits());
        assert_eq!(fresh_m.influencers.to_bits(), cold_m.influencers.to_bits());
        eprintln!(
            "[store_coldstart] threads={threads} store={}B load={:?}",
            store.stats().bytes,
            store.stats().load_time
        );
    }
}

#[test]
fn cold_started_engine_without_index_still_matches() {
    // With `use_index: false` the store's tree section is decoded but
    // ignored; the cold engine must take the same index-free path as a fresh
    // index-free engine and produce the same result set.
    let params = quick_params();
    let dataset = build_synthetic(&params, 300, params.branching, 25, 1);
    let queries = build_queries(&dataset, &params, 1);
    let config = EngineConfig {
        num_samples: params.num_samples,
        seed: 1,
        adaptation_threads: 1,
        index_build_threads: 1,
        use_index: false,
        ..Default::default()
    };
    let fresh = QueryEngine::new(&dataset.database, config.clone());
    let fresh_m = measure_efficiency_on(&fresh, &queries);

    // Save from an indexed engine so the store genuinely carries a TREE
    // section that the cold start then has to skip.
    let indexed = QueryEngine::new(&dataset.database, EngineConfig { use_index: true, ..config.clone() });
    let path = store_path("noindex");
    let written = indexed.save_store(&path).expect("save succeeds");
    assert!(written.sections >= 2, "the store must carry the tree being skipped");
    let store = EngineStore::load(&path).expect("load succeeds");
    std::fs::remove_file(&path).ok();

    let cold = store.engine(config);
    let cold_m = measure_efficiency_on(&cold, &queries);
    assert_eq!(fresh_m.digest, cold_m.digest, "index-free cold start diverged");
}
