//! The `--wal` / `--wal-recover` incremental-ingest check of fig09.
//!
//! The `--store` round trip ([`crate::storecheck`]) proves a *full* engine
//! state survives the disk; this module proves the *incremental* path does
//! too. At every sweep point the `--wal` half holds back the tail
//! observation of every sufficiently long trajectory, saves a store built
//! from the shortened database, WAL-appends the held-back batch through
//! [`EngineStore::append_batch`], and insists the minted engine's workload
//! digest is bit-identical to a from-scratch engine over the full data. The
//! store and its WAL are deliberately left on disk: a second process running
//! `--wal-recover` loads them cold — replaying the log — and must reproduce
//! the same digests, which is exactly the crash-recovery contract of
//! DESIGN.md §10 exercised across a real process boundary.

use crate::efficiency::measure_efficiency_on;
use crate::errors::exit_failure;
use crate::report::ExperimentReport;
use crate::storecheck::store_point_path;
use std::path::Path;
use ust_core::{EngineConfig, EngineStore, QueryEngine};
use ust_generator::QueryWorkload;
use ust_trajectory::{ObjectId, Observation, TrajectoryDatabase, UncertainObject};

/// A database split for the ingest check: the shortened database plus the
/// held-back batch that grows it back to the original.
#[derive(Debug)]
pub struct Holdback {
    /// The original database with the held-back observations removed.
    pub pre_database: TrajectoryDatabase,
    /// One append entry per shortened object: its last observation.
    pub batch: Vec<(ObjectId, Vec<Observation>)>,
}

/// Splits `db` into a shortened copy plus the append batch restoring it:
/// every object with at least three observations gives up its last one.
/// Objects shorter than that are kept whole (an object needs two
/// observations to span an interval worth querying).
pub fn split_holdback(db: &TrajectoryDatabase) -> Holdback {
    let mut objects = Vec::with_capacity(db.len());
    let mut batch: Vec<(ObjectId, Vec<Observation>)> = Vec::new();
    for o in db.objects() {
        let obs = o.observations();
        if obs.len() >= 3 {
            let (head, tail) = obs.split_at(obs.len() - 1);
            objects.push(
                UncertainObject::new(o.id(), head.to_vec())
                    .expect("a prefix of a valid observation sequence is valid"),
            );
            batch.push((o.id(), tail.to_vec()));
        } else {
            objects.push(o.clone());
        }
    }
    let pre_database = TrajectoryDatabase::with_objects(
        db.state_space().clone(),
        db.shared_model().clone(),
        objects,
    );
    Holdback { pre_database, batch }
}

/// The `--wal` half: saves a store of `holdback.pre_database`, WAL-appends
/// `holdback.batch`, re-measures the workload on the grown store's engine
/// and verifies its digest equals `fresh_digest` (the from-scratch engine
/// over the full data). Writes `wal_bytes_<point>` and
/// `wal_observations_<point>` into the report meta and leaves the store and
/// its WAL on disk for a later `--wal-recover` process. Any failure — write,
/// append, or a digest mismatch — is fatal via [`exit_failure`].
#[allow(clippy::too_many_arguments)]
pub fn wal_ingest_check(
    binary: &str,
    report: &mut ExperimentReport,
    base: &str,
    point: &str,
    config: EngineConfig,
    workload: &QueryWorkload,
    fresh_digest: u64,
    holdback: &Holdback,
) {
    let path = store_point_path(base, point);
    if holdback.batch.is_empty() {
        exit_failure(
            binary,
            &format!("incremental ingest at {path}"),
            &"no ingested object has enough observations to hold one back; \
              --wal needs trajectories of at least three observations",
        );
    }
    // A store (or WAL) left behind by an unrelated earlier run would make
    // replay disagree with the batch; start every point from a clean slate.
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(ust_persist::wal::wal_path(Path::new(&path)));

    let pre_engine = QueryEngine::new(&holdback.pre_database, config.clone());
    if let Err(e) = pre_engine.save_store(&path) {
        exit_failure(binary, &format!("cannot write store {path}"), &e);
    }
    let mut store = match EngineStore::load(&path) {
        Ok(store) => store,
        Err(e) => exit_failure(binary, &format!("cannot load store {path}"), &e),
    };
    let appended = match store.append_batch(&holdback.batch) {
        Ok(stats) => stats,
        Err(e) => exit_failure(binary, &format!("cannot append to store {path}"), &e),
    };
    let grown = store.engine(config);
    let replay = measure_efficiency_on(&grown, workload);
    if replay.digest != fresh_digest {
        exit_failure(
            binary,
            &format!("incremental ingest at {path}"),
            &"appended-store result digest differs from the from-scratch engine",
        );
    }
    eprintln!(
        "[{binary}] wal {path}.wal: appended {} observations ({} bytes logged), digest verified",
        appended.observations, appended.wal_bytes,
    );
    report.set_meta(format!("wal_bytes_{point}"), appended.wal_bytes as f64);
    report.set_meta(format!("wal_observations_{point}"), appended.observations as f64);
}

/// The `--wal-recover` half: loads the store a previous `--wal` process left
/// behind — which replays its WAL — and verifies the recovered engine's
/// workload digest equals `fresh_digest`. A store with nothing to replay is
/// fatal: this check exists to prove cross-process WAL recovery, so it
/// refuses to silently pass on a bare container. Writes
/// `wal_replayed_frames_<point>` and `wal_torn_bytes_<point>` into the
/// report meta.
pub fn wal_recover_check(
    binary: &str,
    report: &mut ExperimentReport,
    base: &str,
    point: &str,
    config: EngineConfig,
    workload: &QueryWorkload,
    fresh_digest: u64,
) {
    let path = store_point_path(base, point);
    let store = match EngineStore::load(&path) {
        Ok(store) => store,
        Err(e) => exit_failure(
            binary,
            &format!("cannot load store {path} (run --wal first to create it)"),
            &e,
        ),
    };
    let wal = *store.wal_stats();
    if wal.frames == 0 {
        exit_failure(
            binary,
            &format!("recovery at {path}"),
            &"the store has no WAL frames to replay; run --wal first",
        );
    }
    let recovered = store.engine(config);
    let replay = measure_efficiency_on(&recovered, workload);
    if replay.digest != fresh_digest {
        exit_failure(
            binary,
            &format!("recovery at {path}"),
            &"recovered result digest differs from the from-scratch engine",
        );
    }
    eprintln!(
        "[{binary}] wal {path}.wal: replayed {} frames / {} observations, digest verified",
        wal.frames, wal.observations,
    );
    report.set_meta(format!("wal_replayed_frames_{point}"), wal.frames as f64);
    report.set_meta(format!("wal_torn_bytes_{point}"), wal.torn_bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunScale;
    use crate::datasets::{build_queries, build_synthetic, ScaleParams};
    use crate::efficiency::measure_efficiency;

    #[test]
    fn holdback_splits_tails_and_restores_through_append() {
        let mut params = ScaleParams::for_scale(RunScale::Quick);
        params.num_queries = 2;
        let ds = build_synthetic(&params, 400, params.branching, 40, 7);
        let holdback = split_holdback(&ds.database);
        assert!(!holdback.batch.is_empty(), "the synthetic objects are long enough");
        assert_eq!(holdback.pre_database.len(), ds.database.len(), "no object disappears");
        for (id, obs) in &holdback.batch {
            assert_eq!(obs.len(), 1, "exactly the last observation is held back");
            let pre = holdback.pre_database.object(*id).unwrap();
            let full = ds.database.object(*id).unwrap();
            assert_eq!(pre.num_observations() + 1, full.num_observations());
            assert_eq!(obs[0], *full.observations().last().unwrap());
        }

        // Applying the batch in memory restores the original database: the
        // digest over a query workload agrees with the full build.
        let mut grown = split_holdback(&ds.database).pre_database;
        for (id, obs) in &holdback.batch {
            grown.append_observations(*id, obs).expect("the holdback batch applies");
        }
        let queries = build_queries(&ds, &params, 7);
        let full = measure_efficiency(&ds, &queries, 30, 7, 1);
        let regrown_ds = ust_generator::Dataset {
            network: ds.network.clone(),
            database: grown,
            ground_truth: Default::default(),
        };
        let regrown = measure_efficiency(&regrown_ds, &queries, 30, 7, 1);
        assert_eq!(full.digest, regrown.digest, "holdback + append is lossless");
    }
}
