//! Sort-tile-recursive (STR) bulk loading.
//!
//! Building the UST-tree over a static trajectory database inserts one
//! rectangle per observation segment per object — up to hundreds of thousands
//! of boxes. STR packing [Leutenegger et al., ICDE 1997] produces a compact,
//! well-clustered tree in `O(n log n)` and avoids the churn of one-by-one
//! insertion.

use super::node::{Child, Entry, Node};
use super::RTree;
use crate::rect::Rect;

/// Builds an R-tree by STR packing.
pub(super) fn bulk_load<const D: usize, T>(
    items: Vec<(Rect<D>, T)>,
    max_entries: usize,
) -> RTree<D, T> {
    assert!(max_entries >= 4, "R*-tree nodes need a capacity of at least 4");
    let min_entries = (max_entries * 2 / 5).max(2);
    let len = items.len();
    if len == 0 {
        return RTree { root: Node::Leaf(Vec::new()), len: 0, max_entries, min_entries };
    }

    // Pack leaf entries into leaves.
    let entries: Vec<Entry<D, T>> =
        items.into_iter().map(|(rect, item)| Entry { rect, item }).collect();
    let leaf_groups = str_pack(entries, max_entries, |e| e.rect);
    let mut level: Vec<Child<D, T>> = leaf_groups
        .into_iter()
        .map(|group| {
            let node = Node::Leaf(group);
            Child { rect: node.mbr(), node: Box::new(node) }
        })
        .collect();

    // Pack upwards until a single root remains.
    while level.len() > 1 {
        let groups = str_pack(level, max_entries, |c| c.rect);
        level = groups
            .into_iter()
            .map(|group| {
                let node = Node::Internal(group);
                Child { rect: node.mbr(), node: Box::new(node) }
            })
            .collect();
    }

    let root = *level.pop().expect("at least one node").node;
    RTree { root, len, max_entries, min_entries }
}

/// Groups `items` into chunks of at most `capacity` elements using the STR
/// tiling order: sort by center of axis 0, slice into vertical slabs, sort
/// each slab by center of axis 1, and so on through the remaining axes.
fn str_pack<const D: usize, E>(
    items: Vec<E>,
    capacity: usize,
    rect_of: impl Fn(&E) -> Rect<D> + Copy,
) -> Vec<Vec<E>> {
    let mut out = Vec::new();
    str_pack_rec(items, capacity, 0, rect_of, &mut out);
    out
}

fn str_pack_rec<const D: usize, E>(
    mut items: Vec<E>,
    capacity: usize,
    axis: usize,
    rect_of: impl Fn(&E) -> Rect<D> + Copy,
    out: &mut Vec<Vec<E>>,
) {
    if items.len() <= capacity {
        if !items.is_empty() {
            out.push(items);
        }
        return;
    }
    if axis + 1 >= D {
        // Last axis: sort and chunk.
        items.sort_by(|a, b| rect_of(a).center()[axis].total_cmp(&rect_of(b).center()[axis]));
        let mut iter = items.into_iter().peekable();
        while iter.peek().is_some() {
            out.push(iter.by_ref().take(capacity).collect());
        }
        return;
    }

    // Number of leaf pages needed and slab count along this axis:
    // P = ceil(n / capacity), slabs = ceil(P^(1/(D - axis))).
    let n = items.len();
    let pages = n.div_ceil(capacity);
    let remaining_axes = (D - axis) as f64;
    let slabs = (pages as f64).powf(1.0 / remaining_axes).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));

    items.sort_by(|a, b| rect_of(a).center()[axis].total_cmp(&rect_of(b).center()[axis]));
    let mut iter = items.into_iter().peekable();
    while iter.peek().is_some() {
        let slab: Vec<E> = iter.by_ref().take(slab_size).collect();
        str_pack_rec(slab, capacity, axis + 1, rect_of, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect2;

    #[test]
    fn str_pack_respects_capacity_and_loses_nothing() {
        let items: Vec<Rect2> = (0..137)
            .map(|i| {
                let x = (i % 17) as f64;
                let y = (i / 17) as f64;
                Rect::new([x, y], [x + 0.5, y + 0.5])
            })
            .collect();
        let groups = str_pack(items.clone(), 10, |r| *r);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, items.len());
        assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= 10));
    }

    #[test]
    fn bulk_loaded_tree_has_expected_height() {
        let items: Vec<(Rect2, usize)> = (0..1000)
            .map(|i| {
                let x = (i % 50) as f64;
                let y = (i / 50) as f64;
                (Rect::new([x, y], [x + 0.5, y + 0.5]), i)
            })
            .collect();
        let tree = bulk_load(items, 25);
        assert_eq!(tree.len(), 1000);
        // 1000 items at fanout 25: 40 leaves, 2 internal nodes, 1 root => height 3.
        assert!(tree.height() <= 3, "height {}", tree.height());
        assert!(tree.check_invariants().is_ok());
    }
}
