//! # ust-generator
//!
//! Workload generators reproducing the experimental setup of Section 7 of the
//! paper.
//!
//! * [`grid`] — a uniform spatial hash used to find the neighbors of a state
//!   within the connection radius.
//! * [`network`] — spatial networks (state space + edges), shortest paths and
//!   the derivation of a-priori Markov models (distance-weighted or learned
//!   from trips).
//! * [`synthetic`] — the *artificial data* generator: `N` states uniformly in
//!   `[0,1]²`, edges between states closer than `r = sqrt(b / (N π))`,
//!   transition probabilities inversely proportional to distance.
//! * [`objects`] — uncertain object generation: shortest-path motion, the lag
//!   parameter `v`, observations every `i` tics and the held-back ground
//!   truth used for effectiveness experiments.
//! * [`road_network`] — the *simulated taxi data* substitute for the paper's
//!   map-matched Beijing T-Drive dataset (see DESIGN.md §4 for the
//!   substitution rationale): a jittered city grid, a transition matrix
//!   learned from training trips, center-biased trips and standing taxis.
//! * [`tdrive`] — real-data ingestion: a streaming loader for T-Drive-format
//!   CSV (`id,datetime,lon,lat`) with typed line-numbered errors, plus the
//!   deterministic fixture writer rendering workloads back to that format.
//! * [`mod@map_match`] — snapping raw GPS fixes onto a network: lon/lat
//!   projection, nearest-state snap within a radius, tic discretisation,
//!   shortest-path gap interpolation and model learning from matched traces.
//! * [`workload`] — datasets (database + ground truth) and query generators.

pub mod grid;
pub mod map_match;
pub mod network;
pub mod objects;
pub mod road_network;
pub mod synthetic;
pub mod tdrive;
pub mod workload;

pub use map_match::{
    learn_model_from_matches, map_match, GeoFrame, MapMatchConfig, MapMatchOutcome, MatchStats,
    MatchedObject,
};
pub use network::{Network, PathFinder};
pub use objects::{GeneratedObject, ObjectWorkloadConfig};
pub use road_network::{RoadNetworkConfig, TaxiWorkloadConfig};
pub use synthetic::SyntheticNetworkConfig;
pub use tdrive::{LoadError, LoadErrorKind, LoadOutcome, RawFix};
pub use workload::{Dataset, QueryWorkload, QueryWorkloadConfig};

pub use ust_markov::Timestamp;
pub use ust_spatial::StateId;
pub use ust_trajectory::ObjectId;

/// The fault points this crate registers with [`ust_fault`] (see the chaos
/// suite at the workspace root): a failed T-Drive file open, a hard
/// mid-stream read error, and a synthetic signal interruption feeding the
/// bounded retry loop of the line reader.
pub const FAULT_POINTS: &[&str] =
    &["tdrive.open", "tdrive.read.line", "tdrive.read.interrupted"];
