//! Geo-social network scenario: "for a historical event, users might want to
//! find their nearest friends during this event, e.g. to share pictures and
//! experiences" (Section 1).
//!
//! The query is a *trajectory* (the user's own check-in track during a city
//! festival), not a static point; the database holds the sparse check-ins of
//! the user's friends. The example answers:
//!
//! * which friend was most likely nearby during the whole event (P∀NNQ),
//! * which friends were nearby at least once (P∃NNQ) under 3-NN semantics,
//! * during which parts of the event each friend was nearby (PCNNQ).
//!
//! Run with:
//! ```text
//! cargo run --release --example geosocial_friends
//! ```

use pnnq::prelude::*;

fn main() {
    // A city-like network and a database of friends with sparse check-ins.
    let network_cfg = SyntheticNetworkConfig { num_states: 3_000, branching_factor: 8.0, seed: 21 };
    let object_cfg = ObjectWorkloadConfig {
        num_objects: 40,
        lifetime: 90,
        horizon: 120,
        observation_interval: 15, // sparse check-ins
        lag: 0.4,
        standing_fraction: 0.05,
        seed: 22,
    };
    let dataset = Dataset::synthetic(&network_cfg, &object_cfg, 1.0);
    println!(
        "{} friends with {} check-ins in total",
        dataset.database.len(),
        dataset.database.total_observations()
    );

    // The querying user's own (certain) track during the event: walk along the
    // ground-truth trajectory of one generated object, offset slightly.
    let me = dataset.ground_truth.values().next().expect("dataset is non-empty").clone();
    let event_start = me.start() + 10;
    let event_end = (event_start + 19).min(me.end());
    let space = dataset.database.state_space().clone();
    let track: Vec<(Timestamp, Point)> = (event_start..=event_end)
        .map(|t| {
            let p = me.position_at(t, &space).expect("track covers the event");
            (t, Point::new(p.x + 0.002, p.y - 0.001))
        })
        .collect();
    let query = Query::with_trajectory(track).unwrap();
    println!("event window: tics {}..={} ({} timestamps)", event_start, event_end, query.len());

    let engine = QueryEngine::new(&dataset.database, EngineConfig { num_samples: 2_000, seed: 3, ..Default::default() });

    let forall = engine.pforall_nn(&query, 0.05).expect("query succeeds");
    println!("\nfriends likely closest during the WHOLE event (P∀NN >= 0.05):");
    for r in forall.results.iter().take(5) {
        println!("  friend {:>3}: P∀NN = {:.3}", r.object, r.probability);
    }
    if forall.results.is_empty() {
        println!("  (nobody stayed closest the whole time)");
    }

    // Under 3-NN semantics: who was among the three closest friends at least once?
    let exists3 = engine.pexists_knn(&query, 3, 0.25).expect("query succeeds");
    println!("\nfriends among the 3 closest at least once (P∃3NN >= 0.25):");
    for r in exists3.results.iter().take(8) {
        println!("  friend {:>3}: P∃3NN = {:.3}", r.object, r.probability);
    }

    let pcnn = engine.pcnn(&query, 0.3).expect("query succeeds");
    println!("\nwhen was each friend nearby (PCNN, tau = 0.3)?");
    for obj in pcnn.results.iter().take(5) {
        let best = obj.sets.iter().max_by_key(|(ts, _)| ts.len()).unwrap();
        println!(
            "  friend {:>3}: longest qualifying set covers {} tics (P = {:.2})",
            obj.object,
            best.0.len(),
            best.1
        );
    }
    println!(
        "\nfilter statistics: |C(q)| = {}, |I(q)| = {} of {} friends",
        forall.stats.candidates,
        forall.stats.influencers,
        dataset.database.len()
    );
}
