//! Figure 8: P∀NNQ / P∃NNQ efficiency while varying the number of objects
//! `|D|` on synthetic data.
//!
//! Paper sweep: |D| ∈ {1k, 10k, 20k}. Default harness sweep: a proportional
//! reduction. Reported series: TS/FA/EX CPU times and |C(q)|/|I(q)|.

use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::measure_efficiency;
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig08_vary_objects");
    let params = ScaleParams::for_scale(settings.scale);
    // The paper's TS series is a *serial* adaptation time, so this figure
    // defaults to one TS worker for comparability across machines; parallel
    // adaptation is opt-in via `--threads N` (`0` = available parallelism),
    // recorded in the report meta. fig06 reports the serial/parallel split
    // explicitly.
    let threads = settings.adaptation_threads.map_or(1, resolve_adaptation_threads);
    let sweep: Vec<usize> = match settings.scale {
        RunScale::Quick => vec![50, 100, 200],
        RunScale::Default => vec![250, 1_000, 4_000],
        RunScale::Paper => vec![1_000, 10_000, 20_000],
    };
    let mut report = ExperimentReport::new(
        "figure08_vary_objects",
        "Efficiency of P∀NNQ/P∃NNQ while varying the number of objects |D| on synthetic data \
         (paper: Figure 8; series TS/FA/EX in seconds, |C(q)|/|I(q)| in objects)",
    )
    .with_meta("adaptation_threads", threads as f64);
    for d in sweep {
        eprintln!("[fig08] |D| = {d}");
        let dataset = build_synthetic(&params, params.num_states, params.branching, d, settings.seed);
        let queries = build_queries(&dataset, &params, settings.seed);
        let m = measure_efficiency(&dataset, &queries, params.num_samples, settings.seed, threads);
        report.push(
            Row::new(format!("|D|={d}"))
                .with("TS", m.ts_seconds)
                .with("FA", m.fa_seconds)
                .with("EX", m.ex_seconds)
                .with("|C(q)|", m.candidates)
                .with("|I(q)|", m.influencers),
        );
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
