//! The Apriori-style lattice of Algorithm 1 (PCτNN), mined vertically.
//!
//! The PCNN query asks, per object, for the timestamp subsets `T_i ⊆ T` on
//! which the object is a ∀-nearest-neighbor with probability at least `τ`.
//! The number of subsets is exponential, but the probability
//! `P∀NN(o, q, T_i)` is *anti-monotone*: if `T_j ⊆ T_i` then
//! `P∀NN(o, q, T_i) ≤ P∀NN(o, q, T_j)`. Algorithm 1 therefore explores the
//! subset lattice level by level exactly like the Apriori frequent-itemset
//! algorithm \[27\]: a `k`-subset is only generated (and validated) if all of
//! its `(k-1)`-subsets qualified.
//!
//! ## Vertical representation
//!
//! The validation step — estimating `P∀NN(o, q, T_k)` — uses the Monte-Carlo
//! machinery. The *horizontal* layout stores, per sampled world, the set of
//! query timestamps at which the object is a nearest neighbor (a
//! [`TimeMask`]); validating one candidate set then costs a containment test
//! against **every** world mask, i.e. `O(worlds · |T|/64)` per candidate.
//! At small `τ` the lattice approaches the full subset lattice of `T`
//! (Section 4.3, Figure 14) and that cost dominates the query.
//!
//! [`vertical_timesets`] instead mines the Eclat-style *vertical* layout
//! ([`WorldSet`]): one bitset **over worlds** per timestamp. The worlds
//! supporting a candidate set are the intersection of its timestamps'
//! world-sets, and — crucially — the intersection of its two Apriori parents'
//! world-sets. Each frontier node carries its intersected world-set, so
//! extending a `k`-set costs one AND + popcount over `worlds/64` words, and
//! the support is compared against the integer threshold
//! [`support_threshold`]`(τ, worlds)` instead of a per-candidate `f64`
//! division. Candidates are generated once each from prefix classes (no
//! quadratic join, no hash-set dedup), and the maximal-set filter works level
//! by level instead of all-pairs.
//!
//! The horizontal implementation is retained as [`apriori_timesets`]: it is
//! the executable reference the randomized equivalence tests compare the
//! vertical miner against, bit for bit.

use crate::govern::{BudgetGauge, QueryPhase, Verdict, MINING_CHECK_INTERVAL};
use crate::query::QueryError;
use rustc_hash::FxHashSet;
use ust_trajectory::{iter_set_bits, TimeMask};

/// Configuration of the PCNN lattice expansion.
#[derive(Debug, Clone, Copy)]
pub struct PcnnConfig {
    /// Probability threshold `τ`.
    pub tau: f64,
    /// If set, only *maximal* qualifying sets are reported, i.e. sets that are
    /// not a subset of another qualifying set (the redundancy-reducing variant
    /// of Definition 3).
    pub maximal_only: bool,
}

impl PcnnConfig {
    /// Standard configuration: report all qualifying sets.
    pub fn new(tau: f64) -> Self {
        PcnnConfig { tau, maximal_only: false }
    }

    /// Report only maximal qualifying sets.
    pub fn maximal(tau: f64) -> Self {
        PcnnConfig { tau, maximal_only: true }
    }
}

/// Result of the lattice expansion for a single object.
#[derive(Debug, Clone)]
pub struct PcnnResult {
    /// Qualifying timestamp sets, each as sorted indices into the query's
    /// timestamp list, together with their estimated probability.
    pub sets: Vec<(Vec<usize>, f64)>,
    /// Number of candidate sets whose probability was evaluated (the number
    /// of validation steps of Algorithm 1).
    pub candidate_sets_evaluated: usize,
    /// Deepest reached lattice level, i.e. the size of the largest qualifying
    /// set (`0` if nothing qualified). Computed before the maximality filter.
    pub max_level: usize,
    /// Largest number of qualifying sets on any single lattice level — the
    /// peak width of the Apriori frontier. Computed before the maximality
    /// filter.
    pub frontier_peak: usize,
    /// Whether a budget checkpoint stopped the expansion before the frontier
    /// emptied ([`vertical_timesets_governed`]). Everything in
    /// [`sets`](Self::sets) is still exactly validated — a degraded result
    /// is an under-approximation, never a wrong set. Always `false` from the
    /// ungoverned entry points.
    pub degraded: bool,
}

/// The transposed ("vertical") world-membership of one candidate object: for
/// every query timestamp, the bitset of sampled worlds in which the object is
/// a nearest neighbor at that timestamp.
///
/// Columns are stored contiguously as `Vec<u64>` words (column `t` occupies
/// `words[t*stride .. (t+1)*stride]`, bit `w` of a column = world `w`). The
/// query engine fills the columns directly while iterating worlds — no
/// per-world mask is materialised — and the PCNN miner intersects them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldSet {
    num_times: usize,
    num_worlds: usize,
    stride: usize,
    words: Vec<u64>,
}

impl WorldSet {
    /// Creates an all-zero world-set for `num_times` columns over
    /// `num_worlds` worlds.
    pub fn new(num_times: usize, num_worlds: usize) -> Self {
        let stride = num_worlds.div_ceil(64);
        WorldSet { num_times, num_worlds, stride, words: vec![0; num_times * stride] }
    }

    /// Number of timestamp columns.
    #[inline]
    pub fn num_times(&self) -> usize {
        self.num_times
    }

    /// Number of worlds each column ranges over.
    #[inline]
    pub fn num_worlds(&self) -> usize {
        self.num_worlds
    }

    /// Shrinks the logical world count to `n` after a degraded sampling run:
    /// the sampler stopped early, so bits `n..` of every column were never
    /// set, and supports as well as probability denominators must range over
    /// the worlds actually sampled. The backing words keep their allocated
    /// stride; only the logical count changes.
    ///
    /// # Panics
    /// Panics if `n` exceeds the current world count (a world-set cannot
    /// grow).
    pub fn truncate_worlds(&mut self, n: usize) {
        assert!(n <= self.num_worlds, "cannot grow a world-set ({n} > {})", self.num_worlds);
        self.num_worlds = n;
    }

    /// Marks the object as a nearest neighbor at timestamp index `time` in
    /// world `world`.
    ///
    /// # Panics
    /// Panics if `time` or `world` is out of range.
    #[inline]
    pub fn record(&mut self, time: usize, world: usize) {
        assert!(time < self.num_times, "time index {time} out of range ({})", self.num_times);
        assert!(world < self.num_worlds, "world index {world} out of range ({})", self.num_worlds);
        self.words[time * self.stride + world / 64] |= 1u64 << (world % 64);
    }

    /// ORs a whole word of world bits into the column of timestamp index
    /// `time`: bit `b` of `bits` marks world `word_index * 64 + b`. This is
    /// the block-sampling feed — the engine builds one `u64` of hits per
    /// candidate per timestamp per 64-world block and lands it with a single
    /// OR instead of 64 [`record`](Self::record) calls.
    ///
    /// # Panics
    /// Panics if `time` or `word_index` is out of range, or if `bits` sets a
    /// bit at or beyond the world count.
    #[inline]
    pub fn or_word(&mut self, time: usize, word_index: usize, bits: u64) {
        assert!(time < self.num_times, "time index {time} out of range ({})", self.num_times);
        assert!(word_index < self.stride, "word index {word_index} out of range ({})", self.stride);
        let valid = self.num_worlds.saturating_sub(word_index * 64);
        if valid < 64 {
            assert_eq!(bits >> valid, 0, "bits beyond the world count ({}) must be zero", self.num_worlds);
        }
        self.words[time * self.stride + word_index] |= bits;
    }

    /// Marks every timestamp set in `mask` for the given world (the bridge
    /// from the horizontal per-world representation).
    ///
    /// # Panics
    /// Panics if the mask length differs from the number of columns or
    /// `world` is out of range.
    pub fn record_mask(&mut self, world: usize, mask: &TimeMask) {
        assert_eq!(mask.len(), self.num_times, "mask length must equal the column count");
        for t in mask.iter_ones() {
            self.record(t, world);
        }
    }

    /// Builds the vertical representation from horizontal per-world masks
    /// (used by tests and the reference-path comparisons).
    pub fn from_world_masks(num_times: usize, masks: &[TimeMask]) -> Self {
        let mut ws = WorldSet::new(num_times, masks.len());
        for (w, mask) in masks.iter().enumerate() {
            ws.record_mask(w, mask);
        }
        ws
    }

    /// Converts back to horizontal per-world masks (the reference layout).
    pub fn world_masks(&self) -> Vec<TimeMask> {
        let mut masks = vec![TimeMask::new(self.num_times); self.num_worlds];
        for t in 0..self.num_times {
            for w in iter_set_bits(self.column(t)) {
                masks[w].set(t);
            }
        }
        masks
    }

    /// The world bitset of one timestamp column.
    #[inline]
    pub fn column(&self, time: usize) -> &[u64] {
        &self.words[time * self.stride..(time + 1) * self.stride]
    }

    /// Number of worlds in which the object is a NN at timestamp `time` (the
    /// level-1 support of the lattice).
    pub fn column_support(&self, time: usize) -> usize {
        self.column(time).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of worlds in which the object is a NN at **every** timestamp —
    /// the ∀-event count of Definition 2, one AND-reduction over the columns.
    /// With zero columns every world qualifies vacuously.
    pub fn forall_support(&self) -> usize {
        if self.num_times == 0 {
            return self.num_worlds;
        }
        let mut acc = self.column(0).to_vec();
        for t in 1..self.num_times {
            for (a, b) in acc.iter_mut().zip(self.column(t)) {
                *a &= b;
            }
        }
        acc.iter().map(|w| w.count_ones() as usize).sum()
    }

}

/// The smallest integer support `h` such that `h / worlds ≥ τ` under the
/// *same `f64` semantics* the reference path uses for its per-candidate
/// `hits as f64 / worlds as f64 ≥ τ` comparison — so the vertical miner can
/// compare supports as integers and still accept exactly the same sets.
///
/// With zero worlds the reference estimates every probability as `0.0`, so
/// the threshold is `0` iff `0.0 ≥ τ` and unattainable otherwise. A `τ`
/// outside `[0, 1]` (rejected by the engine, but reachable through direct
/// calls) yields `0` (below) or `worlds + 1` (above): everything / nothing.
pub fn support_threshold(tau: f64, worlds: usize) -> usize {
    if tau.is_nan() {
        // The reference's `p >= NaN` is false for every candidate.
        return worlds + 1;
    }
    if worlds == 0 {
        return if 0.0 >= tau { 0 } else { 1 };
    }
    let w = worlds as f64;
    let mut h = (tau * w).ceil().clamp(0.0, w) as usize;
    // `ceil` on the f64 product can land one off from the comparison the
    // reference path performs; nudge to the exact crossover.
    while h > 0 && ((h - 1) as f64 / w) >= tau {
        h -= 1;
    }
    while h <= worlds && ((h as f64 / w) < tau) {
        h += 1;
    }
    h
}

/// One frontier node of the vertical miner: the candidate timestamp set as a
/// `u64` bit mask (bit `t` = timestamp index `t`) plus the offset of its
/// world bitset inside the level's shared word arena.
struct Node {
    set: u64,
    offset: usize,
    support: usize,
}

/// The mask with the highest set bit of `m` cleared — the Apriori "prefix"
/// (all but the last element of the sorted set) in mask form.
#[inline]
fn clear_highest(m: u64) -> u64 {
    debug_assert!(m != 0);
    m & !(1u64 << (63 - m.leading_zeros()))
}

/// Sorted indices of a set mask.
fn mask_to_indices(mask: u64) -> Vec<usize> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    let mut rest = mask;
    while rest != 0 {
        out.push(rest.trailing_zeros() as usize);
        rest &= rest - 1;
    }
    out
}

/// Runs Algorithm 1 for one object over the vertical representation.
///
/// Accepts exactly the sets [`apriori_timesets`] accepts (same candidate
/// generation, same pruning, same probabilities, same order) but validates
/// each candidate with one AND + popcount over its parents' world-sets
/// instead of a containment scan over all per-world masks. Frontier sets are
/// `u64` bit masks and each level's world bitsets live in one shared arena,
/// so the per-candidate bookkeeping is branch-light and allocation-free.
///
/// Timestamp sets beyond 64 elements cannot be packed into the mask; since a
/// 2⁶⁴-node lattice is unreachable anyway, inputs with more than 64 columns
/// take the (equivalent) reference path instead.
pub fn vertical_timesets(worlds: &WorldSet, cfg: &PcnnConfig) -> PcnnResult {
    match vertical_timesets_governed(worlds, cfg, None) {
        Ok(result) => result,
        // Unreachable: without a gauge no checkpoint exists to err.
        Err(_) => PcnnResult {
            sets: Vec::new(),
            candidate_sets_evaluated: 0,
            max_level: 0,
            frontier_peak: 0,
            degraded: false,
        },
    }
}

/// [`vertical_timesets`] under a [`BudgetGauge`]: the gauge is polled at
/// every lattice level and every [`MINING_CHECK_INTERVAL`] validated
/// candidates within a level. Cancellation is a typed error; a passed
/// deadline *degrades* — the expansion stops, every set validated so far is
/// kept (exact, see the anti-monotonicity argument in the module docs) and
/// the result is flagged [`PcnnResult::degraded`]. With `gauge = None` this
/// is exactly the ungoverned miner.
///
/// Inputs wider than 64 timestamps take the reference path; they are polled
/// once up front (a breach there degrades to an empty lattice) and then run
/// ungoverned — a 2⁶⁴-node lattice is unreachable, so the case exists for
/// API totality, not performance.
pub fn vertical_timesets_governed(
    worlds: &WorldSet,
    cfg: &PcnnConfig,
    gauge: Option<&BudgetGauge>,
) -> Result<PcnnResult, QueryError> {
    let num_times = worlds.num_times();
    if num_times > 64 {
        if let Some(g) = gauge {
            if g.probe(QueryPhase::Mining)? == Verdict::Degrade {
                return Ok(PcnnResult {
                    sets: Vec::new(),
                    candidate_sets_evaluated: 0,
                    max_level: 0,
                    frontier_peak: 0,
                    degraded: true,
                });
            }
        }
        return Ok(apriori_timesets(&worlds.world_masks(), num_times, cfg));
    }
    let num_worlds = worlds.num_worlds();
    let stride = worlds.stride;
    let threshold = support_threshold(cfg.tau, num_worlds);
    let probability = |support: usize| {
        if num_worlds == 0 {
            0.0
        } else {
            support as f64 / num_worlds as f64
        }
    };

    let mut evaluated = 0usize;
    let mut max_level = 0usize;
    let mut frontier_peak = 0usize;
    let mut degraded = false;
    // Qualifying set masks per level, in generation order; converted (or
    // maximality-filtered) at the end. Levels are generated in lexicographic
    // order, which matches the reference path's join order exactly.
    let mut levels: Vec<Vec<(u64, f64)>> = Vec::new();

    // L1: singleton timestamp sets (line 1 of Algorithm 1) straight from the
    // column supports.
    let mut current: Vec<Node> = Vec::new();
    let mut cur_words: Vec<u64> = Vec::new();
    for t in 0..num_times {
        evaluated += 1;
        let support = worlds.column_support(t);
        if support >= threshold {
            let offset = cur_words.len();
            cur_words.extend_from_slice(worlds.column(t));
            current.push(Node { set: 1u64 << t, offset, support });
        }
    }

    // Lk from Lk-1 (lines 2-5): prefix-class join + one AND per candidate.
    while !current.is_empty() {
        max_level = current[0].set.count_ones() as usize;
        frontier_peak = frontier_peak.max(current.len());
        let mut next: Vec<Node> = Vec::new();
        let mut next_words: Vec<u64> = Vec::new();
        // Level checkpoint: the frontier sets reached here are validated, so
        // a deadline breach keeps them and just stops going deeper.
        if let Some(g) = gauge {
            if g.probe(QueryPhase::Mining)? == Verdict::Degrade {
                degraded = true;
            }
        }
        if !degraded && current.len() > 1 {
            let prev_sets: FxHashSet<u64> = current.iter().map(|n| n.set).collect();
            let mut class_start = 0usize;
            'join: while class_start < current.len() {
                // A prefix class: the maximal run of frontier nodes agreeing
                // on all but their last (= highest) element. Within a class
                // the last elements are strictly increasing, so every
                // (k+1)-candidate `prefix ∪ {i, j}` is generated exactly once
                // — no global pair scan, no dedup set.
                let prefix = clear_highest(current[class_start].set);
                let mut class_end = class_start + 1;
                while class_end < current.len() && clear_highest(current[class_end].set) == prefix
                {
                    class_end += 1;
                }
                for a in class_start..class_end {
                    for b in (a + 1)..class_end {
                        let joined = current[a].set | current[b].set;
                        // Apriori prune: every k-subset must have qualified.
                        // Dropping either of the two highest bits yields the
                        // parents (frontier nodes by construction), so only
                        // the prefix bits need a lookup.
                        let mut rest = prefix;
                        let mut all_subsets_qualify = true;
                        while rest != 0 {
                            let bit = rest & rest.wrapping_neg();
                            rest &= rest - 1;
                            if !prev_sets.contains(&(joined & !bit)) {
                                all_subsets_qualify = false;
                                break;
                            }
                        }
                        if !all_subsets_qualify {
                            continue;
                        }
                        evaluated += 1;
                        // Mid-level checkpoint: a breach discards only the
                        // partially generated next level — the current
                        // (fully validated) frontier is still reported.
                        if evaluated.is_multiple_of(MINING_CHECK_INTERVAL) {
                            if let Some(g) = gauge {
                                if g.probe(QueryPhase::Mining)? == Verdict::Degrade {
                                    degraded = true;
                                    next.clear();
                                    next_words.clear();
                                    break 'join;
                                }
                            }
                        }
                        // worlds(A) ∩ worlds(B) = worlds(A ∪ B): one
                        // AND+popcount, written straight into the next
                        // level's arena and kept only if it qualifies.
                        let offset = next_words.len();
                        let mut support = 0usize;
                        for i in 0..stride {
                            let w = cur_words[current[a].offset + i]
                                & cur_words[current[b].offset + i];
                            next_words.push(w);
                            support += w.count_ones() as usize;
                        }
                        if support >= threshold {
                            next.push(Node { set: joined, offset, support });
                        } else {
                            next_words.truncate(offset);
                        }
                    }
                }
                class_start = class_end;
            }
        }
        levels.push(current.iter().map(|n| (n.set, probability(n.support))).collect());
        current = next;
        cur_words = next_words;
    }

    let masked = if cfg.maximal_only { keep_maximal_levels(&levels) } else { levels.concat() };
    let sets = masked.into_iter().map(|(m, p)| (mask_to_indices(m), p)).collect();
    Ok(PcnnResult { sets, candidate_sets_evaluated: evaluated, max_level, frontier_peak, degraded })
}

/// Maximality filter over the per-level results: a qualifying `k`-set is
/// subsumed iff some qualifying `(k+1)`-set contains it (Apriori results are
/// downward closed, so subsumption by *any* larger set implies subsumption by
/// one exactly one level up). One pass over each level replaces the reference
/// path's all-pairs scan.
fn keep_maximal_levels(levels: &[Vec<(u64, f64)>]) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for (k, level) in levels.iter().enumerate() {
        match levels.get(k + 1) {
            None => out.extend(level.iter().copied()),
            Some(next_level) => {
                let mut subsumed: FxHashSet<u64> = FxHashSet::default();
                for &(s, _) in next_level {
                    let mut rest = s;
                    while rest != 0 {
                        let bit = rest & rest.wrapping_neg();
                        rest &= rest - 1;
                        subsumed.insert(s & !bit);
                    }
                }
                out.extend(level.iter().filter(|(s, _)| !subsumed.contains(s)).copied());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reference path (horizontal representation)
// ---------------------------------------------------------------------------

/// Estimates `P∀NN(o, q, T_k)` for the timestamp subset given by `indices`
/// (sorted indices into the query timestamps) from per-world membership masks.
///
/// Part of the retained reference path; the engine validates candidates
/// through [`WorldSet`] intersections instead.
pub fn subset_probability(world_masks: &[TimeMask], indices: &[usize]) -> f64 {
    if world_masks.is_empty() {
        return 0.0;
    }
    let num_times = world_masks[0].len();
    let subset = TimeMask::from_indices(num_times, indices.iter().copied());
    let hits = world_masks.iter().filter(|m| m.contains_all(&subset)).count();
    hits as f64 / world_masks.len() as f64
}

/// Runs Algorithm 1 for one object over horizontal per-world masks.
///
/// `world_masks` holds, for every sampled possible world, the set of query
/// timestamps (as indices `0..num_times`) at which the object was a nearest
/// neighbor. Returns all qualifying timestamp sets.
///
/// This is the **reference implementation** the vertical miner is tested
/// against ([`vertical_timesets`] must return byte-identical sets,
/// probabilities and counters); the engine no longer calls it.
pub fn apriori_timesets(
    world_masks: &[TimeMask],
    num_times: usize,
    cfg: &PcnnConfig,
) -> PcnnResult {
    let mut evaluated = 0usize;
    let mut max_level = 0usize;
    let mut frontier_peak = 0usize;
    let mut all_results: Vec<(Vec<usize>, f64)> = Vec::new();

    // L1: singleton timestamp sets (line 1 of Algorithm 1).
    let mut current_level: Vec<(Vec<usize>, f64)> = Vec::new();
    for i in 0..num_times {
        evaluated += 1;
        let p = subset_probability(world_masks, &[i]);
        if p >= cfg.tau {
            current_level.push((vec![i], p));
        }
    }
    if !current_level.is_empty() {
        max_level = 1;
        frontier_peak = current_level.len();
    }
    all_results.extend(current_level.iter().cloned());

    // Lk from Lk-1 (lines 2-5).
    while current_level.len() > 1 {
        let prev_sets: FxHashSet<Vec<usize>> =
            current_level.iter().map(|(s, _)| s.clone()).collect();
        let mut next_level: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut generated: FxHashSet<Vec<usize>> = FxHashSet::default();
        for a in 0..current_level.len() {
            for b in (a + 1)..current_level.len() {
                let (sa, _) = &current_level[a];
                let (sb, _) = &current_level[b];
                // Apriori join: both sets must agree on all but the last element.
                if sa[..sa.len() - 1] != sb[..sb.len() - 1] {
                    continue;
                }
                let mut joined = sa.clone();
                joined.push(*sb.last().expect("non-empty"));
                joined.sort_unstable();
                if !generated.insert(joined.clone()) {
                    continue;
                }
                // Prune: every (k-1)-subset must have qualified.
                let all_subsets_qualify = (0..joined.len()).all(|drop| {
                    let mut sub = joined.clone();
                    sub.remove(drop);
                    prev_sets.contains(&sub)
                });
                if !all_subsets_qualify {
                    continue;
                }
                evaluated += 1;
                let p = subset_probability(world_masks, &joined);
                if p >= cfg.tau {
                    next_level.push((joined, p));
                }
            }
        }
        if next_level.is_empty() {
            break;
        }
        max_level = next_level[0].0.len();
        frontier_peak = frontier_peak.max(next_level.len());
        all_results.extend(next_level.iter().cloned());
        current_level = next_level;
    }

    if cfg.maximal_only {
        all_results = keep_maximal(all_results);
    }
    PcnnResult {
        sets: all_results,
        candidate_sets_evaluated: evaluated,
        max_level,
        frontier_peak,
        degraded: false,
    }
}

/// Removes every set that is a proper subset of another qualifying set
/// (reference-path implementation of the maximality filter).
fn keep_maximal(sets: Vec<(Vec<usize>, f64)>) -> Vec<(Vec<usize>, f64)> {
    let mut keep = Vec::new();
    for (i, (s, p)) in sets.iter().enumerate() {
        let is_subsumed = sets.iter().enumerate().any(|(j, (other, _))| {
            i != j && other.len() > s.len() && s.iter().all(|x| other.contains(x))
        });
        if !is_subsumed {
            keep.push((s.clone(), *p));
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds world masks from explicit per-world index lists.
    fn masks(num_times: usize, worlds: &[&[usize]]) -> Vec<TimeMask> {
        worlds
            .iter()
            .map(|w| TimeMask::from_indices(num_times, w.iter().copied()))
            .collect()
    }

    /// Runs both miners and asserts they agree byte for byte; returns the
    /// vertical result.
    fn both(world_masks: &[TimeMask], num_times: usize, cfg: &PcnnConfig) -> PcnnResult {
        let reference = apriori_timesets(world_masks, num_times, cfg);
        let ws = WorldSet::from_world_masks(num_times, world_masks);
        let vertical = vertical_timesets(&ws, cfg);
        assert_eq!(vertical.sets, reference.sets, "qualifying sets must match the reference");
        assert_eq!(vertical.candidate_sets_evaluated, reference.candidate_sets_evaluated);
        assert_eq!(vertical.max_level, reference.max_level);
        assert_eq!(vertical.frontier_peak, reference.frontier_peak);
        vertical
    }

    #[test]
    fn subset_probability_counts_containing_worlds() {
        let m = masks(3, &[&[0, 1, 2], &[0, 1], &[2], &[]]);
        assert_eq!(subset_probability(&m, &[0]), 0.5);
        assert_eq!(subset_probability(&m, &[0, 1]), 0.5);
        assert_eq!(subset_probability(&m, &[0, 1, 2]), 0.25);
        assert_eq!(subset_probability(&m, &[]), 1.0, "empty set is contained everywhere");
        assert_eq!(subset_probability(&[], &[0]), 0.0);
    }

    #[test]
    fn worldset_columns_transpose_the_masks() {
        let m = masks(3, &[&[0, 1, 2], &[0, 1], &[2], &[]]);
        let ws = WorldSet::from_world_masks(3, &m);
        assert_eq!(ws.num_times(), 3);
        assert_eq!(ws.num_worlds(), 4);
        assert_eq!(ws.column_support(0), 2);
        assert_eq!(ws.column_support(1), 2);
        assert_eq!(ws.column_support(2), 2);
        assert_eq!(ws.column(0), &[0b0011]);
        assert_eq!(ws.column(2), &[0b0101]);
        assert_eq!(ws.forall_support(), 1, "only world 0 contains all timestamps");
        assert_eq!(ws.world_masks(), m, "round trip back to the horizontal layout");
    }

    #[test]
    fn worldset_spans_multiple_words() {
        // 70 worlds forces two words per column.
        let mut ws = WorldSet::new(2, 70);
        for w in 0..70 {
            ws.record(0, w);
            if w % 2 == 0 {
                ws.record(1, w);
            }
        }
        assert_eq!(ws.column_support(0), 70);
        assert_eq!(ws.column_support(1), 35);
        assert_eq!(ws.forall_support(), 35);
        let masks = ws.world_masks();
        assert_eq!(masks.len(), 70);
        assert!(masks[68].get(1) && !masks[69].get(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worldset_rejects_out_of_range_worlds() {
        let mut ws = WorldSet::new(2, 65);
        ws.record(0, 65);
    }

    #[test]
    fn support_threshold_matches_float_comparison() {
        for &worlds in &[1usize, 2, 3, 7, 10, 64, 100, 333] {
            for &tau in &[0.0, 0.1, 0.3, 1.0 / 3.0, 0.5, 0.75, 0.9, 0.999, 1.0] {
                let h = support_threshold(tau, worlds);
                // h is the smallest support whose probability clears tau.
                assert!(h as f64 / worlds as f64 >= tau, "h={h} worlds={worlds} tau={tau}");
                if h > 0 {
                    assert!(
                        ((h - 1) as f64 / worlds as f64) < tau,
                        "h={h} is not minimal for worlds={worlds} tau={tau}"
                    );
                }
            }
        }
        assert_eq!(support_threshold(0.0, 0), 0, "zero worlds qualify at tau = 0");
        assert_eq!(support_threshold(0.5, 0), 1, "zero worlds never qualify at tau > 0");
    }

    #[test]
    fn nan_threshold_rejects_everything_like_the_reference() {
        // The engine validates τ, but direct calls can pass NaN; both miners
        // must then agree that nothing qualifies (`p >= NaN` is false).
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2]]);
        let result = both(&m, 3, &PcnnConfig::new(f64::NAN));
        assert!(result.sets.is_empty());
        assert_eq!(support_threshold(f64::NAN, 10), 11);
        assert_eq!(support_threshold(f64::NAN, 0), 1);
    }

    #[test]
    fn lattice_finds_all_qualifying_sets() {
        // Object is NN at {0,1} in 60% of worlds, at {2} in 40%, at all three
        // in 20%.
        let m = masks(
            3,
            &[
                &[0, 1, 2],
                &[0, 1, 2],
                &[0, 1],
                &[0, 1],
                &[0, 1],
                &[0, 1],
                &[2],
                &[2],
                &[],
                &[],
            ],
        );
        let result = both(&m, 3, &PcnnConfig::new(0.5));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0]));
        assert!(sets.contains(&vec![1]));
        assert!(sets.contains(&vec![0, 1]));
        assert!(!sets.contains(&vec![2]), "{{2}} has probability 0.4 < 0.5");
        assert!(!sets.contains(&vec![0, 1, 2]));
        // Probabilities attached to the sets are the world fractions.
        let p01 = result.sets.iter().find(|(s, _)| s == &vec![0, 1]).unwrap().1;
        assert!((p01 - 0.6).abs() < 1e-12);
        assert_eq!(result.max_level, 2);
        assert_eq!(result.frontier_peak, 2, "both levels hold two qualifying sets");
    }

    #[test]
    fn anti_monotonicity_prunes_supersets_without_evaluation() {
        // Only timestamp 0 ever qualifies; the lattice must stop after level 1
        // and evaluate exactly num_times candidate sets.
        let m = masks(4, &[&[0], &[0], &[0], &[1]]);
        let result = both(&m, 4, &PcnnConfig::new(0.5));
        assert_eq!(result.sets.len(), 1);
        assert_eq!(result.candidate_sets_evaluated, 4);
        assert_eq!(result.max_level, 1);
        assert_eq!(result.frontier_peak, 1);
    }

    #[test]
    fn low_threshold_reaches_the_full_set() {
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2], &[0, 2]]);
        let result = both(&m, 3, &PcnnConfig::new(0.1));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0, 1, 2]));
        // All 7 non-empty subsets qualify at tau = 0.1.
        assert_eq!(sets.len(), 7);
        assert_eq!(result.max_level, 3);
        assert_eq!(result.frontier_peak, 3, "levels 1 and 2 both hold three sets");
    }

    #[test]
    fn maximal_only_removes_subsumed_sets() {
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2], &[0, 1, 2]]);
        let all = both(&m, 3, &PcnnConfig::new(0.5));
        assert_eq!(all.sets.len(), 7);
        let maximal = both(&m, 3, &PcnnConfig::maximal(0.5));
        assert_eq!(maximal.sets.len(), 1);
        assert_eq!(maximal.sets[0].0, vec![0, 1, 2]);
        assert_eq!(maximal.max_level, 3, "observability reflects the unfiltered lattice");
        assert_eq!(maximal.frontier_peak, 3);
    }

    #[test]
    fn maximal_only_keeps_incomparable_sets_across_levels() {
        // {0,1} qualifies as a pair; {2} qualifies alone and is in no
        // qualifying pair, so both must survive the maximality filter.
        let m = masks(3, &[&[0, 1], &[0, 1], &[0, 1, 2], &[2], &[2]]);
        let result = both(&m, 3, &PcnnConfig::maximal(0.5));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(sets, vec![vec![2], vec![0, 1]]);
    }

    #[test]
    fn qualifying_sets_need_not_be_contiguous() {
        // NN at times 0 and 2 but never at 1: the qualifying pair is {0, 2}.
        let m = masks(3, &[&[0, 2], &[0, 2], &[0, 1]]);
        let result = both(&m, 3, &PcnnConfig::new(0.6));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0, 2]));
        assert!(!sets.contains(&vec![0, 1]));
    }

    #[test]
    fn more_than_64_timestamps_take_the_fallback_path() {
        // A 70-column input cannot pack sets into the u64 mask; the vertical
        // entry point must still agree with the reference (it delegates).
        let m = masks(70, &[&[0, 1, 65, 69], &[0, 1, 65], &[1, 65, 69], &[0, 1, 65, 69]]);
        let result = both(&m, 70, &PcnnConfig::new(0.5));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0, 1, 65]));
        assert!(sets.contains(&vec![1, 65, 69]));
        assert!(sets.contains(&vec![0, 1, 65, 69]), "holds in exactly half the worlds");
        assert_eq!(result.max_level, 4);
    }

    #[test]
    fn governed_miner_with_unlimited_budget_matches_ungoverned() {
        use crate::govern::QueryBudget;
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2], &[0, 2]]);
        let ws = WorldSet::from_world_masks(3, &m);
        let cfg = PcnnConfig::new(0.1);
        let gauge = QueryBudget::unlimited().start();
        let governed = vertical_timesets_governed(&ws, &cfg, Some(&gauge)).unwrap();
        let free = vertical_timesets(&ws, &cfg);
        assert_eq!(governed.sets, free.sets);
        assert_eq!(governed.candidate_sets_evaluated, free.candidate_sets_evaluated);
        assert!(!governed.degraded);
        assert!(gauge.checkpoints() > 0, "the lattice polled its level checkpoints");
    }

    #[test]
    fn governed_miner_degrades_on_deadline_keeping_validated_singletons() {
        use crate::govern::QueryBudget;
        use std::time::Duration;
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2], &[0, 1, 2]]);
        let ws = WorldSet::from_world_masks(3, &m);
        let gauge = QueryBudget::unlimited().with_deadline(Duration::ZERO).start();
        let result = vertical_timesets_governed(&ws, &PcnnConfig::new(0.5), Some(&gauge)).unwrap();
        assert!(result.degraded);
        // The zero deadline trips at the first level checkpoint: the L1
        // singletons were already validated and survive; nothing deeper does.
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(sets, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(result.max_level, 1);
    }

    #[test]
    fn governed_miner_cancellation_is_a_typed_error() {
        use crate::govern::{CancelToken, QueryBudget, QueryPhase};
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2]]);
        let ws = WorldSet::from_world_masks(3, &m);
        let token = CancelToken::new();
        token.cancel();
        let gauge = QueryBudget::unlimited().with_cancel(&token).start();
        let err = vertical_timesets_governed(&ws, &PcnnConfig::new(0.5), Some(&gauge)).unwrap_err();
        assert!(matches!(err, QueryError::Cancelled { phase: QueryPhase::Mining, .. }));
    }

    #[test]
    fn empty_or_degenerate_inputs() {
        let result = apriori_timesets(&[], 3, &PcnnConfig::new(0.5));
        assert!(result.sets.is_empty());
        assert_eq!(result.max_level, 0);
        assert_eq!(result.frontier_peak, 0);
        let empty = vertical_timesets(&WorldSet::new(3, 0), &PcnnConfig::new(0.5));
        assert!(empty.sets.is_empty());
        assert_eq!(empty.candidate_sets_evaluated, result.candidate_sets_evaluated);
        let m = masks(1, &[&[0], &[]]);
        let result = both(&m, 1, &PcnnConfig::new(0.5));
        assert_eq!(result.sets.len(), 1);
    }
}
