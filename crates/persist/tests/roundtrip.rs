//! Round-trip property tests: arbitrary seeded workloads are encoded,
//! decoded and re-encoded, and the second encode must be byte-identical to
//! the first — the store is lossless and canonical, with no hidden
//! hash-map-order or floating-point drift anywhere in the pipeline.

mod common;

use proptest::prelude::*;
use ust_persist::{decode_store, encode_store, StoreContents};

/// Encodes a workload, decodes the bytes, re-encodes the decoded value and
/// checks the two byte strings match. Returns the decoded store for extra
/// structural assertions.
fn assert_canonical_roundtrip(w: &common::Workload, with_tree: bool) -> ust_persist::LoadedStore {
    let bytes = encode_store(&StoreContents {
        database: &w.db,
        index: with_tree.then_some(&w.tree),
        models: &w.models,
    });
    let loaded = decode_store(&bytes).expect("a fresh encode must decode");
    let again = encode_store(&StoreContents {
        database: &loaded.database,
        index: loaded.index.as_ref(),
        models: &loaded.models,
    });
    assert_eq!(bytes, again, "re-encode of a decoded store must be byte-identical");
    assert_eq!(loaded.stats.bytes, bytes.len() as u64);
    loaded
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn full_store_roundtrips_bit_identically(
        num_states in 9usize..48,
        num_objects in 1usize..6,
        obs in 2usize..10,
        seed in 0u64..1_000_000,
    ) {
        let w = common::build_workload(num_states, num_objects, obs, seed);
        let loaded = assert_canonical_roundtrip(&w, true);

        // Structural spot checks on top of the byte identity.
        prop_assert_eq!(loaded.database.len(), w.db.len());
        prop_assert_eq!(loaded.database.state_space().len(), num_states);
        let tree = loaded.index.as_ref().expect("tree section present");
        prop_assert_eq!(tree.diamonds().len(), w.tree.diamonds().len());
        prop_assert_eq!(tree.rtree_capacity(), w.tree.rtree_capacity());
        prop_assert_eq!(tree.build_stats().diamonds, w.tree.build_stats().diamonds);
        let ids: Vec<_> = loaded.models.iter().map(|(id, _)| *id).collect();
        let expect: Vec<_> = w.models.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(ids, expect);
    }

    #[test]
    fn database_only_store_roundtrips(
        num_states in 9usize..32,
        num_objects in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut w = common::build_workload(num_states, num_objects, 3, seed);
        w.models.clear();
        let loaded = assert_canonical_roundtrip(&w, false);
        prop_assert!(loaded.index.is_none());
        prop_assert!(loaded.models.is_empty());
        prop_assert_eq!(loaded.stats.sections, 1);
    }
}

#[test]
fn decoded_observations_match_the_originals_exactly() {
    let w = common::build_workload(25, 4, 8, 42);
    let loaded = assert_canonical_roundtrip(&w, true);
    for (orig, back) in w.db.objects().iter().zip(loaded.database.objects()) {
        assert_eq!(orig.id(), back.id());
        assert_eq!(orig.observation_pairs(), back.observation_pairs());
    }
    // The model override registered by the builder survives, bit for bit.
    let orig = w.db.model_overrides();
    let back = loaded.database.model_overrides();
    assert_eq!(orig.len(), 1);
    assert_eq!(back.len(), 1);
    assert_eq!(orig[0].0, back[0].0);
}

#[test]
fn loaded_models_rebuild_an_identical_sampling_kernel() {
    // The alias-table kernel is not serialized; `AdaptedModel::from_parts`
    // rebuilds it from the decoded transition rows. Since the rows round-trip
    // bit-identically and the kernel construction is deterministic, the
    // loaded kernel must equal the fresh one slot for slot — every draw a
    // store-loaded model answers is bit-identical to the original model's.
    let w = common::build_workload(20, 3, 6, 99);
    let loaded = assert_canonical_roundtrip(&w, true);
    for ((_, fresh), (_, back)) in w.models.iter().zip(&loaded.models) {
        assert_eq!(fresh.alias_kernel(), back.alias_kernel());
        for t in fresh.start()..fresh.end() {
            for s in fresh.support_at(t) {
                for u in [0.0, 0.31, 0.77, 1.0 - f64::EPSILON / 2.0] {
                    assert_eq!(
                        fresh.sample_transition(t, s, u),
                        back.sample_transition(t, s, u),
                        "t={t} s={s} u={u}"
                    );
                }
            }
        }
    }
}

#[test]
fn adapted_models_survive_with_their_distributions() {
    let w = common::build_workload(16, 3, 6, 7);
    let loaded = assert_canonical_roundtrip(&w, true);
    assert_eq!(loaded.models.len(), w.models.len());
    for ((id_a, model_a), (id_b, model_b)) in w.models.iter().zip(&loaded.models) {
        assert_eq!(id_a, id_b);
        assert_eq!(model_a.start(), model_b.start());
        assert_eq!(model_a.end(), model_b.end());
        for t in model_a.start()..=model_a.end() {
            let a = model_a.posterior_at(t).expect("covered timestamp");
            let b = model_b.posterior_at(t).expect("covered timestamp");
            // Bit-level equality on the entries, not approximate.
            let bits_a: Vec<(u32, u64)> = a.iter().map(|(s, p)| (s, p.to_bits())).collect();
            let bits_b: Vec<(u32, u64)> = b.iter().map(|(s, p)| (s, p.to_bits())).collect();
            assert_eq!(bits_a, bits_b);
        }
    }
}
