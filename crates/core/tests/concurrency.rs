//! Concurrency tests for the TS-phase subsystem: the adaptation-cache
//! anti-stampede guarantee, determinism of the parallel fan-out, and
//! thread-safety of whole queries against one shared engine.

use std::sync::{Arc, Barrier};
use ust_core::{EngineConfig, Query, QueryEngine, QueryError};
use ust_markov::{CsrMatrix, MarkovModel, StateId};
use ust_spatial::{Point, StateSpace};
use ust_trajectory::{TrajectoryDatabase, UncertainObject};

/// Gap between the two observations pinning every object.
const GAP: u32 = 6;

/// A database of `num_objects` random walkers on a ring of `num_states`
/// states, each pinned at `t = 0` and `t = GAP` so the forward–backward
/// adaptation has real inference work to do in between.
fn ring_db(num_states: usize, num_objects: u32) -> TrajectoryDatabase {
    let points: Vec<Point> = (0..num_states)
        .map(|i| {
            let a = (i as f64) / (num_states as f64) * std::f64::consts::TAU;
            Point::new(a.cos(), a.sin())
        })
        .collect();
    let space = Arc::new(StateSpace::from_points(points));
    let rows: Vec<Vec<(StateId, f64)>> = (0..num_states)
        .map(|i| {
            let fwd = ((i + 1) % num_states) as StateId;
            let bwd = ((i + num_states - 1) % num_states) as StateId;
            vec![(bwd, 0.25), (i as StateId, 0.5), (fwd, 0.25)]
        })
        .collect();
    let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::from_rows(rows)));
    let objects: Vec<UncertainObject> = (1..=num_objects)
        .map(|id| {
            let start = ((id as usize * 7) % num_states) as StateId;
            let end = ((start as usize + 2) % num_states) as StateId;
            UncertainObject::from_pairs(id, vec![(0, start), (GAP, end)])
                .expect("observations are sorted")
        })
        .collect();
    TrajectoryDatabase::with_objects(space, model, objects)
}

fn ring_query() -> Query {
    Query::at_point(Point::new(1.2, 0.0), 0..=GAP).expect("valid query")
}

#[test]
fn hammering_one_object_adapts_it_exactly_once() {
    let db = ring_db(64, 4);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(50));
    let threads = 8;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                let model = engine.adapted_model(1).expect("object 1 exists");
                assert_eq!(model.start(), 0);
                assert_eq!(model.end(), GAP);
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(
        stats.cold_adaptations, 1,
        "concurrent misses on one id must not duplicate the forward–backward work"
    );
    assert_eq!(stats.hits, threads as u64 - 1);
    assert_eq!(engine.cached_models(), 1);
}

#[test]
fn concurrent_cold_prepares_adapt_each_object_exactly_once() {
    let db = ring_db(64, 40);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(50));
    let threads = 6;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                let outcome = engine.prepare_all().expect("adaptation succeeds");
                assert_eq!(outcome.models.len(), db.len());
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(
        stats.cold_adaptations,
        db.len() as u64,
        "every object must be adapted exactly once across all racing threads"
    );
    assert_eq!(engine.cached_models(), db.len());
}

#[test]
fn parallel_queries_match_the_serial_run_exactly() {
    let db = ring_db(64, 24);
    let query = ring_query();
    // Reference: a fully serial engine (adaptation_threads = 1, queried from
    // one thread) — the pre-parallelism behaviour.
    let serial = QueryEngine::new(
        &db,
        EngineConfig { num_samples: 400, adaptation_threads: 1, ..Default::default() },
    );
    let ref_forall = serial.pforall_nn(&query, 0.0).expect("query succeeds");
    let ref_exists = serial.pexists_nn(&query, 0.0).expect("query succeeds");

    let shared = QueryEngine::new(&db, EngineConfig::with_samples(400));
    let threads = 4;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                let forall = shared.pforall_nn(&query, 0.0).expect("query succeeds");
                let exists = shared.pexists_nn(&query, 0.0).expect("query succeeds");
                assert_eq!(
                    forall.results, ref_forall.results,
                    "P∀NN probabilities must match the serial run exactly"
                );
                assert_eq!(
                    exists.results, ref_exists.results,
                    "P∃NN probabilities must match the serial run exactly"
                );
            });
        }
    });
}

#[test]
fn prepare_all_is_deterministic_across_thread_counts() {
    let db = ring_db(64, 32);
    let ids: Vec<u32> = (1..=32).collect();
    let serial = QueryEngine::new(
        &db,
        EngineConfig { adaptation_threads: 1, use_index: false, ..Default::default() },
    );
    let parallel = QueryEngine::new(
        &db,
        EngineConfig { adaptation_threads: 4, use_index: false, ..Default::default() },
    );
    let a = serial.prepare_all().expect("adaptation succeeds");
    let b = parallel.prepare_all().expect("adaptation succeeds");
    assert_eq!(a.cold_adaptations, db.len());
    assert_eq!(b.cold_adaptations, db.len());
    let order_a: Vec<u32> = a.models.iter().map(|(id, _)| *id).collect();
    let order_b: Vec<u32> = b.models.iter().map(|(id, _)| *id).collect();
    assert_eq!(order_a, order_b, "model order must not depend on the thread count");
    for &id in &ids {
        let ma = serial.adapted_model(id).unwrap();
        let mb = parallel.adapted_model(id).unwrap();
        for t in 0..=GAP {
            assert_eq!(
                ma.posterior_at(t),
                mb.posterior_at(t),
                "posterior of object {id} at t={t} differs between thread counts"
            );
        }
    }
    // Warm queries over the two engines agree exactly, too.
    let query = ring_query();
    let qa = serial.pforall_nn(&query, 0.0).unwrap();
    let qb = parallel.pforall_nn(&query, 0.0).unwrap();
    assert_eq!(qa.results, qb.results);
}

#[test]
fn unknown_object_is_a_dedicated_error() {
    let db = ring_db(16, 2);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(10));
    match engine.adapted_model(999) {
        Err(QueryError::UnknownObject { object }) => assert_eq!(object, 999),
        other => panic!("expected UnknownObject, got {other:?}"),
    }
    let outcome = engine.prepare_objects(&[1, 999]);
    assert_eq!(outcome.unwrap_err(), QueryError::UnknownObject { object: 999 });
}
