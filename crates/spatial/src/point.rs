//! Two-dimensional points and Euclidean distances.
//!
//! The paper's experiments (Section 7) use a two-dimensional Euclidean state
//! space (`[0,1]²` for the synthetic networks, projected map coordinates for
//! the taxi data). The distance function `d(x, y)` of Definitions 1–3 is the
//! Euclidean distance between spatial points.

/// A position in the two-dimensional Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (longitude-like axis).
    pub x: f64,
    /// Vertical coordinate (latitude-like axis).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    ///
    /// Comparing squared distances avoids the square root on the hot path of
    /// nearest-neighbor evaluation; ordering is preserved because `sqrt` is
    /// monotone.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Coordinates as a fixed-size array, useful for building [`crate::Rect`]s.
    #[inline]
    pub fn coords(&self) -> [f64; 2] {
        [self.x, self.y]
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Linear interpolation between `self` (at `f = 0`) and `other` (at `f = 1`).
    #[inline]
    pub fn lerp(&self, other: &Point, f: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * f, self.y + (other.y - self.y) * f)
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }
}

impl From<[f64; 2]> for Point {
    fn from(c: [f64; 2]) -> Self {
        Point::new(c[0], c[1])
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.25);
        let b = Point::new(-0.5, 7.0);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), Point::new(1.0, 2.0));
    }

    #[test]
    fn conversions() {
        let p: Point = [1.0, 2.0].into();
        assert_eq!(p, Point::new(1.0, 2.0));
        let q: Point = (3.0, 4.0).into();
        assert_eq!(q, Point::new(3.0, 4.0));
        assert_eq!(q.coords(), [3.0, 4.0]);
    }
}
