//! Emits the sampling-kernel performance snapshot (`BENCH_sampling.json`).
//!
//! Measures alias-table vs inverse-CDF draw throughput per row support and
//! block (SoA) vs per-world world-sampling throughput over adapted models of
//! a synthetic workload, then prints the report table and optionally writes
//! the JSON snapshot.
//!
//! CI runs `--quick --json BENCH_sampling.current.json` and diffs the output
//! against the committed `BENCH_sampling.json` baseline with `bench_diff`;
//! refresh the baseline by re-running this binary with
//! `--quick --json BENCH_sampling.json` on the reference machine (see the
//! README's perf-trajectory section).

use ust_bench::perf::{measure_sampling_perf, SamplingPerfConfig};
use ust_bench::{RunScale, RunSettings};

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("bench_sampling_perf");
    settings.reject_store_flag("bench_sampling_perf");
    settings.reject_wal_flags("bench_sampling_perf");
    settings.reject_deadline_flag("bench_sampling_perf");
    let cfg = match settings.scale {
        RunScale::Quick => SamplingPerfConfig::quick(settings.seed),
        // The snapshot has no paper-scale variant: the trajectory tracks the
        // kernel itself, not paper figure sizes.
        RunScale::Default | RunScale::Paper => SamplingPerfConfig::default_scale(settings.seed),
    };
    let report = measure_sampling_perf(&cfg);
    report.print();
    report.maybe_write_json(&settings.json_path).expect("writing the JSON snapshot succeeds");
}
