//! The workspace's chunked ordered fan-out.
//!
//! One scoped-thread fan-out serves every parallel phase of the pipeline: the
//! sharded UST-tree build below ([`crate::UstTreeConfig::build_threads`]), the
//! engine's model-adaptation ("TS") batch and its per-candidate PCNN lattice
//! runs (`ust_core::prepare` re-exports these helpers). The discipline is
//! always the same:
//!
//! * `0` worker threads means "use the machine's available parallelism",
//! * `1` degenerates to the exact serial loop — no thread is spawned, so the
//!   behaviour (and any observable side-effect ordering) is bit-identical to
//!   the pre-parallel code,
//! * any other count partitions the items into contiguous chunks, one scoped
//!   worker per chunk, and merges results back **in input order** — callers
//!   see a deterministic ordering no matter which worker finished first.

/// Resolves a configured worker-thread count: `0` means "use the machine's
/// available parallelism".
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

/// Applies `f` to every item of a slice, fanning the calls out across at most
/// `threads` scoped workers (`0` = available parallelism). Results are
/// returned in input order regardless of which worker finished first, so
/// downstream consumers see a deterministic ordering. With `threads = 1` (or
/// at most one item) no thread is spawned and the loop is exactly the serial
/// path.
pub fn parallel_map_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = resolve_threads(threads).min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("every worker fills its chunk")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_maps_zero_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn parallel_map_preserves_order_and_handles_edges() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map_ordered(&empty, 4, |x: &i32| *x).is_empty());
        let items: Vec<i32> = (0..37).collect();
        for threads in [1usize, 3, 64] {
            let doubled = parallel_map_ordered(&items, threads, |x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }
}
