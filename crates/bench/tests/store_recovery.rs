//! Crash-safe incremental ingest, end to end (DESIGN.md §10).
//!
//! Three contracts over the WAL-backed append path:
//!
//! * **Recovery equivalence** — append N batches to a live store, "kill" the
//!   process after each one (drop the store, reopen from disk), and the
//!   recovered engine's efficiency-workload digest must be bit-identical to
//!   a from-scratch engine over the same grown database, at every TS-phase
//!   worker count.
//! * **Stale-model invalidation** — a store carries adapted models; an
//!   append to an object makes its model stale. The minted engine must not
//!   answer from that stale model even when nothing clears its cache.
//! * **The crash matrix** — for EVERY fault point the persist crate
//!   registers, arm it once, run the full ingest cycle
//!   (load → append → checkpoint), and reopening the store must yield an
//!   engine whose digest equals either the pre-batch or the post-batch
//!   from-scratch engine — never a third state, and never a panic. The
//!   matrix is enumerated from [`ust_persist::FAULT_POINTS`] with a
//!   `panic!` fallback, so registering a new point fails this suite until
//!   the matrix classifies it.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use ust_bench::args::RunScale;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::measure_efficiency_on;
use ust_bench::walcheck::split_holdback;
use ust_core::{EngineConfig, EngineStore, Query, QueryEngine};
use ust_fault::{fired, FaultPlan};
use ust_generator::QueryWorkload;
use ust_persist::{wal, StoreError};
use ust_trajectory::{ObjectId, Observation, TrajectoryDatabase};

/// The fault registry is process-global, so every test of this binary that
/// loads or appends serialises on this lock (see `tests/chaos.rs`).
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_params() -> ScaleParams {
    let mut params = ScaleParams::for_scale(RunScale::Quick);
    params.num_queries = 2;
    params
}

fn engine_config(threads: usize) -> EngineConfig {
    EngineConfig {
        num_samples: 25,
        seed: 0,
        adaptation_threads: threads,
        index_build_threads: 1,
        ..Default::default()
    }
}

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ust_store_recovery_{}_{tag}.ustore", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal::wal_path(path));
}

/// The from-scratch digest over `db`: what a crash-free engine answers.
fn fresh_digest(db: &TrajectoryDatabase, queries: &QueryWorkload, threads: usize) -> u64 {
    let engine = QueryEngine::new(db, engine_config(threads));
    measure_efficiency_on(&engine, queries).digest
}

/// Peels `n` single-observation batches off the tails of `db`'s objects:
/// returns the shortened base database plus the batches that, appended in
/// order, grow it back to `db`.
type Batch = Vec<(ObjectId, Vec<Observation>)>;

fn peel_batches(db: &TrajectoryDatabase, n: usize) -> (TrajectoryDatabase, Vec<Batch>) {
    let mut batches = Vec::with_capacity(n);
    let mut current = split_holdback(db);
    batches.push(current.batch);
    for _ in 1..n {
        let mut next = split_holdback(&current.pre_database);
        batches.push(std::mem::take(&mut next.batch));
        current = next;
    }
    batches.reverse();
    for batch in &batches {
        assert!(!batch.is_empty(), "the synthetic trajectories are long enough to peel");
    }
    (current.pre_database, batches)
}

#[test]
fn appends_survive_kill_and_reopen_at_every_thread_count() {
    let _guard = fault_lock();
    let params = quick_params();
    let dataset = build_synthetic(&params, 400, params.branching, 40, 0);
    let queries = build_queries(&dataset, &params, 0);
    const BATCHES: usize = 3;
    let (base, batches) = peel_batches(&dataset.database, BATCHES);

    // Reference digests per stage, all from scratch: stage k = base plus the
    // first k batches applied in memory.
    let mut stage = base.clone();
    let mut stage_digests: Vec<Vec<u64>> = Vec::new();
    for batch in &batches {
        for (id, obs) in batch {
            stage.append_observations(*id, obs).expect("the peeled batch re-applies");
        }
        stage_digests
            .push([1usize, 2].iter().map(|&t| fresh_digest(&stage, &queries, t)).collect());
    }
    let full: Vec<u64> =
        [1usize, 2].iter().map(|&t| fresh_digest(&dataset.database, &queries, t)).collect();
    assert_eq!(stage_digests.last(), Some(&full), "all batches together restore the original");

    let path = store_path("equivalence");
    cleanup(&path);
    QueryEngine::new(&base, engine_config(1)).save_store(&path).expect("seed store");

    for (k, batch) in batches.iter().enumerate() {
        // Reopen from disk (replaying every batch so far), append one more,
        // then "kill the process" by dropping the store unchecked.
        let mut store = EngineStore::load(&path).expect("reopen after the kill");
        assert_eq!(store.wal_stats().frames, k, "every prior batch is replayed");
        store.append_batch(batch).expect("the append succeeds");
        drop(store);

        // A second reopen — the recovery — must answer like the from-scratch
        // engine over the same grown database, at every thread count.
        let recovered = EngineStore::load(&path).expect("recovery load succeeds");
        for (i, &threads) in [1usize, 2].iter().enumerate() {
            let digest =
                measure_efficiency_on(&recovered.engine(engine_config(threads)), &queries).digest;
            assert_eq!(
                digest, stage_digests[k][i],
                "batch {k}: recovered digest diverges at {threads} TS threads"
            );
        }
    }

    // A checkpoint folds everything into the container; the WAL is gone and
    // the reloaded store still answers identically.
    let mut store = EngineStore::load(&path).expect("load before checkpoint");
    store.checkpoint().expect("checkpoint succeeds");
    assert!(!wal::wal_path(&path).exists());
    let reloaded = EngineStore::load(&path).expect("load after checkpoint");
    assert_eq!(reloaded.wal_stats().frames, 0);
    let digest = measure_efficiency_on(&reloaded.engine(engine_config(1)), &queries).digest;
    assert_eq!(digest, full[0], "the checkpointed store answers like the original");
    cleanup(&path);
}

#[test]
fn appends_invalidate_stale_adapted_models() {
    let _guard = fault_lock();
    let params = quick_params();
    let dataset = build_synthetic(&params, 400, params.branching, 40, 2);
    let queries = build_queries(&dataset, &params, 2);
    let (pre, batches) = peel_batches(&dataset.database, 1);
    let batch = &batches[0];

    // Warm the pre-append engine's cache so the saved store carries adapted
    // models — models trained on the *shortened* trajectories.
    let path = store_path("stale_models");
    cleanup(&path);
    let pre_engine = QueryEngine::new(&pre, engine_config(1));
    measure_efficiency_on(&pre_engine, &queries);
    let spec = &queries.queries[0];
    let query = Query::at_point(spec.location, spec.times.iter().copied()).expect("valid query");
    pre_engine.pforall_nn(&query, 0.0).expect("warm-up query succeeds");
    pre_engine.save_store(&path).expect("save succeeds");

    let mut store = EngineStore::load(&path).expect("load succeeds");
    assert!(!store.models().is_empty(), "the store carries adapted models");
    assert!(store.index().is_some(), "the store carries the tree");
    store.append_batch(batch).expect("append succeeds");

    // The derived state of the touched objects is gone...
    assert!(store.index().is_none(), "appends invalidate the persisted tree");
    let touched: Vec<ObjectId> = batch.iter().map(|(id, _)| *id).collect();
    assert!(
        store.models().iter().all(|(id, _)| !touched.contains(id)),
        "appends drop the adapted models of the touched objects"
    );

    // ...and a query on the minted engine — whose cache starts pre-warmed
    // with the surviving stored models, nothing cleared — answers exactly
    // like a fresh engine over the grown data. (`measure_efficiency_on`
    // clears the cache per query, so it could not catch a stale preload;
    // this direct query does.)
    let grown = store.engine(engine_config(1));
    let recovered = grown.pforall_nn(&query, 0.0).expect("recovered engine answers");
    let fresh_engine = QueryEngine::new(&dataset.database, engine_config(1));
    let fresh = fresh_engine.pforall_nn(&query, 0.0).expect("fresh engine answers");
    let pairs = |o: &ust_core::QueryOutcome| -> Vec<(u64, u64)> {
        o.results.iter().map(|r| (u64::from(r.object), r.probability.to_bits())).collect()
    };
    assert_eq!(pairs(&recovered), pairs(&fresh), "a stale model leaked into the answer");
    cleanup(&path);
}

/// Runs the full ingest cycle against `path`; any step may fail with the
/// typed error of an armed fault.
fn ingest_cycle(
    path: &PathBuf,
    batch: &[(ObjectId, Vec<Observation>)],
) -> Result<(), StoreError> {
    let mut store = EngineStore::load(path)?;
    store.append_batch(batch)?;
    store.checkpoint()?;
    Ok(())
}

#[test]
fn crash_matrix_recovers_pre_or_post_state_for_every_fault_point() {
    let _guard = fault_lock();
    let params = quick_params();
    let dataset = build_synthetic(&params, 400, params.branching, 40, 1);
    let queries = build_queries(&dataset, &params, 1);
    let (pre, batches) = peel_batches(&dataset.database, 1);
    let batch = &batches[0];
    let pre_digest = fresh_digest(&pre, &queries, 1);
    let post_digest = fresh_digest(&dataset.database, &queries, 1);
    assert_ne!(pre_digest, post_digest, "the batch must be observable in the digest");

    // The whole persist catalog must be classified here: a new fault point
    // hits the `unknown` arm and fails the suite until the matrix covers it.
    for expected in [
        "persist.read.file",
        "persist.write.file",
        "persist.write.sync",
        "persist.write.rename",
        "persist.read.section",
        "persist.wal.append.write",
        "persist.wal.append.sync",
        "persist.wal.replay.read",
        "persist.checkpoint.truncate",
    ] {
        assert!(
            ust_persist::FAULT_POINTS.contains(&expected),
            "{expected} vanished from the catalog; update the crash matrix"
        );
    }

    let path = store_path("matrix");
    for &point in ust_persist::FAULT_POINTS {
        // Classify the point: which cycle step owns it and whether the cycle
        // may absorb it (bounded retries) instead of failing typed.
        let absorbed_ok = match point {
            "persist.read.file" | "persist.read.section" | "persist.wal.replay.read" => false,
            "persist.wal.append.write" | "persist.wal.append.sync" => false,
            "persist.write.file" | "persist.write.sync" | "persist.write.rename"
            | "persist.checkpoint.truncate" => false,
            "persist.read.interrupted" | "persist.write.interrupted" => true,
            other => panic!("unknown fault point {other:?}: extend the crash matrix"),
        };

        // Fresh pre-batch store, no leftover WAL, per point.
        cleanup(&path);
        QueryEngine::new(&pre, engine_config(1)).save_store(&path).expect("seed store");

        let armed = FaultPlan::once(point).arm();
        let outcome = ingest_cycle(&path, batch);
        assert_eq!(fired(point), 1, "{point}: the armed fault must actually fire");
        drop(armed);
        match outcome {
            Ok(()) => assert!(absorbed_ok, "{point}: the cycle absorbed a hard fault"),
            Err(StoreError::Io { .. }) => {
                assert!(!absorbed_ok, "{point}: a bounded-retry point failed typed")
            }
            Err(other) => panic!("{point}: expected StoreError::Io, got {other:?}"),
        }

        // The recovery contract: reopening yields the pre- or the post-batch
        // engine — never a third state, never a panic, never a corrupt load.
        let recovered = EngineStore::load(&path)
            .unwrap_or_else(|e| panic!("{point}: the store no longer loads: {e:?}"));
        let digest = measure_efficiency_on(&recovered.engine(engine_config(1)), &queries).digest;
        assert!(
            digest == pre_digest || digest == post_digest,
            "{point}: recovered to a third state (digest {digest:#x})"
        );

        // And with the fault gone, the cycle completes and lands on post.
        drop(recovered);
        ingest_cycle(&path, batch).or_else(|e| match e {
            // The batch may already be fully applied (fault hit after the
            // append took effect); re-appending then collides with itself,
            // which the validator rejects. Checkpoint the recovered state
            // instead.
            StoreError::Malformed { .. } => {
                let mut store = EngineStore::load(&path)?;
                store.checkpoint().map(|_| ())
            }
            other => Err(other),
        })
        .unwrap_or_else(|e| panic!("{point}: no clean cycle after the fault: {e:?}"));
        let settled = EngineStore::load(&path).expect("the settled store loads");
        assert_eq!(settled.wal_stats().frames, 0, "{point}: the checkpoint retired the WAL");
        let digest = measure_efficiency_on(&settled.engine(engine_config(1)), &queries).digest;
        assert_eq!(digest, post_digest, "{point}: the disarmed cycle must land on post");
    }
    cleanup(&path);
}
