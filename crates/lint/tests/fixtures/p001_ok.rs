//! P001 positive fixture: decoder code with typed errors, literal indexing,
//! waived infallible sites, and panicking *test* code (allowed). Must
//! produce zero findings.

fn decode(buf: &[u8]) -> Result<u32, String> {
    if buf.len() < 4 {
        return Err("truncated".to_string());
    }
    // Literal indices next to their constant bounds check are allowed.
    Ok(u32::from(buf[0]) | (u32::from(buf[1]) << 8) | (u32::from(buf[2]) << 16))
}

fn waived_infallible(items: &[u32]) -> u32 {
    if items.is_empty() {
        return 0;
    }
    // lint: allow(P001) emptiness is checked two lines above
    items.last().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(v.last().copied().unwrap(), 3);
    }
}
