//! Sparse probability distributions and compressed sparse-row matrices.
//!
//! The transition matrices of the paper's experiments are extremely sparse:
//! the synthetic networks connect each state to `b ≈ 6..10` neighbors, the
//! road network of the taxi data to the adjacent crossings. A dense
//! `|S| × |S|` representation would need 2 × 10¹¹ entries at the paper's
//! largest configuration; the CSR representation stores only the non-zero
//! entries, and the forward–backward adaptation (Section 5.2.3) touches only
//! the reachable rows, which is exactly how the paper obtains its
//! `O(|T| · |S|²)` worst-case / near-linear practical behaviour.

use crate::StateId;
use rustc_hash::FxHashMap;

/// Numerical tolerance used for stochasticity checks.
pub const PROB_EPSILON: f64 = 1e-9;

/// Smallest total mass [`SparseDist::normalize`] accepts.
///
/// Dividing by a (near-)subnormal mass can overflow entries to `inf` while
/// the division itself "succeeds"; the guard is drawn from the same tolerance
/// family as [`PROB_EPSILON`]: any mass small enough that `entry / mass`
/// could exceed `1 / PROB_EPSILON` × the largest finite ratio is treated as
/// zero. `f64::MIN_POSITIVE / PROB_EPSILON` ≈ 2.2e-299 keeps every division
/// on normalized floats with lossless headroom.
pub const MIN_NORMALIZABLE_MASS: f64 = f64::MIN_POSITIVE * (1.0 / PROB_EPSILON);

// ---------------------------------------------------------------------------
// SparseDist
// ---------------------------------------------------------------------------

/// A sparse probability distribution over states.
///
/// Entries are stored sorted by state id with strictly positive probability.
/// The distribution of an uncertain object at one timestamp (`~s^o(t)` in the
/// paper) has support bounded by the states reachable between the two
/// enclosing observations, which is tiny compared to `|S|`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseDist {
    entries: Vec<(StateId, f64)>,
    /// Cached sum of all probabilities, kept in sync by every constructor and
    /// by [`normalize`](Self::normalize) — always computed by the same
    /// left-to-right fold over `entries`, so it is bit-identical to summing on
    /// demand. [`sample_with`](Self::sample_with) runs once per chain step of
    /// every sampled possible world; re-summing there dominated the draw.
    mass: f64,
}

/// The left-to-right probability fold shared by the `mass` cache and the
/// pre-cache `total_mass()`.
fn mass_of(entries: &[(StateId, f64)]) -> f64 {
    entries.iter().map(|&(_, p)| p).sum()
}

impl Default for SparseDist {
    fn default() -> Self {
        Self::new()
    }
}

impl SparseDist {
    /// The empty (all-zero) distribution.
    pub fn new() -> Self {
        SparseDist { entries: Vec::new(), mass: mass_of(&[]) }
    }

    /// A point mass (Dirac delta) on `state`.
    pub fn delta(state: StateId) -> Self {
        let entries = vec![(state, 1.0)];
        let mass = mass_of(&entries);
        SparseDist { entries, mass }
    }

    /// Builds a distribution from `(state, weight)` pairs.
    ///
    /// Duplicate states are summed, zero or negative weights dropped, and the
    /// result is *not* normalized (use [`SparseDist::normalize`]).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (StateId, f64)>) -> Self {
        let mut map: FxHashMap<StateId, f64> = FxHashMap::default();
        for (s, w) in pairs {
            if w > 0.0 {
                *map.entry(s).or_insert(0.0) += w;
            }
        }
        let mut entries: Vec<(StateId, f64)> = map.into_iter().collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        let mass = mass_of(&entries);
        SparseDist { entries, mass }
    }

    /// Uniform distribution over the given support.
    pub fn uniform(support: impl IntoIterator<Item = StateId>) -> Self {
        let mut states: Vec<StateId> = support.into_iter().collect();
        states.sort_unstable();
        states.dedup();
        if states.is_empty() {
            return SparseDist::new();
        }
        let p = 1.0 / states.len() as f64;
        let entries: Vec<(StateId, f64)> = states.into_iter().map(|s| (s, p)).collect();
        let mass = mass_of(&entries);
        SparseDist { entries, mass }
    }

    /// Number of states with non-zero probability.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// Whether the distribution has empty support.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probability of `state` (zero if outside the support).
    pub fn prob(&self, state: StateId) -> f64 {
        match self.entries.binary_search_by_key(&state, |&(s, _)| s) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(state, probability)` pairs in increasing state order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The support (states with non-zero probability), sorted.
    pub fn support(&self) -> impl Iterator<Item = StateId> + '_ {
        self.entries.iter().map(|&(s, _)| s)
    }

    /// Sum of all probabilities (cached; see the `mass` field).
    #[inline]
    pub fn total_mass(&self) -> f64 {
        debug_assert_eq!(self.mass.to_bits(), mass_of(&self.entries).to_bits());
        self.mass
    }

    /// Scales all probabilities so they sum to one.
    ///
    /// Returns `false` (and leaves the distribution untouched) if the total
    /// mass is zero, NaN, or too small to divide by without producing
    /// non-finite entries ([`MIN_NORMALIZABLE_MASS`]).
    pub fn normalize(&mut self) -> bool {
        let mass = self.total_mass();
        // The explicit NaN arm matters: `mass < t` alone would let NaN through.
        if mass.is_nan() || mass < MIN_NORMALIZABLE_MASS {
            return false;
        }
        for (_, p) in &mut self.entries {
            *p /= mass;
        }
        self.mass = mass_of(&self.entries);
        true
    }

    /// Whether the distribution sums to one within [`PROB_EPSILON`].
    pub fn is_normalized(&self) -> bool {
        (self.total_mass() - 1.0).abs() < PROB_EPSILON
    }

    /// The most likely state, or `None` for an empty distribution.
    ///
    /// Probability ties resolve to the **lowest** state id. (`max_by` alone
    /// would return the last maximum, i.e. the highest id — an arbitrary
    /// winner nothing downstream pins; the explicit tiebreak keeps argmax
    /// tracks deterministic and documented.)
    pub fn argmax(&self) -> Option<StateId> {
        self.entries
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|&(s, _)| s)
    }

    /// Consumes a uniform random number `u ∈ [0, 1)` and returns the sampled
    /// state (inverse-CDF sampling). Returns `None` for an empty distribution.
    ///
    /// `u` **must** lie in `[0, 1)`: a `u ≥ 1` or NaN fails every
    /// `target < acc` comparison and would be silently mapped to the last
    /// support state by the numerical-slack fallback below, skewing the
    /// distribution. The contract is asserted in debug builds; every
    /// `ust-sampling` call site draws `u` via `rand`'s `gen::<f64>()`, whose
    /// `(next_u64() >> 11) · 2⁻⁵³` construction is confined to
    /// `[0, 1 − 2⁻⁵³] ⊂ [0, 1)`.
    ///
    /// Keeping the RNG outside this crate keeps `ust-markov` free of any
    /// randomness dependency; the samplers in `ust-sampling` provide `u`.
    pub fn sample_with(&self, u: f64) -> Option<StateId> {
        debug_assert!(
            u.is_finite() && (0.0..1.0).contains(&u),
            "sample_with requires u in [0, 1), got {u}"
        );
        if self.entries.is_empty() {
            return None;
        }
        let target = u * self.total_mass();
        let mut acc = 0.0;
        for &(s, p) in &self.entries {
            acc += p;
            if target < acc {
                return Some(s);
            }
        }
        // Numerical slack: for a valid `u` this is reachable only when the
        // mass is (near-)subnormal, so that `u * mass` rounds up to the final
        // `acc` (both are the same left-to-right fold; see the pinning test
        // `float_slack_fallback_is_reachable_only_at_subnormal_mass`). Fall
        // back to the last state.
        self.entries.last().map(|&(s, _)| s)
    }

    /// Builds a distribution directly from a pre-sorted, deduplicated entry
    /// list. Used by the hot paths of the adaptation algorithm.
    pub(crate) fn from_sorted_unchecked(entries: Vec<(StateId, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries must be sorted");
        let mass = mass_of(&entries);
        SparseDist { entries, mass }
    }

    /// Access to the raw entries.
    pub fn entries(&self) -> &[(StateId, f64)] {
        &self.entries
    }
}

impl FromIterator<(StateId, f64)> for SparseDist {
    fn from_iter<T: IntoIterator<Item = (StateId, f64)>>(iter: T) -> Self {
        SparseDist::from_pairs(iter)
    }
}

// ---------------------------------------------------------------------------
// CsrMatrix
// ---------------------------------------------------------------------------

/// A row-sparse matrix over the state space: `M[i][j] = P(o(t+1)=s_j | o(t)=s_i)`.
///
/// Rows are stored contiguously (CSR layout): `row_offsets[i]..row_offsets[i+1]`
/// indexes into the parallel `cols`/`vals` arrays.
#[derive(Debug, Clone, Default)]
pub struct CsrMatrix {
    num_states: usize,
    row_offsets: Vec<usize>,
    cols: Vec<StateId>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from per-row `(column, value)` lists.
    ///
    /// Rows are sorted by column; duplicate columns within a row are summed;
    /// non-positive values are dropped.
    pub fn from_rows(rows: Vec<Vec<(StateId, f64)>>) -> Self {
        let num_states = rows.len();
        let mut row_offsets = Vec::with_capacity(num_states + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_offsets.push(0);
        for mut row in rows {
            row.retain(|&(_, v)| v > 0.0);
            row.sort_unstable_by_key(|&(c, _)| c);
            // Merge duplicates.
            let mut merged: Vec<(StateId, f64)> = Vec::with_capacity(row.len());
            for (c, v) in row {
                match merged.last_mut() {
                    Some(last) if last.0 == c => last.1 += v,
                    _ => merged.push((c, v)),
                }
            }
            for (c, v) in merged {
                cols.push(c);
                vals.push(v);
            }
            row_offsets.push(cols.len());
        }
        CsrMatrix { num_states, row_offsets, cols, vals }
    }

    /// Builds a row-stochastic matrix from per-row `(column, weight)` lists by
    /// normalizing every non-empty row. Empty rows are given a self-loop so
    /// that every state has *some* outgoing transition (an object must be
    /// somewhere at each point in time).
    pub fn stochastic_from_weights(rows: Vec<Vec<(StateId, f64)>>) -> Self {
        let n = rows.len();
        let mut fixed = Vec::with_capacity(n);
        for (i, row) in rows.into_iter().enumerate() {
            let mass: f64 = row.iter().filter(|&&(_, w)| w > 0.0).map(|&(_, w)| w).sum();
            if mass <= 0.0 {
                fixed.push(vec![(i as StateId, 1.0)]);
            } else {
                fixed.push(row.into_iter().map(|(c, w)| (c, w / mass)).collect());
            }
        }
        CsrMatrix::from_rows(fixed)
    }

    /// Identity matrix (every state keeps its position with probability one).
    pub fn identity(num_states: usize) -> Self {
        CsrMatrix::from_rows((0..num_states).map(|i| vec![(i as StateId, 1.0)]).collect())
    }

    /// Number of states (rows and columns).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The non-zero entries of row `i` as parallel `(columns, values)` slices.
    #[inline]
    pub fn row(&self, i: StateId) -> (&[StateId], &[f64]) {
        let lo = self.row_offsets[i as usize];
        let hi = self.row_offsets[i as usize + 1];
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Iterator over the `(column, value)` entries of row `i`.
    pub fn row_iter(&self, i: StateId) -> impl Iterator<Item = (StateId, f64)> + '_ {
        let (c, v) = self.row(i);
        c.iter().copied().zip(v.iter().copied())
    }

    /// Entry `(i, j)`, zero if not stored.
    pub fn get(&self, i: StateId, j: StateId) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Whether every row sums to one within [`PROB_EPSILON`] (rows summing to
    /// zero are also accepted, as states may be unreachable sinks).
    pub fn is_row_stochastic(&self) -> bool {
        (0..self.num_states).all(|i| {
            let (_, vals) = self.row(i as StateId);
            let sum: f64 = vals.iter().sum();
            sum.abs() < PROB_EPSILON || (sum - 1.0).abs() < PROB_EPSILON
        })
    }

    /// One forward transition: given the distribution of `o(t)`, returns the
    /// distribution of `o(t+1)`, i.e. `~s(t+1) = M^T · ~s(t)`.
    pub fn propagate(&self, dist: &SparseDist) -> SparseDist {
        let mut acc: FxHashMap<StateId, f64> = FxHashMap::default();
        for (j, pj) in dist.iter() {
            for (i, m_ji) in self.row_iter(j) {
                *acc.entry(i).or_insert(0.0) += m_ji * pj;
            }
        }
        let mut entries: Vec<(StateId, f64)> = acc.into_iter().filter(|&(_, p)| p > 0.0).collect();
        entries.sort_unstable_by_key(|&(s, _)| s);
        SparseDist::from_sorted_unchecked(entries)
    }

    /// Transposed matrix (used for backward reachability).
    pub fn transpose(&self) -> CsrMatrix {
        let mut rows: Vec<Vec<(StateId, f64)>> = vec![Vec::new(); self.num_states];
        for i in 0..self.num_states {
            for (j, v) in self.row_iter(i as StateId) {
                rows[j as usize].push((i as StateId, v));
            }
        }
        CsrMatrix::from_rows(rows)
    }

    /// The set of successor states of `s` (states reachable in one step).
    pub fn successors(&self, s: StateId) -> &[StateId] {
        self.row(s).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_distribution() {
        let d = SparseDist::delta(3);
        assert_eq!(d.prob(3), 1.0);
        assert_eq!(d.prob(2), 0.0);
        assert!(d.is_normalized());
        assert_eq!(d.argmax(), Some(3));
    }

    #[test]
    fn from_pairs_merges_and_sorts() {
        let d = SparseDist::from_pairs(vec![(5, 0.25), (1, 0.5), (5, 0.25), (7, 0.0), (2, -1.0)]);
        let entries: Vec<_> = d.iter().collect();
        assert_eq!(entries, vec![(1, 0.5), (5, 0.5)]);
        assert!(d.is_normalized());
    }

    #[test]
    fn normalize_and_mass() {
        let mut d = SparseDist::from_pairs(vec![(0, 2.0), (1, 6.0)]);
        assert_eq!(d.total_mass(), 8.0);
        assert!(d.normalize());
        assert!((d.prob(0) - 0.25).abs() < 1e-12);
        assert!((d.prob(1) - 0.75).abs() < 1e-12);
        let mut empty = SparseDist::new();
        assert!(!empty.normalize());
    }

    #[test]
    fn uniform_support() {
        let d = SparseDist::uniform(vec![4, 2, 4, 9]);
        assert_eq!(d.support_size(), 3);
        assert!((d.prob(2) - 1.0 / 3.0).abs() < 1e-12);
        assert!(d.is_normalized());
    }

    #[test]
    fn inverse_cdf_sampling_hits_all_states() {
        let d = SparseDist::from_pairs(vec![(10, 0.2), (20, 0.3), (30, 0.5)]);
        assert_eq!(d.sample_with(0.0), Some(10));
        assert_eq!(d.sample_with(0.19), Some(10));
        assert_eq!(d.sample_with(0.21), Some(20));
        assert_eq!(d.sample_with(0.49), Some(20));
        assert_eq!(d.sample_with(0.51), Some(30));
        assert_eq!(d.sample_with(0.999999), Some(30));
        assert_eq!(SparseDist::new().sample_with(0.5), None);
    }

    #[test]
    fn argmax_ties_resolve_to_the_lowest_state_id() {
        // Exact ties in both directions of entry order.
        let d = SparseDist::from_pairs(vec![(3, 0.25), (9, 0.25), (5, 0.5)]);
        assert_eq!(d.argmax(), Some(5));
        let tied = SparseDist::from_pairs(vec![(2, 0.5), (7, 0.5)]);
        assert_eq!(tied.argmax(), Some(2), "probability ties pick the lowest id");
        let all_tied = SparseDist::uniform(vec![11, 4, 8]);
        assert_eq!(all_tied.argmax(), Some(4));
        assert_eq!(SparseDist::new().argmax(), None);
    }

    #[test]
    fn normalize_rejects_subnormal_mass_untouched() {
        // Two minimal subnormals: total mass 1e-323. The old code divided by
        // it (yielding inf/NaN entries) while still returning `true`.
        let mut d = SparseDist::from_pairs(vec![(0, 5e-324), (1, 5e-324)]);
        let before: Vec<_> = d.iter().collect();
        assert!(!d.normalize(), "subnormal mass must be treated as zero");
        assert_eq!(d.iter().collect::<Vec<_>>(), before, "distribution left untouched");
        assert!(d.iter().all(|(_, p)| p.is_finite()));

        // Just above the guard the division is safe and must still work.
        let mut ok = SparseDist::from_pairs(vec![(0, MIN_NORMALIZABLE_MASS)]);
        assert!(ok.normalize());
        assert!(ok.is_normalized());
    }

    #[test]
    fn float_slack_fallback_is_reachable_only_at_subnormal_mass() {
        // For a *normal* total mass the slack fallback is dead code: the scan
        // accumulates the exact same left-to-right fold as the cached mass,
        // and `fl(u · mass) < mass` for every u ∈ [0, 1) on normalized
        // floats. Exhaust the worst case — u at the top of the range — over
        // distributions with awkward masses.
        let max_u = 1.0 - f64::EPSILON / 2.0; // largest f64 below 1.0
        for mass in [1.0, 0.1 + 0.2, 3.0, 1e-300, 1e308] {
            let d = SparseDist::from_pairs(vec![(0, mass * 0.5), (1, mass * 0.5)]);
            // The scan's final accumulator is the same fold as the cached
            // mass, so `target < mass` proves the loop returns before the
            // fallback line.
            assert!(
                max_u * d.total_mass() < d.total_mass(),
                "normal mass {mass}: u·mass must stay below the final accumulator"
            );
            assert_eq!(d.sample_with(max_u), Some(1), "top-of-range u picks the last state");
        }
        // A genuinely subnormal mass *does* reach the fallback: the product
        // `u · mass` rounds up to the full mass, so no prefix satisfies
        // `target < acc` and the documented last-state fallback fires.
        let d = SparseDist::from_pairs(vec![(0, 5e-324), (1, 5e-324)]);
        let target = max_u * d.total_mass();
        assert_eq!(
            target.to_bits(),
            d.total_mass().to_bits(),
            "u · mass rounds up to the exact total at subnormal scale"
        );
        assert_eq!(d.sample_with(max_u), Some(1), "fallback maps to the last state");
    }

    #[test]
    #[should_panic(expected = "sample_with requires u in [0, 1)")]
    #[cfg(debug_assertions)]
    fn sample_with_rejects_out_of_contract_u() {
        SparseDist::delta(0).sample_with(1.0);
    }

    fn small_chain() -> CsrMatrix {
        // 0 -> {0: .5, 1: .5}, 1 -> {2: 1.0}, 2 -> {2: 1.0}
        CsrMatrix::from_rows(vec![
            vec![(0, 0.5), (1, 0.5)],
            vec![(2, 1.0)],
            vec![(2, 1.0)],
        ])
    }

    #[test]
    fn csr_layout_and_access() {
        let m = small_chain();
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 0.5);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.successors(1), &[2]);
        assert!(m.is_row_stochastic());
    }

    #[test]
    fn from_rows_merges_duplicates_and_drops_zeros() {
        let m = CsrMatrix::from_rows(vec![vec![(1, 0.25), (1, 0.25), (0, 0.0)], vec![]]);
        assert_eq!(m.get(0, 1), 0.5);
        assert_eq!(m.nnz(), 1);
        // Row 0 sums to 0.5, so the matrix is not row-stochastic (the empty
        // second row alone would have been acceptable).
        assert!(!m.is_row_stochastic());
    }

    #[test]
    fn stochastic_from_weights_normalizes_and_fills_empty_rows() {
        let m = CsrMatrix::stochastic_from_weights(vec![vec![(1, 2.0), (2, 6.0)], vec![]]);
        assert!((m.get(0, 1) - 0.25).abs() < 1e-12);
        assert!((m.get(0, 2) - 0.75).abs() < 1e-12);
        assert_eq!(m.get(1, 1), 1.0, "empty row becomes a self-loop");
        assert!(m.is_row_stochastic());
    }

    #[test]
    fn propagate_matches_manual_matrix_vector_product() {
        let m = small_chain();
        let d0 = SparseDist::delta(0);
        let d1 = m.propagate(&d0);
        assert!((d1.prob(0) - 0.5).abs() < 1e-12);
        assert!((d1.prob(1) - 0.5).abs() < 1e-12);
        let d2 = m.propagate(&d1);
        assert!((d2.prob(0) - 0.25).abs() < 1e-12);
        assert!((d2.prob(1) - 0.25).abs() < 1e-12);
        assert!((d2.prob(2) - 0.5).abs() < 1e-12);
        assert!(d2.is_normalized());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small_chain();
        let t = m.transpose();
        assert_eq!(t.get(1, 0), 0.5);
        assert_eq!(t.get(2, 1), 1.0);
        assert_eq!(t.get(2, 2), 1.0);
        let tt = t.transpose();
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert_eq!(m.get(i, j), tt.get(i, j));
            }
        }
    }

    #[test]
    fn identity_propagation_is_noop() {
        let id = CsrMatrix::identity(4);
        let d = SparseDist::from_pairs(vec![(0, 0.3), (3, 0.7)]);
        assert_eq!(id.propagate(&d), d);
    }
}
