//! The sharded UST-tree build must be byte-identical to the serial one:
//! same diamond stream, same R\*-tree shape, same pruning results — at every
//! `build_threads` setting and with or without the reach-geometry memo.

use std::sync::OnceLock;
use ust_generator::{Dataset, ObjectWorkloadConfig, SyntheticNetworkConfig};
use ust_index::{Diamond, UstTree, UstTreeConfig};
use ust_spatial::Point;

/// A synthetic workload large enough that worker chunks are non-trivial and
/// commutes actually repeat, generated once and shared across the tests.
fn dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        let net = SyntheticNetworkConfig { num_states: 600, branching_factor: 8.0, seed: 11 };
        let obj = ObjectWorkloadConfig {
            num_objects: 48,
            lifetime: 50,
            horizon: 160,
            observation_interval: 10,
            lag: 0.5,
            standing_fraction: 0.2,
            seed: 12,
        };
        Dataset::synthetic(&net, &obj, 1.0)
    })
}

fn assert_same_diamond(a: &Diamond, b: &Diamond) {
    assert_eq!(a.object, b.object);
    assert_eq!((a.t_start, a.t_end), (b.t_start, b.t_end));
    // Bit-exact geometry, not approximate: the f64 payloads must be the same
    // computation in the same order.
    assert_eq!(a.mbr.min.map(f64::to_bits), b.mbr.min.map(f64::to_bits));
    assert_eq!(a.mbr.max.map(f64::to_bits), b.mbr.max.map(f64::to_bits));
    match (&a.per_time, &b.per_time) {
        (Some(xs), Some(ys)) => {
            assert_eq!(xs.len(), ys.len());
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.min.map(f64::to_bits), y.min.map(f64::to_bits));
                assert_eq!(x.max.map(f64::to_bits), y.max.map(f64::to_bits));
            }
        }
        (None, None) => {}
        _ => panic!("per-timestamp MBR presence differs"),
    }
}

fn assert_identical_trees(a: &UstTree, b: &UstTree) {
    assert_eq!(a.num_diamonds(), b.num_diamonds());
    assert_eq!(a.num_objects(), b.num_objects());
    for (x, y) in a.diamonds().iter().zip(b.diamonds()) {
        assert_same_diamond(x, y);
    }
    // Same diamond stream + same deterministic STR bulk load = same R*-tree
    // shape: identical overlap streams (traversal order included) for a
    // sweep of time windows.
    for (from, to) in [(0u32, 200u32), (0, 10), (45, 90), (120, 121)] {
        let xs: Vec<usize> = a
            .diamonds_overlapping(from, to)
            .iter()
            .map(|d| d.object as usize)
            .collect();
        let mut ys: Vec<usize> = Vec::new();
        b.for_each_overlapping(from, to, |d| ys.push(d.object as usize));
        assert_eq!(xs, ys, "traversal order differs for window [{from}, {to}]");
    }
}

#[test]
fn sharded_build_is_byte_identical_to_serial() {
    let ds = dataset();
    let serial =
        UstTree::build_with(&ds.database, &UstTreeConfig { build_threads: 1, ..Default::default() });
    assert!(serial.num_diamonds() > 100, "workload must be non-trivial");
    for threads in [2usize, 4] {
        let sharded = UstTree::build_with(
            &ds.database,
            &UstTreeConfig { build_threads: threads, ..Default::default() },
        );
        assert_identical_trees(&serial, &sharded);
    }
}

#[test]
fn pruning_results_are_identical_at_every_thread_count() {
    let ds = dataset();
    let trees: Vec<UstTree> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            UstTree::build_with(
                &ds.database,
                &UstTreeConfig { build_threads: threads, ..Default::default() },
            )
        })
        .collect();
    let times: Vec<u32> = (40..50).collect();
    for (qx, qy, k) in [(0.2, 0.3, 1usize), (0.7, 0.7, 1), (0.5, 0.1, 3)] {
        let q = Point::new(qx, qy);
        let reference = trees[0].prune_knn(&times, |_| q, k);
        for tree in &trees[1..] {
            let result = tree.prune_knn(&times, |_| q, k);
            assert_eq!(reference.candidates, result.candidates);
            assert_eq!(reference.influencers, result.influencers);
            let bits_a: Vec<u64> =
                reference.prune_distances.iter().map(|d| d.to_bits()).collect();
            let bits_b: Vec<u64> = result.prune_distances.iter().map(|d| d.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "pruning distances must be bit-identical");
        }
    }
}

#[test]
fn reach_memo_does_not_change_the_index() {
    let ds = dataset();
    let memoized =
        UstTree::build_with(&ds.database, &UstTreeConfig { build_threads: 1, ..Default::default() });
    let direct = UstTree::build_with(
        &ds.database,
        &UstTreeConfig { build_threads: 1, reach_memo: false, ..Default::default() },
    );
    assert_identical_trees(&memoized, &direct);
    assert!(
        memoized.build_stats().reach_memo_hits > 0,
        "the workload repeats commutes, so the memo must hit"
    );
    assert_eq!(direct.build_stats().reach_memo_hits, 0);
    assert_eq!(
        direct.build_stats().reach_memo_misses,
        memoized.build_stats().segments,
        "without the memo every segment runs its own BFS"
    );
}

#[test]
fn coarse_diamonds_share_the_determinism_guarantee() {
    // per_timestamp_mbrs = false exercises the geometry path that drops the
    // per-time rectangles.
    let ds = dataset();
    let cfg = UstTreeConfig { per_timestamp_mbrs: false, build_threads: 1, ..Default::default() };
    let serial = UstTree::build_with(&ds.database, &cfg);
    let sharded = UstTree::build_with(
        &ds.database,
        &UstTreeConfig { build_threads: 3, ..cfg },
    );
    assert_identical_trees(&serial, &sharded);
    assert!(serial.diamonds().iter().all(|d| d.per_time.is_none()));
}
