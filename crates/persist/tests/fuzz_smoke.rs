//! Bounded deterministic fuzz smoke over the store reader.
//!
//! A fixed-seed [`Mutator`] derives thousands of corrupted inputs from a
//! valid store; [`decode_store`] must return a typed [`StoreError`] or a
//! successfully revalidated store for every one of them — it must never
//! panic and never make an allocation the input cannot back. A second,
//! structure-aware pass re-frames mutated payloads with a *fixed-up*
//! checksum, driving the corruption past the checksum gate into the codec
//! validation layer that plain byte fuzzing rarely reaches.

mod common;

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ust_persist::format::{fnv1a64, ByteReader, ByteWriter, FORMAT_VERSION, MAGIC};
use ust_persist::{decode_store, encode_store, Mutator, StoreContents, StoreError};

/// Mutants per pass; CI runs both passes, so the smoke covers 2 × N inputs.
const MUTANTS: usize = 10_000;

/// A short, stable label for an error variant, for diversity accounting.
fn variant(e: &StoreError) -> &'static str {
    match e {
        StoreError::Io { .. } => "Io",
        StoreError::BadMagic => "BadMagic",
        StoreError::UnsupportedVersion { .. } => "UnsupportedVersion",
        StoreError::Truncated { .. } => "Truncated",
        StoreError::ChecksumMismatch { .. } => "ChecksumMismatch",
        StoreError::SectionOverflow { .. } => "SectionOverflow",
        StoreError::CountOverflow { .. } => "CountOverflow",
        StoreError::Malformed { .. } => "Malformed",
        StoreError::DuplicateSection { .. } => "DuplicateSection",
        StoreError::MissingSection { .. } => "MissingSection",
        StoreError::UnknownSection { .. } => "UnknownSection",
        StoreError::NotFileBacked => "NotFileBacked",
    }
}

/// Decodes one mutant inside a panic guard, recording the error variant.
/// Returns `false` on panic.
fn survives(bytes: &[u8], seen: &mut BTreeSet<&'static str>) -> bool {
    let result = catch_unwind(AssertUnwindSafe(|| decode_store(bytes).map(|_| ()).err()));
    match result {
        Ok(Some(err)) => {
            seen.insert(variant(&err));
            true
        }
        Ok(None) => true, // A mutation can cancel out or hit ignored bytes.
        Err(_) => false,
    }
}

/// Splits a valid store into its section frames: `(id, payload)` pairs.
fn split_frames(bytes: &[u8]) -> Vec<(u32, Vec<u8>)> {
    let mut r = ByteReader::new(bytes, "fixture");
    assert_eq!(r.bytes(MAGIC.len()).unwrap(), MAGIC);
    assert_eq!(r.u32().unwrap(), FORMAT_VERSION);
    let n = r.u32().unwrap();
    (0..n)
        .map(|_| {
            let id = r.u32().unwrap();
            let len = r.u64().unwrap() as usize;
            let _checksum = r.u64().unwrap();
            (id, r.bytes(len).unwrap().to_vec())
        })
        .collect()
}

/// Reassembles a container from frames, computing fresh (valid) checksums.
fn reframe(frames: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(frames.len() as u32);
    for (id, payload) in frames {
        w.u32(*id);
        w.u64(payload.len() as u64);
        w.u64(fnv1a64(payload));
        w.bytes(payload);
    }
    w.into_bytes()
}

#[test]
fn raw_byte_fuzz_never_panics() {
    let w = common::build_workload(20, 4, 6, 3);
    let base = encode_store(&StoreContents {
        database: &w.db,
        index: Some(&w.tree),
        models: &w.models,
    });
    let mut mutator = Mutator::new(0x5EED_F00D);
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut panics = 0usize;
    for _ in 0..MUTANTS {
        let mutant = mutator.mutate(&base);
        if !survives(&mutant, &mut seen) {
            panics += 1;
        }
    }
    assert_eq!(panics, 0, "decode_store panicked on {panics} of {MUTANTS} mutants");
    // Raw mutation must at least trip the outer container checks in several
    // distinct ways; a collapse to one variant means the typed surface died.
    assert!(
        seen.len() >= 3,
        "only {} error variants observed: {seen:?}",
        seen.len()
    );
}

#[test]
fn checksum_fixed_fuzz_reaches_the_codec_layer() {
    let w = common::build_workload(20, 4, 6, 3);
    let base = encode_store(&StoreContents {
        database: &w.db,
        index: Some(&w.tree),
        models: &w.models,
    });
    let frames = split_frames(&base);
    let mut mutator = Mutator::new(0xC0DE_C0DE);
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut panics = 0usize;
    for i in 0..MUTANTS {
        // Corrupt one section's payload, then re-frame with a valid checksum
        // so the mutation survives the integrity gate.
        let victim = i % frames.len();
        let mut mutated = frames.clone();
        mutated[victim].1 = mutator.mutate(&frames[victim].1);
        let container = reframe(&mutated);
        if !survives(&container, &mut seen) {
            panics += 1;
        }
    }
    assert_eq!(panics, 0, "decode_store panicked on {panics} of {MUTANTS} mutants");
    // With checksums fixed up, the codec's own validation must be what
    // rejects the corruption — checksum errors cannot be the whole story.
    assert!(
        seen.iter().any(|v| *v != "ChecksumMismatch"),
        "every mutant died at the checksum gate: {seen:?}"
    );
    assert!(
        seen.len() >= 3,
        "only {} error variants observed: {seen:?}",
        seen.len()
    );
}
