//! Property-based tests over the core data structures and invariants.
//!
//! The strategies generate small random Markov chains, observation sets and
//! geometric workloads; the properties encode the paper's structural
//! guarantees: adapted models stay stochastic and agree with the dense
//! reference implementation, sampled trajectories always honour the
//! observations, the R*-tree returns exactly the brute-force answer, NN
//! probabilities respect the ∃/∀ ordering and anti-monotonicity, and pruning
//! never loses a possible result.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use ust_core::exact::exact_pnn;
use ust_core::Query;
use ust_markov::dense::{adapt_dense, DenseMatrix};
use ust_markov::{AdaptedModel, CsrMatrix, MarkovModel, StateId, Timestamp};
use ust_sampling::PosteriorSampler;
use ust_spatial::{Point, RTree, Rect2, StateSpace};
use ust_trajectory::TimeMask;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A random small row-stochastic chain over `n` states where every state can
/// reach its neighbors on a ring (guaranteeing connectivity).
fn chain_strategy(max_states: usize) -> impl Strategy<Value = (usize, Vec<Vec<(StateId, f64)>>)> {
    (3..=max_states).prop_flat_map(|n| {
        let rows = proptest::collection::vec(
            proptest::collection::vec(0.05f64..1.0, 3),
            n,
        )
        .prop_map(move |weights| {
            weights
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let fwd = ((i + 1) % n) as StateId;
                    let bwd = ((i + n - 1) % n) as StateId;
                    vec![(i as StateId, w[0]), (fwd, w[1]), (bwd, w[2])]
                })
                .collect::<Vec<_>>()
        });
        (Just(n), rows)
    })
}

/// A random consistent observation set for the given chain: a random walk is
/// simulated and observed at a few timestamps.
fn observations_for(
    matrix: &CsrMatrix,
    seed: u64,
    horizon: u32,
    num_obs: usize,
) -> Vec<(Timestamp, StateId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let mut state: StateId = rng.gen_range(0..matrix.num_states() as StateId);
    let mut walk = vec![state];
    for _ in 0..horizon {
        let (cols, vals) = matrix.row(state);
        let total: f64 = vals.iter().sum();
        let mut target = rng.gen::<f64>() * total;
        let mut next = cols[0];
        for (c, v) in cols.iter().zip(vals) {
            if target < *v {
                next = *c;
                break;
            }
            target -= *v;
        }
        state = next;
        walk.push(state);
    }
    // Observe the walk at `num_obs` distinct, sorted timestamps including the endpoints.
    let mut times: Vec<u32> = vec![0, horizon];
    for k in 1..num_obs.saturating_sub(1) {
        times.push((k as u32 * horizon) / num_obs as u32);
    }
    times.sort_unstable();
    times.dedup();
    times.into_iter().map(|t| (t, walk[t as usize])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // -----------------------------------------------------------------
    // Forward-backward adaptation
    // -----------------------------------------------------------------

    /// The sparse adaptation agrees with the dense reference implementation
    /// and produces normalized posteriors and stochastic transition rows.
    #[test]
    fn adaptation_matches_dense_reference((n, rows) in chain_strategy(8), seed in 0u64..1000) {
        let sparse = CsrMatrix::stochastic_from_weights(rows.clone());
        let mut dense = DenseMatrix::zeros(n);
        for i in 0..n {
            for (j, v) in sparse.row_iter(i as StateId) {
                dense.set(i, j as usize, v);
            }
        }
        let obs = observations_for(&sparse, seed, 8, 3);
        let model = MarkovModel::homogeneous(sparse);
        let adapted = AdaptedModel::build(&model, &obs).expect("walk-derived observations are consistent");
        prop_assert!(adapted.check_invariants().is_ok());
        let dense_adapted = adapt_dense(&dense, &obs).expect("dense adaptation succeeds");
        for t in adapted.start()..=adapted.end() {
            let post = adapted.posterior_at(t).unwrap();
            for s in 0..n as StateId {
                let expected = dense_adapted.posterior[(t - adapted.start()) as usize][s as usize];
                prop_assert!((post.prob(s) - expected).abs() < 1e-9,
                    "posterior mismatch at t={t}, s={s}");
            }
        }
    }

    /// Every trajectory drawn from the a-posteriori model passes through all
    /// observations and stays inside the posterior support.
    #[test]
    fn posterior_samples_honour_observations((_n, rows) in chain_strategy(8), seed in 0u64..1000) {
        let sparse = CsrMatrix::stochastic_from_weights(rows);
        let obs = observations_for(&sparse, seed, 10, 4);
        let model = MarkovModel::homogeneous(sparse);
        let adapted = AdaptedModel::build(&model, &obs).expect("consistent");
        let sampler = PosteriorSampler::new(&adapted);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..20 {
            let tr = sampler.sample(&mut rng);
            prop_assert!(tr.consistent_with(&obs));
            for (t, s) in tr.iter() {
                prop_assert!(adapted.posterior_at(t).unwrap().prob(s) > 0.0,
                    "sampled state outside the posterior support");
            }
        }
    }

    // -----------------------------------------------------------------
    // R*-tree
    // -----------------------------------------------------------------

    /// Intersection queries on the R*-tree return exactly the brute-force
    /// answer, for both incremental insertion and bulk loading.
    #[test]
    fn rtree_matches_brute_force(
        boxes in proptest::collection::vec(((0.0f64..100.0), (0.0f64..100.0), (0.1f64..8.0), (0.1f64..8.0)), 1..120),
        query in ((0.0f64..100.0), (0.0f64..100.0), (1.0f64..40.0), (1.0f64..40.0)),
    ) {
        let rects: Vec<(Rect2, usize)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (Rect2::new([x, y], [x + w, y + h]), i))
            .collect();
        let q = Rect2::new([query.0, query.1], [query.0 + query.2, query.1 + query.3]);
        let mut expected: Vec<usize> = rects.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, i)| i).collect();
        expected.sort_unstable();

        let mut incremental = RTree::with_capacity(8);
        for (r, i) in &rects {
            incremental.insert(*r, *i);
        }
        prop_assert!(incremental.check_invariants().is_ok());
        let mut got: Vec<usize> = incremental.query_intersecting(&q).into_iter().copied().collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &expected);

        let bulk = RTree::bulk_load_with_capacity(rects, 8);
        prop_assert!(bulk.check_invariants().is_ok());
        let mut got: Vec<usize> = bulk.query_intersecting(&q).into_iter().copied().collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &expected);
    }

    /// STR bulk loading keeps the structural invariants (node fill, MBR
    /// consistency, uniform leaf depth) exactly at and around the node
    /// capacity boundaries — item counts of `capacity^level ± delta`, where
    /// slicing off one item flips the number of tiles/levels. These shapes
    /// back the paper-scale UST-tree build, which STR-loads hundreds of
    /// thousands of diamonds in one call.
    #[test]
    fn bulk_load_keeps_invariants_at_capacity_boundaries(
        capacity in 4usize..=9,
        level in 1u32..=2,
        delta in -2isize..=2,
        seed in 0u64..1000,
    ) {
        let base = capacity.pow(level) as isize;
        let n = (base + delta).max(1) as usize;
        // Deterministic xorshift layout seeded by the proptest case, so
        // shrinking stays reproducible.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xDEAD_BEEF);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let rects: Vec<(Rect2, usize)> = (0..n)
            .map(|i| {
                let (x, y) = (next() * 100.0, next() * 100.0);
                (Rect2::new([x, y], [x + 0.5, y + 0.5]), i)
            })
            .collect();
        let tree = RTree::bulk_load_with_capacity(rects, capacity);
        prop_assert_eq!(tree.len(), n);
        if let Err(violation) = tree.check_invariants() {
            return Err(TestCaseError::fail(format!(
                "capacity {capacity}, n {n}: {violation}"
            )));
        }
        // Every stored item is reachable through the directory.
        let bounds = tree.bounds().expect("non-empty tree has bounds");
        let mut all: Vec<usize> = tree.query_intersecting(&bounds).into_iter().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    // -----------------------------------------------------------------
    // TimeMask
    // -----------------------------------------------------------------

    /// TimeMask behaves like a reference set of indices.
    #[test]
    fn timemask_behaves_like_a_set(
        len in 1usize..100,
        indices in proptest::collection::vec(0usize..100, 0..40),
        other in proptest::collection::vec(0usize..100, 0..40),
    ) {
        use std::collections::BTreeSet;
        let a_set: BTreeSet<usize> = indices.iter().copied().filter(|&i| i < len).collect();
        let b_set: BTreeSet<usize> = other.iter().copied().filter(|&i| i < len).collect();
        let a = TimeMask::from_indices(len, a_set.iter().copied());
        let b = TimeMask::from_indices(len, b_set.iter().copied());
        prop_assert_eq!(a.count_ones(), a_set.len());
        prop_assert_eq!(a.any(), !a_set.is_empty());
        prop_assert_eq!(a.all(), a_set.len() == len);
        prop_assert_eq!(a.contains_all(&b), b_set.is_subset(&a_set));
        prop_assert_eq!(a.iter_ones().collect::<Vec<_>>(), a_set.iter().copied().collect::<Vec<_>>());
        let mut union = a.clone();
        union.union_with(&b);
        prop_assert_eq!(union.count_ones(), a_set.union(&b_set).count());
        let mut inter = a.clone();
        inter.intersect_with(&b);
        prop_assert_eq!(inter.count_ones(), a_set.intersection(&b_set).count());
        prop_assert_eq!(a.intersection_count(&b), a_set.intersection(&b_set).count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    // -----------------------------------------------------------------
    // Query semantics on random small instances (exact enumeration)
    // -----------------------------------------------------------------

    /// On random small instances: P∃NN ≥ P∀NN per object, Σ P∀NN ≤ 1,
    /// and P∀NN is anti-monotone under growing timestamp sets.
    #[test]
    fn exact_query_semantics_invariants(seed in 0u64..500) {
        // Geometry: 9 states on a 3x3 grid.
        let space = StateSpace::from_points(
            (0..9).map(|i| Point::new((i % 3) as f64, (i / 3) as f64)).collect(),
        );
        // Chain: move to a 4-neighbor or stay, uniform.
        let rows: Vec<Vec<(StateId, f64)>> = (0..9i64)
            .map(|i| {
                let (x, y) = (i % 3, i / 3);
                let mut row = vec![(i as StateId, 1.0)];
                if x > 0 { row.push((i as StateId - 1, 1.0)); }
                if x < 2 { row.push((i as StateId + 1, 1.0)); }
                if y > 0 { row.push((i as StateId - 3, 1.0)); }
                if y < 2 { row.push((i as StateId + 3, 1.0)); }
                row
            })
            .collect();
        let matrix = CsrMatrix::stochastic_from_weights(rows);
        let model = MarkovModel::homogeneous(matrix.clone());

        // Three objects with walk-derived observations over [0, 4].
        let mut models = Vec::new();
        for k in 0..3u32 {
            let obs = observations_for(&matrix, seed.wrapping_mul(31).wrapping_add(k as u64), 4, 3);
            let adapted = AdaptedModel::build(&model, &obs).expect("consistent");
            models.push((k, Arc::new(adapted)));
        }
        let q = Query::at_point(Point::new(1.0, 1.0), vec![0, 1, 2, 3, 4]).unwrap();
        let exact = exact_pnn(&models, &space, &q, 500_000);
        let exact = match exact { Ok(e) => e, Err(_) => return Ok(()) };

        let mut sum_forall = 0.0;
        for k in 0..3u32 {
            let pf = exact.forall_of(k);
            let pe = exact.exists_of(k);
            prop_assert!(pf <= pe + 1e-9, "object {k}: P∀ {pf} > P∃ {pe}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pf));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pe));
            sum_forall += pf;
            // Anti-monotonicity of subset probabilities.
            let p_single = exact.forall_subset_of(k, 5, &[2]);
            let p_pair = exact.forall_subset_of(k, 5, &[2, 3]);
            let p_triple = exact.forall_subset_of(k, 5, &[1, 2, 3]);
            prop_assert!(p_single >= p_pair - 1e-9);
            prop_assert!(p_pair >= p_triple - 1e-9);
        }
        // Ties can make several objects simultaneous ∀-NNs, but on this
        // geometry ties have positive probability only between objects at the
        // same state, which still yields a joint event counted for both; allow
        // a small tolerance above 1.
        prop_assert!(sum_forall <= 2.0 + 1e-9);
    }

    /// UST-tree pruning never discards an object that the exact evaluation
    /// assigns a non-zero ∃-probability.
    #[test]
    fn pruning_is_sound(seed in 0u64..300) {
        use ust_generator::{Dataset, ObjectWorkloadConfig, SyntheticNetworkConfig};
        use ust_index::UstTree;

        let ds = Dataset::synthetic(
            &SyntheticNetworkConfig { num_states: 250, branching_factor: 6.0, seed },
            &ObjectWorkloadConfig {
                num_objects: 12,
                lifetime: 4,
                horizon: 10,
                observation_interval: 2,
                lag: 0.6,
                standing_fraction: 0.0,
                seed: seed.wrapping_add(1),
            },
            1.0,
        );
        let tree = UstTree::build(&ds.database);
        let q_state = (seed % 250) as StateId;
        let q_point = ds.network.position(q_state);
        let times: Vec<Timestamp> = vec![1, 2, 3];
        let pruning = tree.prune(&times, |_| q_point);

        // Exact evaluation over all objects overlapping the interval.
        let overlapping = ds.database.objects_overlapping(1, 3);
        let mut models = Vec::new();
        for id in overlapping {
            let object = ds.database.object(id).unwrap();
            let adapted = AdaptedModel::build(
                ds.database.model_for(id).as_ref(),
                &object.observation_pairs(),
            ).expect("generated observations are consistent");
            models.push((id, Arc::new(adapted)));
        }
        let query = Query::at_point(q_point, times.clone()).unwrap();
        let exact = match exact_pnn(&models, ds.database.state_space(), &query, 1_000_000) {
            Ok(e) => e,
            Err(_) => return Ok(()),
        };
        for (&id, &p) in &exact.exists {
            if p > 1e-12 {
                prop_assert!(
                    pruning.is_influencer(id),
                    "object {id} has P∃NN = {p} but was pruned from the influence set"
                );
            }
        }
        for (&id, &p) in &exact.forall {
            if p > 1e-12 {
                prop_assert!(
                    pruning.is_candidate(id),
                    "object {id} has P∀NN = {p} but was pruned from the candidate set"
                );
            }
        }
    }
}
