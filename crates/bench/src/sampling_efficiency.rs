//! Sampling-efficiency comparison (Figure 10 of the paper).
//!
//! Measures, as a function of the number of observations per object, how many
//! trajectory generations are required to obtain a single valid sample:
//!
//! * **TS1** — full-trajectory rejection sampling against the a-priori chain
//!   (expected attempts grow exponentially with the number of observations),
//! * **TS2** — segment-wise rejection sampling (attempts grow linearly),
//! * **FB**  — the forward–backward a-posteriori sampler of the paper, which
//!   needs exactly one attempt per valid sample.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ust_generator::{ObjectWorkloadConfig, SyntheticNetworkConfig};
use ust_markov::AdaptedModel;
use ust_sampling::{PosteriorSampler, RejectionSampler, SegmentedSampler};

/// Measured attempt counts for one number of observations.
#[derive(Debug, Clone, Copy)]
pub struct SamplingEfficiencyRow {
    /// Number of observations per object.
    pub observations: usize,
    /// Mean attempts per valid trajectory for the full rejection sampler.
    pub ts1_attempts: f64,
    /// Mean attempts per valid trajectory for the segment-wise sampler.
    pub ts2_attempts: f64,
    /// Attempts per valid trajectory for the a-posteriori sampler (always 1).
    pub fb_attempts: f64,
    /// Fraction of TS1 runs that exhausted the attempt budget.
    pub ts1_timeouts: f64,
}

/// Configuration of the sampling-efficiency experiment.
#[derive(Debug, Clone, Copy)]
pub struct SamplingEfficiencyConfig {
    /// Number of states of the synthetic network the objects move on.
    pub num_states: usize,
    /// Numbers of observations to sweep over.
    pub max_observations: usize,
    /// Number of objects averaged per sweep point.
    pub trials: usize,
    /// Attempt budget for the rejection samplers.
    pub attempt_cap: u64,
    /// Time between observations.
    pub observation_interval: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingEfficiencyConfig {
    fn default() -> Self {
        SamplingEfficiencyConfig {
            num_states: 2_000,
            max_observations: 6,
            trials: 5,
            attempt_cap: 200_000,
            observation_interval: 8,
            seed: 0,
        }
    }
}

/// Runs the experiment: one row per observation count in `2..=max_observations`.
pub fn measure_sampling_efficiency(cfg: &SamplingEfficiencyConfig) -> Vec<SamplingEfficiencyRow> {
    let network = SyntheticNetworkConfig {
        num_states: cfg.num_states,
        branching_factor: 8.0,
        seed: cfg.seed,
    }
    .generate();
    let model = network.distance_weighted_model(1.0);
    let mut rows = Vec::new();
    for num_obs in 2..=cfg.max_observations {
        let lifetime = (num_obs as u32 - 1) * cfg.observation_interval;
        let obj_cfg = ObjectWorkloadConfig {
            num_objects: cfg.trials,
            lifetime,
            horizon: lifetime + 1,
            observation_interval: cfg.observation_interval,
            lag: 0.5,
            standing_fraction: 0.0,
            seed: cfg.seed.wrapping_add(num_obs as u64),
        };
        let objects = ust_generator::objects::generate_objects(&network, &obj_cfg, 0);
        let mut ts1_total = 0.0;
        let mut ts2_total = 0.0;
        let mut ts1_timeouts = 0usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1000 + num_obs as u64));
        for g in &objects {
            let obs = g.object.observation_pairs();
            let ts1 = RejectionSampler::new(&model, &obs).sample_one(&mut rng, cfg.attempt_cap);
            if !ts1.succeeded() {
                ts1_timeouts += 1;
            }
            ts1_total += ts1.attempts as f64;
            let ts2 = SegmentedSampler::new(&model, &obs).sample_one(&mut rng, cfg.attempt_cap);
            ts2_total += ts2.attempts as f64;
            // The a-posteriori sampler needs exactly one attempt; exercise it
            // to confirm the sample is valid.
            let adapted = AdaptedModel::build(&model, &obs).expect("observations are consistent");
            let sample = PosteriorSampler::new(&adapted).sample(&mut rng);
            assert!(sample.consistent_with(&obs));
        }
        let n = objects.len().max(1) as f64;
        rows.push(SamplingEfficiencyRow {
            observations: num_obs,
            ts1_attempts: ts1_total / n,
            ts2_attempts: ts2_total / n,
            fb_attempts: 1.0,
            ts1_timeouts: ts1_timeouts as f64 / n,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_grow_with_observation_count() {
        let cfg = SamplingEfficiencyConfig {
            num_states: 400,
            max_observations: 4,
            trials: 3,
            attempt_cap: 20_000,
            observation_interval: 6,
            seed: 11,
        };
        let rows = measure_sampling_efficiency(&cfg);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.ts1_attempts >= 1.0);
            assert!(row.ts2_attempts >= 1.0);
            assert_eq!(row.fb_attempts, 1.0);
            assert!(
                row.ts1_attempts >= row.fb_attempts && row.ts2_attempts >= row.fb_attempts,
                "the a-posteriori sampler is never beaten"
            );
        }
        // More observations must not make TS1 cheaper (allow small noise at
        // this tiny trial count by comparing first vs last).
        assert!(rows.last().unwrap().ts1_attempts >= rows.first().unwrap().ts1_attempts * 0.5);
    }
}
