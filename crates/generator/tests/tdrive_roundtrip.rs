//! Property-based round-trip tests for the T-Drive ingestion pipeline.
//!
//! A random network walk is rendered to T-Drive CSV by the fixture writer and
//! re-ingested through parse → map-match. The properties:
//!
//! * **Exactness** — when every fix sits exactly on a state position (up to
//!   the writer's 5-decimal quantisation), the map-matched observations equal
//!   the original ones bit-for-bit: same object ids, same tics, same states.
//! * **Jitter robustness** — under per-fix GPS noise bounded below half the
//!   grid spacing, every fix still snaps to the original state and the
//!   snapped state stays within the configured snap radius of the jittered
//!   position.
//!
//! The networks are clean grids (`jitter = 0`, no removals) so the minimum
//! state spacing — and with it the safe noise bound — is known exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ust_generator::map_match::{map_match, GeoFrame, MapMatchConfig};
use ust_generator::tdrive::{self, RawFix};
use ust_generator::{Network, ObjectId, RoadNetworkConfig, StateId, Timestamp};
use ust_trajectory::UncertainObject;

/// Epoch of tic 0 in the rendered fixtures.
const ORIGIN: i64 = 1_201_900_000;
/// Seconds per tic, as in the paper's real-data discretisation.
const TICK_SECONDS: i64 = 10;

/// A clean `w × h` grid network: block sizes are exactly `1/w` and `1/h` and
/// the minimum distance between distinct states is `min(1/w, 1/h)`.
fn clean_grid(w: usize, h: usize) -> Network {
    RoadNetworkConfig {
        grid_width: w,
        grid_height: h,
        jitter: 0.0,
        removal_fraction: 0.0,
        seed: 0,
    }
    .generate()
}

/// A random walk on the network observed every `interval` tics: each tic the
/// walker moves to a uniformly chosen neighbor or stays, so consecutive
/// observations are always reachable within their tic gap.
fn random_walk_observations(
    network: &Network,
    rng: &mut StdRng,
    num_obs: usize,
    interval: u32,
) -> Vec<(Timestamp, StateId)> {
    let mut state = rng.gen_range(0..network.num_states() as StateId);
    let mut out = vec![(0, state)];
    for k in 1..num_obs {
        for _ in 0..interval {
            let neighbors = network.neighbors(state);
            let choice = rng.gen_range(0..=neighbors.len());
            if choice < neighbors.len() {
                state = neighbors[choice].0;
            }
        }
        out.push((k as Timestamp * interval, state));
    }
    out
}

/// Renders observations of several walkers into T-Drive CSV, optionally
/// applying per-fix lon/lat noise bounded by `noise` (in network units,
/// per axis).
fn render_walks(
    network: &Network,
    walks: &[(ObjectId, Vec<(Timestamp, StateId)>)],
    frame: &GeoFrame,
    noise: f64,
    rng: &mut StdRng,
) -> String {
    let mut csv = String::new();
    for (id, obs) in walks {
        let object = UncertainObject::from_pairs(*id, obs.clone()).expect("sorted tics");
        if noise == 0.0 {
            csv.push_str(&tdrive::render_workload(
                network.space(),
                std::slice::from_ref(&object),
                frame,
                TICK_SECONDS,
                ORIGIN,
            ));
        } else {
            for (t, s) in obs {
                let p = network.position(*s);
                let jittered = ust_spatial::Point::new(
                    p.x + (rng.gen::<f64>() * 2.0 - 1.0) * noise,
                    p.y + (rng.gen::<f64>() * 2.0 - 1.0) * noise,
                );
                let (lon, lat) = frame.to_lonlat(&jittered);
                let fix = RawFix {
                    object: *id,
                    seconds: ORIGIN + i64::from(*t) * TICK_SECONDS,
                    lon,
                    lat,
                };
                csv.push_str(&tdrive::format_fix(&fix));
                csv.push('\n');
            }
        }
    }
    csv
}

fn match_config(frame: GeoFrame, snap_radius: f64) -> MapMatchConfig {
    MapMatchConfig {
        snap_radius,
        tick_seconds: TICK_SECONDS,
        origin_seconds: Some(ORIGIN),
        frame: Some(frame),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Fixes on state positions round-trip exactly: render → parse → match
    /// reproduces every object's observation set bit-for-bit.
    #[test]
    fn on_state_fixes_roundtrip_exactly(
        w in 4usize..=9,
        h in 4usize..=9,
        num_objects in 1usize..=5,
        num_obs in 2usize..=10,
        interval in 1u32..=5,
        seed in 0u64..1_000,
    ) {
        let network = clean_grid(w, h);
        let frame = GeoFrame::beijing();
        let mut rng = StdRng::seed_from_u64(seed);
        let walks: Vec<(ObjectId, Vec<(Timestamp, StateId)>)> = (0..num_objects)
            .map(|i| {
                (i as ObjectId + 1, random_walk_observations(&network, &mut rng, num_obs, interval))
            })
            .collect();
        let csv = render_walks(&network, &walks, &frame, 0.0, &mut rng);
        let load = tdrive::parse_str(&csv);
        prop_assert!(load.errors.is_empty(), "writer output must parse cleanly: {:?}", load.errors);
        prop_assert_eq!(load.fixes.len(), num_objects * num_obs);

        let out = map_match(&network, &load.fixes, &match_config(frame, 0.05));
        prop_assert_eq!(out.stats.dropped_fixes(), 0);
        prop_assert_eq!(out.objects.len(), num_objects);
        for (matched, (id, obs)) in out.objects.iter().zip(&walks) {
            prop_assert_eq!(matched.object.id(), *id);
            prop_assert_eq!(&matched.object.observation_pairs(), obs);
            // The interpolated path passes through every observation.
            prop_assert!(matched.path.consistent_with(obs));
        }
    }

    /// Under bounded GPS jitter every fix still snaps to the original state,
    /// and the snapped state lies within the snap radius of the fix.
    #[test]
    fn jittered_fixes_stay_within_snap_radius(
        w in 4usize..=9,
        h in 4usize..=9,
        num_obs in 2usize..=10,
        interval in 1u32..=5,
        seed in 0u64..1_000,
    ) {
        let network = clean_grid(w, h);
        let frame = GeoFrame::beijing();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37).wrapping_add(1));
        let walk = random_walk_observations(&network, &mut rng, num_obs, interval);
        // Per-axis noise strictly below half the smaller block keeps the
        // original state nearest; the writer's 5-decimal quantisation adds
        // at most ~1e-5 network units on this half-degree frame.
        let block = (1.0 / w as f64).min(1.0 / h as f64);
        let noise = 0.4 * block;
        let snap_radius = 0.75 * block;
        let walks = vec![(7 as ObjectId, walk.clone())];
        let csv = render_walks(&network, &walks, &frame, noise, &mut rng);
        let load = tdrive::parse_str(&csv);
        prop_assert!(load.errors.is_empty());

        let out = map_match(&network, &load.fixes, &match_config(frame, snap_radius));
        prop_assert_eq!(out.stats.dropped_fixes(), 0);
        prop_assert_eq!(out.objects.len(), 1);
        prop_assert_eq!(&out.objects[0].object.observation_pairs(), &walk);
        // Snap-radius contract: every matched state is within the radius of
        // the (jittered) fix it was snapped from.
        for (fix, obs) in load.fixes.iter().zip(out.objects[0].object.observations()) {
            let p = frame.to_network(fix.lon, fix.lat);
            let d = network.position(obs.state).dist(&p);
            prop_assert!(d <= snap_radius, "snap distance {d} exceeds radius {snap_radius}");
        }
    }

    /// The datetime codec round-trips arbitrary epochs (a prerequisite for
    /// lossless tic reconstruction).
    #[test]
    fn datetime_codec_roundtrips(seconds in 0i64..4_102_444_800) {
        let rendered = tdrive::format_datetime(seconds);
        prop_assert_eq!(tdrive::parse_datetime(&rendered), Some(seconds));
    }
}
