//! Micro-benchmark: PCNN queries (Algorithm 1) at different thresholds.
//!
//! Small thresholds force the Apriori lattice towards the full subset lattice
//! of the query interval, which is the worst case the paper discusses in
//! Section 4.3. The `miner` group isolates the lattice itself: the vertical
//! bitset miner (`vertical_timesets`, one AND + popcount per candidate)
//! against the retained horizontal reference (`apriori_timesets`, one
//! containment scan over all per-world masks per candidate) on identical
//! world data.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ust_bench::args::RunScale;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_core::pcnn::{apriori_timesets, vertical_timesets, PcnnConfig, WorldSet};
use ust_core::{EngineConfig, Query, QueryEngine};
use ust_trajectory::TimeMask;

fn bench_pcnn(c: &mut Criterion) {
    let mut params = ScaleParams::for_scale(RunScale::Quick);
    params.num_queries = 2;
    params.interval_len = 8;
    let dataset = build_synthetic(&params, 2_000, 8.0, 150, 13);
    let workload = build_queries(&dataset, &params, 13);
    let engine = QueryEngine::new(
        &dataset.database,
        EngineConfig { num_samples: 300, ..Default::default() },
    );
    engine.prepare_all().expect("adaptation succeeds");
    let spec = &workload.queries[0];
    let query = Query::at_point(spec.location, spec.times.iter().copied()).unwrap();

    let mut group = c.benchmark_group("pcnn");
    group.sample_size(10);
    for tau in [0.1, 0.5, 0.9] {
        group.bench_function(format!("pcnn_tau_{tau}"), |b| {
            b.iter(|| engine.pcnn(&query, tau).unwrap())
        });
    }
    group.bench_function("pc2nn_tau_0.5", |b| {
        b.iter(|| engine.pcknn(&query, 2, 0.5).unwrap())
    });
    group.finish();
}

/// Lattice-only comparison on synthetic world data: 10 timestamps over 2 000
/// worlds with correlated per-timestamp NN membership, dense enough that the
/// τ = 0.1 lattice approaches the full subset lattice.
fn bench_miner(c: &mut Criterion) {
    let num_times = 10usize;
    let num_worlds = 2_000usize;
    let mut rng = StdRng::seed_from_u64(29);
    let masks: Vec<TimeMask> = (0..num_worlds)
        .map(|_| {
            // Each world is "good" or "bad" for the object; good worlds are NN
            // almost everywhere, which sustains deep lattice levels.
            let density = if rng.gen::<f64>() < 0.5 { 0.9 } else { 0.2 };
            TimeMask::from_indices(
                num_times,
                (0..num_times).filter(|_| rng.gen::<f64>() < density),
            )
        })
        .collect();
    let worldset = WorldSet::from_world_masks(num_times, &masks);

    let mut group = c.benchmark_group("miner");
    group.sample_size(10);
    for tau in [0.1, 0.5] {
        let cfg = PcnnConfig::new(tau);
        group.bench_function(format!("vertical_tau_{tau}"), |b| {
            b.iter(|| vertical_timesets(&worldset, &cfg))
        });
        group.bench_function(format!("reference_tau_{tau}"), |b| {
            b.iter(|| apriori_timesets(&masks, num_times, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pcnn, bench_miner);
criterion_main!(benches);
