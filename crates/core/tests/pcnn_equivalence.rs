//! Equivalence and determinism tests for the vertical PCNN miner.
//!
//! The vertical bitset miner (`vertical_timesets` over a `WorldSet`) must be
//! indistinguishable from the retained reference implementation
//! (`apriori_timesets` over horizontal per-world masks): byte-identical
//! qualifying sets, probabilities and lattice counters, across random world
//! distributions, thresholds and the maximal-only switch. On top of that, the
//! engine's allocation-free sampling loop must reproduce exactly what the old
//! `NnTimeProfile`-based loop computed, and `pcnn_threads` must never change
//! query output.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ust_core::pcnn::{apriori_timesets, vertical_timesets, PcnnConfig, WorldSet};
use ust_core::{EngineConfig, PcnnOutcome, Query, QueryEngine};
use ust_markov::{CsrMatrix, MarkovModel, StateId};
use ust_sampling::WorldSampler;
use ust_spatial::{Point, StateSpace};
use ust_trajectory::{NnTimeProfile, TimeMask, TrajectoryDatabase};

/// Thresholds the equivalence sweep checks, including values whose product
/// with small world counts sits exactly on (or numerically near) an integer.
const TAUS: [f64; 4] = [0.1, 0.3, 0.5, 0.9];

#[test]
fn vertical_miner_matches_reference_on_random_worldsets() {
    let mut rng = StdRng::seed_from_u64(0x5eed_ca11);
    for trial in 0..60 {
        let num_times = rng.gen_range(1usize..=8);
        let num_worlds = rng.gen_range(1usize..=130);
        // Mix dense and sparse membership so lattices of very different
        // depths are exercised.
        let density = [0.15, 0.4, 0.7, 0.95][trial % 4];
        let masks: Vec<TimeMask> = (0..num_worlds)
            .map(|_| {
                TimeMask::from_indices(
                    num_times,
                    (0..num_times).filter(|_| rng.gen::<f64>() < density),
                )
            })
            .collect();
        let worldset = WorldSet::from_world_masks(num_times, &masks);
        for tau in TAUS {
            for maximal_only in [false, true] {
                let cfg = PcnnConfig { tau, maximal_only };
                let reference = apriori_timesets(&masks, num_times, &cfg);
                let vertical = vertical_timesets(&worldset, &cfg);
                assert_eq!(
                    vertical.sets, reference.sets,
                    "sets diverged (trial {trial}, tau {tau}, maximal {maximal_only}, \
                     |T| {num_times}, worlds {num_worlds})"
                );
                assert_eq!(
                    vertical.candidate_sets_evaluated, reference.candidate_sets_evaluated,
                    "lattice explored a different number of candidates (trial {trial})"
                );
                assert_eq!(vertical.max_level, reference.max_level, "trial {trial}");
                assert_eq!(vertical.frontier_peak, reference.frontier_peak, "trial {trial}");
            }
        }
    }
}

/// A small ring-walk database with enough uncertainty that PCNN lattices get
/// several levels deep.
fn ring_db(num_states: usize, num_objects: u32, gap: u32) -> TrajectoryDatabase {
    let points: Vec<Point> = (0..num_states)
        .map(|i| {
            let a = (i as f64) / (num_states as f64) * std::f64::consts::TAU;
            Point::new(a.cos(), a.sin())
        })
        .collect();
    let space = Arc::new(StateSpace::from_points(points));
    let rows: Vec<Vec<(StateId, f64)>> = (0..num_states)
        .map(|i| {
            let fwd = ((i + 1) % num_states) as StateId;
            let bwd = ((i + num_states - 1) % num_states) as StateId;
            vec![(bwd, 0.25), (i as StateId, 0.5), (fwd, 0.25)]
        })
        .collect();
    let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::from_rows(rows)));
    let objects = (1..=num_objects)
        .map(|id| {
            let start = ((id as usize * 5) % num_states) as StateId;
            let end = ((start as usize + 2) % num_states) as StateId;
            ust_trajectory::UncertainObject::from_pairs(id, vec![(0, start), (gap, end)])
                .expect("observations are sorted")
        })
        .collect();
    TrajectoryDatabase::with_objects(space, model, objects)
}

/// Re-runs the engine's Monte-Carlo pass the way the pre-vertical
/// implementation did — `sample_world` + `NnTimeProfile` + per-world masks +
/// `apriori_timesets` — and checks that the engine's outcome is identical.
#[test]
fn engine_sampling_matches_the_mask_based_reference() {
    let gap = 6u32;
    let db = ring_db(24, 8, gap);
    let num_samples = 150usize;
    let seed = 42u64;
    let tau = 0.1;
    // No UST-tree: every covering object is a ∀-candidate, so the lattice
    // mines real work instead of an empty candidate set.
    let engine = QueryEngine::new(
        &db,
        EngineConfig { num_samples, seed, use_index: false, ..Default::default() },
    );
    let query = Query::at_point(Point::new(1.1, 0.1), 0..=gap).expect("valid query");
    let outcome = engine.pcnn(&query, tau).expect("query succeeds");
    let forall = engine.pforall_nn(&query, 0.0).expect("query succeeds");
    let exists = engine.pexists_nn(&query, 0.0).expect("query succeeds");

    // Reference pass: identical seed, identical influencer order.
    let (candidates, influencers) = engine.filter(&query).expect("filter succeeds");
    let prepared = engine.prepare_objects(&influencers).expect("adaptation succeeds");
    let sampler = WorldSampler::from_models(prepared.models);
    let times = query.times();
    let space = db.state_space();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidate_masks: Vec<(u32, Vec<TimeMask>)> =
        candidates.iter().map(|&id| (id, Vec::with_capacity(num_samples))).collect();
    let mut exists_counts: Vec<(u32, usize)> =
        influencers.iter().map(|&id| (id, 0)).collect();
    for _ in 0..num_samples {
        let world = sampler.sample_world(&mut rng);
        let profile = NnTimeProfile::compute(world.trajectories(), space, times, |t| {
            query.position_at(t).expect("static query")
        });
        for (id, count) in exists_counts.iter_mut() {
            if profile.mask(*id).map(|m| m.any()).unwrap_or(false) {
                *count += 1;
            }
        }
        for (id, masks) in candidate_masks.iter_mut() {
            masks.push(
                profile.mask(*id).cloned().unwrap_or_else(|| TimeMask::new(times.len())),
            );
        }
    }

    // P∀NN / P∃NN probabilities must match exactly.
    for (id, masks) in &candidate_masks {
        let hits = masks.iter().filter(|m| m.all()).count();
        let expected = hits as f64 / num_samples as f64;
        assert_eq!(forall.probability_of(*id), if expected > 0.0 { expected } else { 0.0 });
    }
    for (id, hits) in &exists_counts {
        let expected = *hits as f64 / num_samples as f64;
        assert_eq!(exists.probability_of(*id), if expected > 0.0 { expected } else { 0.0 });
    }

    // PCNN sets, probabilities and per-object counters must match exactly.
    let cfg = PcnnConfig::new(tau);
    let mut total_evaluated = 0usize;
    for (id, masks) in &candidate_masks {
        let reference = apriori_timesets(masks, times.len(), &cfg);
        total_evaluated += reference.candidate_sets_evaluated;
        let expected: Vec<(Vec<u32>, f64)> = reference
            .sets
            .iter()
            .map(|(indices, p)| {
                (indices.iter().map(|&i| times[i]).collect::<Vec<_>>(), *p)
            })
            .collect();
        match outcome.sets_of(*id) {
            Some(sets) => {
                assert_eq!(sets, expected.as_slice(), "object {id} sets diverged");
                let result = outcome.results.iter().find(|r| r.object == *id).unwrap();
                assert_eq!(result.candidate_sets_evaluated, reference.candidate_sets_evaluated);
            }
            None => assert!(expected.is_empty(), "object {id} missing from the outcome"),
        }
    }
    assert_eq!(outcome.candidate_sets_evaluated, total_evaluated);
    assert!(outcome.max_level() >= 1, "the lattice qualified at least singletons");
    assert!(outcome.frontier_peak() >= 1);
}

fn assert_same_outcome(a: &PcnnOutcome, b: &PcnnOutcome) {
    assert_eq!(a.results.len(), b.results.len());
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.object, rb.object);
        assert_eq!(ra.sets, rb.sets);
        assert_eq!(ra.candidate_sets_evaluated, rb.candidate_sets_evaluated);
    }
    assert_eq!(a.candidate_sets_evaluated, b.candidate_sets_evaluated);
    assert_eq!(a.max_level(), b.max_level());
    assert_eq!(a.frontier_peak(), b.frontier_peak());
}

#[test]
fn pcnn_output_is_identical_at_every_thread_count() {
    let gap = 6u32;
    let db = ring_db(24, 10, gap);
    let query = Query::at_point(Point::new(1.1, 0.1), 0..=gap).expect("valid query");
    let outcomes: Vec<PcnnOutcome> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let engine = QueryEngine::new(
                &db,
                EngineConfig {
                    num_samples: 120,
                    seed: 7,
                    pcnn_threads: threads,
                    adaptation_threads: threads,
                    use_index: false,
                    ..Default::default()
                },
            );
            engine.pcnn(&query, 0.2).expect("query succeeds")
        })
        .collect();
    assert!(
        !outcomes[0].results.is_empty(),
        "the scenario must actually produce qualifying sets"
    );
    assert_same_outcome(&outcomes[0], &outcomes[1]);
    assert_same_outcome(&outcomes[0], &outcomes[2]);
}
