//! The UST-tree: diamond approximations indexed in an R\*-tree.

use crate::diamond::Diamond;
use crate::pruning::{BoundsTable, PruningResult};
use crate::Timestamp;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use ust_markov::reachability::ReachabilityIndex;
use ust_markov::MarkovModel;
use ust_spatial::{Point, RTree, Rect3};
use ust_trajectory::TrajectoryDatabase;

/// Build-time configuration of the UST-tree.
#[derive(Debug, Clone, Copy)]
pub struct UstTreeConfig {
    /// Keep per-timestamp MBRs inside each diamond for tighter pruning bounds
    /// (the dashed rectangles of Figure 5). Costs memory proportional to the
    /// total number of covered timestamps.
    pub per_timestamp_mbrs: bool,
    /// Node capacity of the underlying R\*-tree.
    pub rtree_capacity: usize,
}

impl Default for UstTreeConfig {
    fn default() -> Self {
        UstTreeConfig { per_timestamp_mbrs: true, rtree_capacity: 32 }
    }
}

/// The UST-tree over a trajectory database.
#[derive(Debug)]
pub struct UstTree {
    diamonds: Vec<Diamond>,
    rtree: RTree<3, usize>,
    num_objects: usize,
}

impl UstTree {
    /// Builds the index over all objects of the database with default
    /// configuration.
    pub fn build(db: &TrajectoryDatabase) -> Self {
        Self::build_with(db, &UstTreeConfig::default())
    }

    /// Builds the index with an explicit configuration.
    pub fn build_with(db: &TrajectoryDatabase, cfg: &UstTreeConfig) -> Self {
        // Reachability indexes are derived from a-priori models; objects
        // sharing a model (the common case) share the reachability index.
        let mut reach_cache: FxHashMap<usize, Arc<ReachabilityIndex>> = FxHashMap::default();
        let mut reach_for = |model: &Arc<MarkovModel>| -> Arc<ReachabilityIndex> {
            let key = Arc::as_ptr(model) as usize;
            reach_cache
                .entry(key)
                .or_insert_with(|| {
                    Arc::new(ReachabilityIndex::from_matrix(model.matrix_at(0)))
                })
                .clone()
        };

        let space = db.state_space();
        let mut diamonds: Vec<Diamond> = Vec::new();
        for object in db.objects() {
            let reach = reach_for(db.model_for(object.id()));
            if object.num_observations() == 1 {
                // Degenerate segment: the object exists only at its single
                // observation instant.
                let obs = object.observations()[0];
                let sets = reach.segment((obs.time, obs.state), (obs.time, obs.state));
                if let Some(d) = Diamond::from_reachability(
                    object.id(),
                    &sets,
                    space,
                    cfg.per_timestamp_mbrs,
                ) {
                    diamonds.push(d);
                }
                continue;
            }
            for (from, to) in object.segments() {
                let sets = reach.segment((from.time, from.state), (to.time, to.state));
                if let Some(d) = Diamond::from_reachability(
                    object.id(),
                    &sets,
                    space,
                    cfg.per_timestamp_mbrs,
                ) {
                    diamonds.push(d);
                }
            }
        }

        let items: Vec<(Rect3, usize)> = diamonds
            .iter()
            .enumerate()
            .map(|(i, d)| (d.space_time_box(), i))
            .collect();
        let rtree = RTree::bulk_load_with_capacity(items, cfg.rtree_capacity);
        UstTree { diamonds, rtree, num_objects: db.len() }
    }

    /// Number of indexed diamonds (one per observation segment).
    pub fn num_diamonds(&self) -> usize {
        self.diamonds.len()
    }

    /// Number of objects of the database the index was built over.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// All diamonds (for diagnostics and tests).
    pub fn diamonds(&self) -> &[Diamond] {
        &self.diamonds
    }

    /// Diamonds whose time interval overlaps `[t_from, t_to]`.
    pub fn diamonds_overlapping(&self, t_from: Timestamp, t_to: Timestamp) -> Vec<&Diamond> {
        let query = Rect3::new(
            [f64::NEG_INFINITY, f64::NEG_INFINITY, t_from as f64],
            [f64::INFINITY, f64::INFINITY, t_to as f64],
        );
        self.rtree
            .query_intersecting(&query)
            .into_iter()
            .map(|&i| &self.diamonds[i])
            .collect()
    }

    /// Runs the filter step of Section 6 for a query given by per-timestamp
    /// positions: returns the ∀-candidates, the influence objects and the
    /// per-timestamp pruning distances.
    ///
    /// `query_pos(t)` must be defined for every `t` in `times`.
    pub fn prune(
        &self,
        times: &[Timestamp],
        query_pos: impl Fn(Timestamp) -> Point,
    ) -> PruningResult {
        self.prune_knn(times, query_pos, 1)
    }

    /// The filter step for k-NN queries: the pruning distance at every
    /// timestamp is the k-th smallest `dmax` over all alive objects.
    pub fn prune_knn(
        &self,
        times: &[Timestamp],
        query_pos: impl Fn(Timestamp) -> Point,
        k: usize,
    ) -> PruningResult {
        if times.is_empty() {
            return PruningResult {
                times: Vec::new(),
                candidates: Vec::new(),
                influencers: Vec::new(),
                prune_distances: Vec::new(),
            };
        }
        let t_from = *times.first().expect("non-empty");
        let t_to = *times.last().expect("non-empty");
        let positions: Vec<Point> = times.iter().map(|&t| query_pos(t)).collect();
        let mut table = BoundsTable::new(times.len());
        for diamond in self.diamonds_overlapping(t_from, t_to) {
            for (i, &t) in times.iter().enumerate() {
                if let (Some(dmin), Some(dmax)) =
                    (diamond.dmin(t, &positions[i]), diamond.dmax(t, &positions[i]))
                {
                    table.record(diamond.object, i, dmin, dmax);
                }
            }
        }
        table.evaluate_knn(times, k)
    }

    /// Convenience wrapper for a static (constant-location) query point.
    pub fn prune_point(&self, times: &[Timestamp], q: Point) -> PruningResult {
        self.prune(times, |_| q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectId;
    use ust_markov::CsrMatrix;
    use ust_spatial::StateSpace;
    use ust_trajectory::UncertainObject;

    /// Database over a 1-d line of 10 states at x = 0..9 where objects can
    /// stay or move one step left/right per tic.
    fn line_db(objects: Vec<UncertainObject>) -> TrajectoryDatabase {
        let n = 10usize;
        let space = Arc::new(StateSpace::from_points(
            (0..n).map(|i| Point::new(i as f64, 0.0)).collect(),
        ));
        let rows = (0..n as i64)
            .map(|i| {
                let mut row = vec![(i as u32, 1.0)];
                if i > 0 {
                    row.push((i as u32 - 1, 1.0));
                }
                if (i as usize) < n - 1 {
                    row.push((i as u32 + 1, 1.0));
                }
                row
            })
            .collect();
        let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::stochastic_from_weights(rows)));
        TrajectoryDatabase::with_objects(space, model, objects)
    }

    fn example_db() -> TrajectoryDatabase {
        line_db(vec![
            // Object 1 hovers around x=1.
            UncertainObject::from_pairs(1, vec![(0, 1), (4, 1), (8, 1)]).unwrap(),
            // Object 2 hovers around x=5.
            UncertainObject::from_pairs(2, vec![(0, 5), (4, 5), (8, 5)]).unwrap(),
            // Object 3 sits far away at x=9.
            UncertainObject::from_pairs(3, vec![(0, 9), (4, 9), (8, 9)]).unwrap(),
            // Object 4 only exists late (t in [6, 8]) near x=0.
            UncertainObject::from_pairs(4, vec![(6, 0), (8, 0)]).unwrap(),
        ])
    }

    #[test]
    fn build_creates_one_diamond_per_segment() {
        let db = example_db();
        let tree = UstTree::build(&db);
        // Objects 1-3 have 2 segments each, object 4 has 1.
        assert_eq!(tree.num_diamonds(), 7);
        assert_eq!(tree.num_objects(), 4);
    }

    #[test]
    fn diamonds_overlapping_respects_time() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let early: Vec<ObjectId> =
            tree.diamonds_overlapping(0, 3).iter().map(|d| d.object).collect();
        assert!(!early.contains(&4), "object 4 does not exist before t=6");
        let late: Vec<ObjectId> =
            tree.diamonds_overlapping(6, 8).iter().map(|d| d.object).collect();
        assert!(late.contains(&4));
    }

    #[test]
    fn pruning_near_object_one() {
        let db = example_db();
        let tree = UstTree::build(&db);
        // Query at x=1 over t in [1,3]: object 1 is the only candidate; object
        // 2 can drift at most 3 to x=2 > dmax(o1) bounds? o1 dmax <= 1+3=4,
        // o2 dmin >= 5-3=2 ... both may overlap; the important checks are that
        // the far object 3 is pruned and object 1 is a candidate.
        let result = tree.prune_point(&[1, 2, 3], Point::new(1.0, 0.0));
        assert!(result.is_candidate(1));
        assert!(!result.is_influencer(3), "object 3 can never be within reach");
        assert!(!result.is_candidate(4), "object 4 does not exist in the interval");
        assert!(result.num_candidates() <= result.num_influencers());
    }

    #[test]
    fn pruning_includes_late_object_only_when_alive() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let q = Point::new(0.0, 0.0);
        // Interval [6,8]: object 4 sits exactly at the query, object 1 nearby.
        let result = tree.prune_point(&[6, 7, 8], q);
        assert!(result.is_candidate(4));
        assert!(result.is_influencer(1));
        // Interval [2,3]: object 4 is not alive and must not appear at all.
        let result = tree.prune_point(&[2, 3], q);
        assert!(!result.is_influencer(4));
        assert!(result.is_candidate(1));
    }

    #[test]
    fn pruning_never_discards_true_candidates_vs_bruteforce() {
        // Compare against a brute-force bound computation over the reachable
        // sets (ground truth for the filter step).
        let db = example_db();
        let tree = UstTree::build(&db);
        let times: Vec<Timestamp> = vec![1, 2, 3, 4, 5];
        let q = Point::new(4.0, 0.0);
        let result = tree.prune(&times, |_| q);

        // Brute force: per object per time min/max distance over reachable states.
        let reach = ReachabilityIndex::from_matrix(db.shared_model().matrix_at(0));
        let space = db.state_space();
        let mut table = BoundsTable::new(times.len());
        for o in db.objects() {
            for (a, b) in o.segments() {
                let sets = reach.segment((a.time, a.state), (b.time, b.state));
                for (i, &t) in times.iter().enumerate() {
                    let states = sets.at(t);
                    if states.is_empty() {
                        continue;
                    }
                    let dmin = states
                        .iter()
                        .map(|&s| space.position(s).dist(&q))
                        .fold(f64::INFINITY, f64::min);
                    let dmax = states
                        .iter()
                        .map(|&s| space.position(s).dist(&q))
                        .fold(0.0f64, f64::max);
                    table.record(o.id(), i, dmin, dmax);
                }
            }
        }
        let brute = table.evaluate(&times);
        // The UST-tree bounds are exactly the MBR-based bounds over the same
        // reachable sets, so the classifications must agree on this instance.
        assert_eq!(result.candidates, brute.candidates);
        assert_eq!(result.influencers, brute.influencers);
    }

    #[test]
    fn knn_pruning_keeps_more_objects_than_nn_pruning() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let q = Point::new(1.0, 0.0);
        let times: Vec<Timestamp> = vec![1, 2, 3];
        let k1 = tree.prune_knn(&times, |_| q, 1);
        let k3 = tree.prune_knn(&times, |_| q, 3);
        assert!(k3.num_candidates() >= k1.num_candidates());
        assert!(k3.num_influencers() >= k1.num_influencers());
        // With k equal to the number of alive objects, every alive object is
        // a candidate.
        assert!(k3.is_candidate(1) && k3.is_candidate(2) && k3.is_candidate(3));
    }

    #[test]
    fn empty_time_set_returns_empty_result() {
        let db = example_db();
        let tree = UstTree::build(&db);
        let result = tree.prune_point(&[], Point::new(0.0, 0.0));
        assert!(result.candidates.is_empty());
        assert!(result.influencers.is_empty());
    }

    #[test]
    fn single_observation_objects_are_indexed() {
        let db = line_db(vec![
            UncertainObject::from_pairs(1, vec![(5, 3)]).unwrap(),
            UncertainObject::from_pairs(2, vec![(0, 9), (9, 9)]).unwrap(),
        ]);
        let tree = UstTree::build(&db);
        assert_eq!(tree.num_diamonds(), 2);
        let result = tree.prune_point(&[5], Point::new(3.0, 0.0));
        assert!(result.is_candidate(1));
    }
}
