//! T001 positive fixture: importing the types is fine, reading the clock in
//! test code is fine, and a waived observability read is fine. Must produce
//! zero findings.

use std::time::{Duration, Instant};

fn pure(d: Duration) -> u128 {
    d.as_nanos()
}

fn waived_observability() -> Duration {
    // lint: allow(T001) load-time metadata reported next to the result, never inside it
    let t = Instant::now();
    t.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_in_tests_is_allowed() {
        let t = Instant::now();
        assert!(pure(t.elapsed()) < u128::MAX);
    }
}
