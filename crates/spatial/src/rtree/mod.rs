//! A from-scratch R*-tree.
//!
//! The UST-tree (Section 6, reference \[25\] of the paper) indexes the
//! rectangular approximations of uncertain trajectories "using an R*-tree
//! \[31\]". This module implements that substrate: an in-memory R*-tree
//! [Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990] with
//!
//! * recursive insertion with the R* *choose-subtree* rule (minimum overlap
//!   enlargement at the leaf level, minimum area enlargement above),
//! * the R* topological split (choose axis by minimum margin sum, choose
//!   distribution by minimum overlap, ties broken by area),
//! * sort-tile-recursive (STR) bulk loading for large static datasets, and
//! * intersection queries plus a generic pruned traversal used by the
//!   UST-tree's `dmin`/`dmax` filter step.
//!
//! The tree is generic over the dimension `D`, so the same code serves the
//! 2-d spatial MBRs and the 3-d space-time boxes of the UST-tree.

mod bulk;
mod node;
mod split;

use crate::rect::Rect;
pub use node::Entry;
use node::Node;

/// Default maximum number of entries per node.
pub const DEFAULT_MAX_ENTRIES: usize = 32;

/// An in-memory R*-tree storing items of type `T` under `D`-dimensional
/// bounding boxes.
#[derive(Debug, Clone)]
pub struct RTree<const D: usize, T> {
    root: Node<D, T>,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

impl<const D: usize, T> Default for RTree<D, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, T> RTree<D, T> {
    /// Creates an empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with at most `max_entries` entries per node.
    ///
    /// The minimum fill is set to 40 % of the maximum, as recommended for the
    /// R*-tree.
    ///
    /// # Panics
    /// Panics if `max_entries < 4`.
    pub fn with_capacity(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree nodes need a capacity of at least 4");
        let min_entries = (max_entries * 2 / 5).max(2);
        RTree { root: Node::Leaf(Vec::new()), len: 0, max_entries, min_entries }
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum node capacity this tree was configured with.
    #[inline]
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Height of the tree (a tree holding only a root leaf has height 1).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Bounding box of everything stored in the tree, or `None` if empty.
    pub fn bounds(&self) -> Option<Rect<D>> {
        if self.is_empty() {
            None
        } else {
            Some(self.root.mbr())
        }
    }

    /// Inserts `item` with bounding box `rect`.
    pub fn insert(&mut self, rect: Rect<D>, item: T) {
        debug_assert!(!rect.is_empty(), "cannot insert an empty rectangle");
        let (max, min) = (self.max_entries, self.min_entries);
        if let Some((sibling_rect, sibling)) = self.root.insert(rect, item, max, min) {
            // Root overflowed: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Internal(Vec::new()));
            let old_rect = old_root.mbr();
            if let Node::Internal(children) = &mut self.root {
                children.push(node::Child { rect: old_rect, node: Box::new(old_root) });
                children.push(node::Child { rect: sibling_rect, node: Box::new(sibling) });
            }
        }
        self.len += 1;
    }

    /// Builds a tree from a collection of `(rect, item)` pairs using STR
    /// (sort-tile-recursive) bulk loading.
    ///
    /// This produces a well-packed tree in `O(n log n)` and is the preferred
    /// way to build the UST-tree over a static trajectory database.
    pub fn bulk_load(items: Vec<(Rect<D>, T)>) -> Self {
        Self::bulk_load_with_capacity(items, DEFAULT_MAX_ENTRIES)
    }

    /// [`RTree::bulk_load`] with an explicit node capacity.
    pub fn bulk_load_with_capacity(items: Vec<(Rect<D>, T)>, max_entries: usize) -> Self {
        bulk::bulk_load(items, max_entries)
    }

    /// Collects references to all items whose bounding box intersects `query`.
    pub fn query_intersecting(&self, query: &Rect<D>) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_intersecting(query, |_, item| out.push(item));
        out
    }

    /// Calls `f(rect, item)` for every stored item whose box intersects
    /// `query`.
    pub fn for_each_intersecting<'a>(
        &'a self,
        query: &Rect<D>,
        mut f: impl FnMut(&'a Rect<D>, &'a T),
    ) {
        match self.root.try_for_each_intersecting(query, &mut |rect, item| {
            f(rect, item);
            Ok::<(), std::convert::Infallible>(())
        }) {
            Ok(()) => {}
            Err(never) => match never {},
        }
    }

    /// Fallible form of [`RTree::for_each_intersecting`]: the traversal stops
    /// at the first `Err` the visitor returns and propagates it. The visit
    /// order of the `Ok` prefix is identical to the infallible form (the
    /// UST-tree filter step relies on this for deterministic budget
    /// checkpoints).
    pub fn try_for_each_intersecting<'a, E>(
        &'a self,
        query: &Rect<D>,
        mut f: impl FnMut(&'a Rect<D>, &'a T) -> Result<(), E>,
    ) -> Result<(), E> {
        self.root.try_for_each_intersecting(query, &mut f)
    }

    /// Generic pruned traversal.
    ///
    /// `descend` is called on every directory rectangle (internal node MBRs
    /// *and* leaf-entry rectangles); subtrees/items for which it returns
    /// `false` are skipped. `on_item` receives every surviving item. This is
    /// the hook used by the UST-tree's nearest-neighbor pruning, where the
    /// decision involves `dmin`/`dmax` comparisons rather than plain
    /// intersection.
    pub fn search_with<'a>(
        &'a self,
        mut descend: impl FnMut(&Rect<D>) -> bool,
        mut on_item: impl FnMut(&'a Rect<D>, &'a T),
    ) {
        self.root.search_with(&mut descend, &mut on_item);
    }

    /// Iterates over all `(rect, item)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rect<D>, &T)> {
        let mut out: Vec<(&Rect<D>, &T)> = Vec::with_capacity(self.len);
        self.root.collect_all(&mut out);
        out.into_iter()
    }

    /// Checks the structural invariants of the tree (node fill, MBR
    /// consistency, uniform leaf depth). Used by tests and property checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.len == 0 {
            return Ok(());
        }
        self.root.check_invariants(true, self.max_entries, self.min_entries)?;
        let mut count = 0usize;
        self.root.collect_count(&mut count);
        if count != self.len {
            return Err(format!("tree len {} does not match stored count {count}", self.len));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect2;

    fn unit_rect(x: f64, y: f64) -> Rect2 {
        Rect::new([x, y], [x + 0.5, y + 0.5])
    }

    /// Brute-force reference used to validate query results.
    fn brute_force(items: &[(Rect2, usize)], q: &Rect2) -> Vec<usize> {
        let mut v: Vec<usize> =
            items.iter().filter(|(r, _)| r.intersects(q)).map(|(_, i)| *i).collect();
        v.sort_unstable();
        v
    }

    fn pseudo_random_items(n: usize) -> Vec<(Rect2, usize)> {
        // Deterministic pseudo-random layout (LCG) so the test needs no RNG dependency.
        let mut state = 88172645463325252u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|i| (unit_rect(next() * 100.0, next() * 100.0), i)).collect()
    }

    #[test]
    fn empty_tree_behaves() {
        let t: RTree<2, usize> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.bounds().is_none());
        assert!(t.query_intersecting(&Rect::new([0.0, 0.0], [1.0, 1.0])).is_empty());
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn insert_and_query_small() {
        let mut t = RTree::with_capacity(4);
        for (i, (r, _)) in pseudo_random_items(10).into_iter().enumerate() {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 10);
        assert!(t.check_invariants().is_ok());
        let all = t.query_intersecting(&t.bounds().unwrap());
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn insert_matches_brute_force() {
        let items = pseudo_random_items(500);
        let mut t = RTree::with_capacity(8);
        for (r, i) in &items {
            t.insert(*r, *i);
        }
        assert!(t.check_invariants().is_ok());
        for k in 0..20 {
            let c = 5.0 * k as f64;
            let q = Rect::new([c, c], [c + 20.0, c + 15.0]);
            let mut got: Vec<usize> = t.query_intersecting(&q).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = pseudo_random_items(2000);
        let t = RTree::bulk_load_with_capacity(items.clone(), 16);
        assert_eq!(t.len(), items.len());
        assert!(t.check_invariants().is_ok());
        for k in 0..20 {
            let c = 4.0 * k as f64;
            let q = Rect::new([c, 100.0 - c - 10.0], [c + 25.0, 100.0 - c]);
            let mut got: Vec<usize> = t.query_intersecting(&q).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn bulk_load_small_and_empty() {
        let t: RTree<2, usize> = RTree::bulk_load(Vec::new());
        assert!(t.is_empty());
        let t = RTree::bulk_load(vec![(unit_rect(0.0, 0.0), 7usize)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_intersecting(&unit_rect(0.0, 0.0)), vec![&7]);
    }

    #[test]
    fn three_dimensional_boxes() {
        // Space-time boxes as used by the UST-tree: (x, y, t).
        let mut t: RTree<3, &str> = RTree::with_capacity(4);
        t.insert(Rect::new([0.0, 0.0, 0.0], [1.0, 1.0, 5.0]), "a");
        t.insert(Rect::new([2.0, 2.0, 5.0], [3.0, 3.0, 10.0]), "b");
        t.insert(Rect::new([0.0, 0.0, 8.0], [1.0, 1.0, 12.0]), "c");
        // Query: anything alive during time [6, 9] anywhere in space.
        let q = Rect::new([-10.0, -10.0, 6.0], [10.0, 10.0, 9.0]);
        let mut got: Vec<&str> = t.query_intersecting(&q).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec!["b", "c"]);
    }

    #[test]
    fn search_with_prunes_subtrees() {
        let items = pseudo_random_items(300);
        let t = RTree::bulk_load_with_capacity(items.clone(), 8);
        // Emulate a dmin-style filter: keep only items within distance 10 of a point.
        let p = [50.0, 50.0];
        let mut got: Vec<usize> = Vec::new();
        t.search_with(
            |r| r.min_dist2_point(&p) <= 100.0,
            |_, item| got.push(*item),
        );
        got.sort_unstable();
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.min_dist2_point(&p) <= 100.0)
            .map(|(_, i)| *i)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn iter_visits_everything_once() {
        let items = pseudo_random_items(128);
        let mut t = RTree::with_capacity(6);
        for (r, i) in &items {
            t.insert(*r, *i);
        }
        let mut seen: Vec<usize> = t.iter().map(|(_, i)| *i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..items.len()).collect::<Vec<_>>());
    }

    #[test]
    fn large_insertion_keeps_invariants_and_height_logarithmic() {
        let items = pseudo_random_items(3000);
        let mut t = RTree::with_capacity(16);
        for (r, i) in &items {
            t.insert(*r, *i);
        }
        assert!(t.check_invariants().is_ok());
        // With capacity 16 and 3000 entries the height must stay small.
        assert!(t.height() <= 5, "height {} too large", t.height());
    }
}
