//! Spatial networks: the discrete state space plus its edge structure.
//!
//! Both experimental setups of the paper operate on a network: the synthetic
//! generator connects nearby states, the taxi experiment uses a road graph.
//! The network provides
//!
//! * shortest paths (object motion follows "best paths" — Section 3.1),
//! * the derivation of the a-priori Markov model, either with transition
//!   probabilities inversely proportional to edge length (synthetic data,
//!   Section 7) or learned from observed trips (taxi data, where "the
//!   transition matrix was extracted by aggregating the turning probabilities
//!   at crossroads").

use rustc_hash::FxHashMap;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use ust_markov::{CsrMatrix, MarkovModel};
use ust_spatial::{Point, StateId, StateSpace};

/// A spatial network: states with positions and undirected edges.
#[derive(Debug, Clone)]
pub struct Network {
    space: Arc<StateSpace>,
    /// Adjacency lists, sorted by neighbor id. Edge weights are Euclidean
    /// lengths.
    adjacency: Vec<Vec<(StateId, f64)>>,
}

impl Network {
    /// Builds a network from a state space and undirected edge list.
    /// Duplicate and self edges are ignored.
    pub fn new(space: Arc<StateSpace>, edges: impl IntoIterator<Item = (StateId, StateId)>) -> Self {
        let n = space.len();
        let mut adjacency: Vec<Vec<(StateId, f64)>> = vec![Vec::new(); n];
        for (a, b) in edges {
            if a == b || (a as usize) >= n || (b as usize) >= n {
                continue;
            }
            let d = space.dist(a, b);
            adjacency[a as usize].push((b, d));
            adjacency[b as usize].push((a, d));
        }
        for list in &mut adjacency {
            list.sort_unstable_by_key(|&(s, _)| s);
            list.dedup_by_key(|&mut (s, _)| s);
        }
        Network { space, adjacency }
    }

    /// Builds a network from per-state neighbor lists (directed input is
    /// symmetrised).
    pub fn from_adjacency(space: Arc<StateSpace>, neighbors: Vec<Vec<StateId>>) -> Self {
        let edges: Vec<(StateId, StateId)> = neighbors
            .iter()
            .enumerate()
            .flat_map(|(i, ns)| ns.iter().map(move |&n| (i as StateId, n)))
            .collect();
        Network::new(space, edges)
    }

    /// The underlying state space.
    #[inline]
    pub fn space(&self) -> &Arc<StateSpace> {
        &self.space
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.space.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Average degree (the realised branching factor `b` of the paper).
    pub fn average_degree(&self) -> f64 {
        if self.num_states() == 0 {
            return 0.0;
        }
        self.adjacency.iter().map(|l| l.len()).sum::<usize>() as f64 / self.num_states() as f64
    }

    /// Neighbors of a state with their edge lengths.
    #[inline]
    pub fn neighbors(&self, s: StateId) -> &[(StateId, f64)] {
        &self.adjacency[s as usize]
    }

    /// Position of a state.
    #[inline]
    pub fn position(&self, s: StateId) -> Point {
        self.space.position(s)
    }

    /// Shortest path from `from` to `to` (inclusive of both endpoints), or
    /// `None` if `to` is unreachable.
    ///
    /// Convenience wrapper that builds a transient [`PathFinder`]; loops that
    /// query many paths (the object generator chains waypoint legs, the taxi
    /// generator simulates thousands of training trips) should hold one
    /// `PathFinder` and reuse it, which skips the per-call `O(|S|)` scratch
    /// allocation.
    pub fn shortest_path(&self, from: StateId, to: StateId) -> Option<Vec<StateId>> {
        PathFinder::new(self).shortest_path(from, to)
    }

    /// Derives the a-priori Markov model of the synthetic experiments: for
    /// every state, the transition probability to each neighbor is inversely
    /// proportional to the edge length, plus a self-loop whose weight is
    /// `self_loop_weight` times the mean neighbor weight (a positive self-loop
    /// allows objects to move slower than the shortest path — the lag
    /// parameter `v` of the object generator).
    pub fn distance_weighted_model(&self, self_loop_weight: f64) -> MarkovModel {
        let rows: Vec<Vec<(StateId, f64)>> = (0..self.num_states())
            .map(|i| {
                let neighbors = &self.adjacency[i];
                let mut row: Vec<(StateId, f64)> = neighbors
                    .iter()
                    .map(|&(s, d)| (s, 1.0 / d.max(1e-12)))
                    .collect();
                if self_loop_weight > 0.0 || row.is_empty() {
                    let mean = if row.is_empty() {
                        1.0
                    } else {
                        row.iter().map(|&(_, w)| w).sum::<f64>() / row.len() as f64
                    };
                    row.push((i as StateId, self_loop_weight.max(1e-12) * mean));
                }
                row
            })
            .collect();
        MarkovModel::homogeneous(CsrMatrix::stochastic_from_weights(rows))
    }

    /// Derives a Markov model from observed transition counts (the taxi
    /// setup: "aggregating the turning probabilities at crossroads").
    ///
    /// `smoothing` is added to every network edge and to every self-loop so
    /// that the support of the learned model covers the whole network —
    /// evaluation trips may use turns never seen in training, and the
    /// adaptation requires observations to be non-contradicting.
    pub fn learned_model(
        &self,
        counts: &FxHashMap<(StateId, StateId), f64>,
        smoothing: f64,
    ) -> MarkovModel {
        let rows: Vec<Vec<(StateId, f64)>> = (0..self.num_states())
            .map(|i| {
                let s = i as StateId;
                let mut row: Vec<(StateId, f64)> = self.adjacency[i]
                    .iter()
                    .map(|&(t, _)| (t, smoothing + counts.get(&(s, t)).copied().unwrap_or(0.0)))
                    .collect();
                row.push((s, smoothing + counts.get(&(s, s)).copied().unwrap_or(0.0)));
                row
            })
            .collect();
        MarkovModel::homogeneous(CsrMatrix::stochastic_from_weights(rows))
    }

    /// States sorted by distance from a point (nearest first); helper for
    /// query generation and map matching of simulated GPS positions.
    pub fn nearest_state(&self, p: &Point) -> Option<StateId> {
        self.space.nearest_state(p)
    }
}

/// A reusable goal-directed shortest-path searcher over one [`Network`].
///
/// Two properties make paper-scale object generation (500k states, tens of
/// thousands of path queries) tractable where the old per-call Dijkstra was
/// not:
///
/// * **A\* with the straight-line lower bound.** Edge weights *are* Euclidean
///   lengths, so the distance to the target is an admissible (and consistent)
///   heuristic — returned paths are exact shortest paths, but the search
///   explores a corridor between the endpoints instead of a distance ball
///   that covers most of the network when the endpoints are far apart.
/// * **Epoch-stamped scratch.** The `g`-score/predecessor arrays are
///   allocated once and invalidated per query by bumping an epoch counter,
///   so repeated queries are allocation-free and cost `O(visited)`, not
///   `O(|S|)` re-initialisation.
pub struct PathFinder<'a> {
    network: &'a Network,
    /// `g`-score per state, valid only where `stamp == epoch`.
    g_score: Vec<f64>,
    /// Predecessor per state, valid only where `stamp == epoch`.
    prev: Vec<StateId>,
    /// Query epoch each state's scratch entries belong to.
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<AStarEntry>,
}

impl std::fmt::Debug for PathFinder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathFinder")
            .field("states", &self.g_score.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl<'a> PathFinder<'a> {
    /// Creates a finder with fresh scratch for the given network.
    pub fn new(network: &'a Network) -> Self {
        let n = network.num_states();
        PathFinder {
            network,
            g_score: vec![f64::INFINITY; n],
            prev: vec![StateId::MAX; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The network this finder searches.
    #[inline]
    pub fn network(&self) -> &'a Network {
        self.network
    }

    #[inline]
    fn g(&self, s: StateId) -> f64 {
        if self.stamp[s as usize] == self.epoch {
            self.g_score[s as usize]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, s: StateId, g: f64, from: StateId) {
        self.g_score[s as usize] = g;
        self.prev[s as usize] = from;
        self.stamp[s as usize] = self.epoch;
    }

    /// Shortest path from `from` to `to` (inclusive of both endpoints), or
    /// `None` if `to` is unreachable. Exact — see the heuristic note on
    /// [`PathFinder`].
    pub fn shortest_path(&mut self, from: StateId, to: StateId) -> Option<Vec<StateId>> {
        if from == to {
            return Some(vec![from]);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
        let target = self.network.position(to);
        self.set(from, 0.0, StateId::MAX);
        self.heap.push(AStarEntry {
            f: self.network.position(from).dist(&target),
            g: 0.0,
            state: from,
        });
        while let Some(AStarEntry { g, state, .. }) = self.heap.pop() {
            if state == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = self.prev[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if g > self.g(state) {
                continue;
            }
            for &(next, w) in self.network.neighbors(state) {
                let ng = g + w;
                if ng < self.g(next) {
                    self.set(next, ng, state);
                    let h = self.network.position(next).dist(&target);
                    self.heap.push(AStarEntry { f: ng + h, g: ng, state: next });
                }
            }
        }
        None
    }
}

/// Max-heap entry ordered by minimal `f = g + h` (reverse ordering), with the
/// `g`-score carried along for the stale-entry check.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AStarEntry {
    f: f64,
    g: f64,
    state: StateId,
}

impl Eq for AStarEntry {}

impl Ord for AStarEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.state.cmp(&self.state))
    }
}

impl PartialOrd for AStarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3x3 grid of unit-spaced states, 4-connected.
    fn grid3() -> Network {
        let mut pts = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                pts.push(Point::new(x as f64, y as f64));
            }
        }
        let space = Arc::new(StateSpace::from_points(pts));
        let mut edges = Vec::new();
        for y in 0..3i32 {
            for x in 0..3i32 {
                let id = (y * 3 + x) as StateId;
                if x + 1 < 3 {
                    edges.push((id, id + 1));
                }
                if y + 1 < 3 {
                    edges.push((id, id + 3));
                }
            }
        }
        Network::new(space, edges)
    }

    #[test]
    fn construction_and_degrees() {
        let net = grid3();
        assert_eq!(net.num_states(), 9);
        assert_eq!(net.num_edges(), 12);
        assert_eq!(net.neighbors(4).len(), 4, "center of the grid has degree 4");
        assert_eq!(net.neighbors(0).len(), 2, "corner has degree 2");
        assert!((net.average_degree() - 24.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_self_edges_are_ignored() {
        let space = Arc::new(StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ]));
        let net = Network::new(space, vec![(0, 1), (1, 0), (0, 0), (0, 1)]);
        assert_eq!(net.num_edges(), 1);
    }

    #[test]
    fn shortest_path_on_grid() {
        let net = grid3();
        let path = net.shortest_path(0, 8).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&8));
        assert_eq!(path.len(), 5, "manhattan distance 4 -> 5 nodes");
        // Consecutive nodes are connected.
        for w in path.windows(2) {
            assert!(net.neighbors(w[0]).iter().any(|&(s, _)| s == w[1]));
        }
        assert_eq!(net.shortest_path(3, 3).unwrap(), vec![3]);
    }

    #[test]
    fn shortest_path_unreachable() {
        let space = Arc::new(StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 5.0),
        ]));
        let net = Network::new(space, vec![(0, 1)]);
        assert!(net.shortest_path(0, 2).is_none());
    }

    #[test]
    fn distance_weighted_model_is_stochastic_and_prefers_near_neighbors() {
        // State 0 has a near neighbor (1) and a far neighbor (2).
        let space = Arc::new(StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(4.0, 0.0),
        ]));
        let net = Network::new(space, vec![(0, 1), (0, 2), (1, 2)]);
        let model = net.distance_weighted_model(0.0);
        assert!(model.is_valid());
        let m = model.matrix_at(0);
        assert!(m.get(0, 1) > m.get(0, 2), "closer neighbor gets higher probability");
        // With a self-loop weight, the diagonal becomes positive.
        let with_loop = net.distance_weighted_model(0.5);
        assert!(with_loop.matrix_at(0).get(0, 0) > 0.0);
        assert!(with_loop.is_valid());
    }

    #[test]
    fn learned_model_uses_counts_and_smoothing() {
        let net = grid3();
        let mut counts: FxHashMap<(StateId, StateId), f64> = FxHashMap::default();
        counts.insert((0, 1), 10.0);
        counts.insert((0, 3), 1.0);
        let model = net.learned_model(&counts, 0.1);
        assert!(model.is_valid());
        let m = model.matrix_at(0);
        assert!(m.get(0, 1) > m.get(0, 3));
        // Smoothing keeps unobserved turns and the self-loop possible.
        assert!(m.get(0, 0) > 0.0);
        assert!(m.get(3, 4) > 0.0);
    }
}
