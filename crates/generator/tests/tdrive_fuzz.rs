//! Bounded deterministic fuzz smoke over the T-Drive loader.
//!
//! The same seeded byte [`Mutator`] that hardens the on-disk store reader
//! (`ust_persist::fuzz`) is pointed at [`FixStream`]: thousands of corrupted
//! variants of a valid T-Drive CSV — bit flips, truncations, splices,
//! invalid UTF-8 — must each produce a clean [`LoadOutcome`] whose malformed
//! lines land as typed [`LoadError`]s. The loader must never panic, and the
//! line accounting must stay coherent (every fix and every error belongs to
//! a consumed line).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ust_generator::map_match::GeoFrame;
use ust_generator::tdrive::{self, FixStream, LoadOutcome};
use ust_generator::{ObjectId, RoadNetworkConfig, StateId, Timestamp};
use ust_persist::Mutator;
use ust_trajectory::UncertainObject;

/// Mutants thrown at the loader.
const MUTANTS: usize = 10_000;

/// A valid multi-object T-Drive document: random walks on a clean grid,
/// rendered by the workspace's own fixture writer.
fn base_corpus() -> Vec<u8> {
    let network = RoadNetworkConfig {
        grid_width: 6,
        grid_height: 6,
        jitter: 0.0,
        removal_fraction: 0.0,
        seed: 0,
    }
    .generate();
    let frame = GeoFrame::beijing();
    let mut rng = StdRng::seed_from_u64(17);
    let mut csv = String::new();
    for id in 1..=4u64 {
        let mut state = rng.gen_range(0..network.num_states() as StateId);
        let mut obs: Vec<(Timestamp, StateId)> = vec![(0, state)];
        for k in 1..8u32 {
            let neighbors = network.neighbors(state);
            let choice = rng.gen_range(0..=neighbors.len());
            if choice < neighbors.len() {
                state = neighbors[choice].0;
            }
            obs.push((k, state));
        }
        let object = UncertainObject::from_pairs(id as ObjectId, obs).expect("sorted tics");
        csv.push_str(&tdrive::render_workload(
            network.space(),
            std::slice::from_ref(&object),
            &frame,
            10,
            1_201_900_000,
        ));
    }
    csv.into_bytes()
}

#[test]
fn loader_survives_raw_byte_fuzz() {
    let base = base_corpus();
    let mut mutator = Mutator::new(0x7D21_7E57);
    let mut panics = 0usize;
    let mut errored_runs = 0usize;
    for _ in 0..MUTANTS {
        let mutant = mutator.mutate(&base);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let out = LoadOutcome::collect(FixStream::new(&mutant[..]));
            // Coherence: every fix and every error came from a real line.
            assert!(out.fixes.len() + out.errors.len() <= out.lines);
            for e in &out.errors {
                assert!(e.line >= 1 && e.line <= out.lines);
            }
            out.errors.len()
        }));
        match outcome {
            Ok(n) if n > 0 => errored_runs += 1,
            Ok(_) => {}
            Err(_) => panics += 1,
        }
    }
    assert_eq!(panics, 0, "the T-Drive loader panicked on {panics} of {MUTANTS} mutants");
    // The mutator corrupts aggressively; a loader that never reports a typed
    // error would mean the error path rotted away.
    assert!(errored_runs > MUTANTS / 10, "only {errored_runs} mutants produced load errors");
}

#[test]
fn loader_is_deterministic_over_the_fuzz_corpus() {
    let base = base_corpus();
    let mut a = Mutator::new(42);
    let mut b = Mutator::new(42);
    for _ in 0..200 {
        let (ma, mb) = (a.mutate(&base), b.mutate(&base));
        assert_eq!(ma, mb, "the mutator must be deterministic per seed");
        let out_a = LoadOutcome::collect(FixStream::new(&ma[..]));
        let out_b = LoadOutcome::collect(FixStream::new(&mb[..]));
        assert_eq!(out_a.fixes, out_b.fixes);
        assert_eq!(out_a.errors.len(), out_b.errors.len());
        assert_eq!(out_a.lines, out_b.lines);
    }
}
