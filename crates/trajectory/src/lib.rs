//! # ust-trajectory
//!
//! The uncertain moving-object trajectory model of Niedermayer et al.
//! (PVLDB 7(3), 2013, Section 3) and nearest-neighbor primitives on *certain*
//! trajectories.
//!
//! A spatio-temporal database `D` stores, for every object `o`, a set of
//! *observations* `Θ^o = {(t_1, θ_1), ..., (t_m, θ_m)}`: certain positions at
//! certain times. Between observations the position is uncertain and governed
//! by the object's a-priori Markov chain (see `ust-markov`).
//!
//! This crate provides:
//!
//! * [`object`] — observations and uncertain objects,
//! * [`database`] — the trajectory database `D` (objects + state space +
//!   shared or per-object a-priori models),
//! * [`certain`] — materialised (certain) trajectories, i.e. realisations of
//!   the stochastic process; these are what the Monte-Carlo sampler draws,
//! * [`timemask`] — compact bit sets over query timestamps,
//! * [`nn`] — nearest-neighbor primitives evaluated inside one possible world
//!   (one certain trajectory per object), the building block that the
//!   sampling-based query algorithms of `ust-core` aggregate over
//!   (Section 5.2.3: "On each such (certain) world an existing solution for
//!   NN search on certain trajectories is applied").

pub mod certain;
pub mod database;
pub mod nn;
pub mod object;
pub mod timemask;

pub use certain::Trajectory;
pub use database::{DatabaseSummary, TrajectoryDatabase};
pub use nn::{knn_members_at, nn_objects_at, NnTimeProfile};
pub use object::{ObjectId, Observation, ObservationError, UncertainObject};
pub use timemask::{iter_set_bits, TimeMask};

pub use ust_markov::Timestamp;
pub use ust_spatial::StateId;
