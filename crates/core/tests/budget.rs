//! Budget edge cases (DESIGN.md §8): a breached [`QueryBudget`] must always
//! surface as a typed error or a flagged degraded result — with coherent
//! partial statistics — and must leave the engine fully reusable (no poisoned
//! cache slot, identical answers afterwards).

use std::sync::Arc;
use ust_core::{
    CancelToken, EngineConfig, Query, QueryBudget, QueryEngine, QueryError, QueryPhase,
};
use ust_markov::{CsrMatrix, MarkovModel, StateId};
use ust_spatial::{Point, StateSpace};
use ust_trajectory::{TrajectoryDatabase, UncertainObject};

/// Gap between the two observations pinning every object.
const GAP: u32 = 6;

/// A database of `num_objects` random walkers on a ring of `num_states`
/// states, pinned at `t = 0` and `t = GAP` — the same fixture shape as the
/// concurrency suite, small enough that an *unlimited* run always succeeds.
fn ring_db(num_states: usize, num_objects: u32) -> TrajectoryDatabase {
    let points: Vec<Point> = (0..num_states)
        .map(|i| {
            let a = (i as f64) / (num_states as f64) * std::f64::consts::TAU;
            Point::new(a.cos(), a.sin())
        })
        .collect();
    let space = Arc::new(StateSpace::from_points(points));
    let rows: Vec<Vec<(StateId, f64)>> = (0..num_states)
        .map(|i| {
            let fwd = ((i + 1) % num_states) as StateId;
            let bwd = ((i + num_states - 1) % num_states) as StateId;
            vec![(bwd, 0.25), (i as StateId, 0.5), (fwd, 0.25)]
        })
        .collect();
    let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::from_rows(rows)));
    let objects: Vec<UncertainObject> = (1..=num_objects)
        .map(|id| {
            let start = ((id as usize * 7) % num_states) as StateId;
            let end = ((start as usize + 2) % num_states) as StateId;
            UncertainObject::from_pairs(id, vec![(0, start), (GAP, end)])
                .expect("observations are sorted")
        })
        .collect();
    TrajectoryDatabase::with_objects(space, model, objects)
}

fn ring_query() -> Query {
    Query::at_point(Point::new(1.2, 0.0), 0..=GAP).expect("valid query")
}

/// Asserts the engine still answers correctly: same result set as a fresh
/// engine over the same database, and no failure slot left in the cache.
fn assert_reusable(engine: &QueryEngine, db: &TrajectoryDatabase) {
    assert_eq!(
        engine.cache_stats().cached_failures,
        0,
        "budget breaches must never be cached as failures"
    );
    let outcome = engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited())
        .expect("the engine answers the next unlimited query");
    let fresh = QueryEngine::new(db, engine.config().clone());
    let expected = fresh
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited())
        .expect("a fresh engine answers");
    let pairs = |o: &ust_core::QueryOutcome| -> Vec<(u64, u64)> {
        o.results.iter().map(|r| (u64::from(r.object), r.probability.to_bits())).collect()
    };
    assert_eq!(
        pairs(&outcome),
        pairs(&expected),
        "a breached engine must answer exactly like a fresh one"
    );
    assert!(!outcome.stats.degraded);
}

#[test]
fn zero_deadline_is_a_typed_filter_error() {
    let db = ring_db(64, 8);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(50));
    let budget = QueryBudget::unlimited().with_deadline(std::time::Duration::ZERO);
    let err = engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &budget)
        .expect_err("a zero deadline trips at the query-start checkpoint");
    match &err {
        QueryError::DeadlineExceeded { phase, stats } => {
            assert_eq!(*phase, QueryPhase::Filter, "the first checkpoint is the filter's");
            assert!(stats.budget_checkpoints >= 1, "the tripping checkpoint is counted");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(err.is_transient());
    assert_reusable(&engine, &db);
}

#[test]
fn cancel_before_start_is_a_typed_error() {
    let db = ring_db(64, 8);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(50));
    let token = CancelToken::new();
    token.cancel();
    let budget = QueryBudget::unlimited().with_cancel(&token);
    let err = engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &budget)
        .expect_err("a pre-cancelled token trips at the query-start checkpoint");
    assert!(
        matches!(err, QueryError::Cancelled { phase: QueryPhase::Filter, .. }),
        "expected Cancelled in the filter phase, got {err:?}"
    );
    // Cancellation is sticky: the same budget keeps refusing.
    assert!(engine.pexists_nn_with_budget(&ring_query(), 0.0, &budget).is_err());
    assert_reusable(&engine, &db);
}

#[test]
fn cancel_during_prepare_is_deterministic_at_every_thread_count() {
    let db = ring_db(64, 24);
    let ids: Vec<u32> = (1..=24).collect();
    for threads in [1usize, 2, 4] {
        let token = CancelToken::new();
        token.cancel();
        let config = EngineConfig::with_samples(50)
            .with_adaptation_threads(threads)
            .with_budget(QueryBudget::unlimited().with_cancel(&token));
        let engine = QueryEngine::new(&db, config);
        // The adaptation fan-out polls the gauge once per cold object, so a
        // cancelled token surfaces from the TS phase itself — at any count.
        let err = engine
            .prepare_objects_with_threads(&ids, threads)
            .expect_err("cancellation surfaces from the adaptation fan-out");
        assert!(
            matches!(err, QueryError::Cancelled { phase: QueryPhase::Adaptation, .. }),
            "threads={threads}: expected Cancelled in adaptation, got {err:?}"
        );
        assert_eq!(
            engine.cache_stats().cached_failures,
            0,
            "threads={threads}: cancellation must release claims, not cache failures"
        );
        // The per-call budget overrides the cancelled engine budget.
        engine
            .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited())
            .unwrap_or_else(|e| {
                panic!("threads={threads}: the engine stays usable with a fresh budget: {e:?}")
            });
    }
}

#[test]
fn max_worlds_exactly_at_the_checkpoint_boundary() {
    let db = ring_db(64, 8);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(128));
    // Cap below the request — exactly at the 64-world checkpoint boundary:
    // the run degrades to precisely the cap, never one world more or less.
    let capped = engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited().with_max_worlds(64))
        .expect("a world cap degrades, it does not error");
    assert!(capped.stats.degraded);
    assert_eq!(capped.stats.worlds, 64);
    assert_eq!(capped.stats.worlds_requested, 128);
    for r in &capped.results {
        assert!((0.0..=1.0).contains(&r.probability), "probabilities stay normalised");
    }
    // Cap equal to the request — not a degradation.
    let exact = engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited().with_max_worlds(128))
        .expect("query succeeds");
    assert!(!exact.stats.degraded);
    assert_eq!(exact.stats.worlds, 128);
    // Cap above the request — no effect at all.
    let loose = engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited().with_max_worlds(500))
        .expect("query succeeds");
    assert!(!loose.stats.degraded);
    assert_eq!(loose.stats.worlds, 128);
    assert_reusable(&engine, &db);
}

#[test]
fn degraded_estimate_equals_a_smaller_honest_run() {
    // Degrading to w worlds must produce the *same* estimate as asking for w
    // worlds up front: the world RNG stream is a prefix, not a reshuffle.
    let db = ring_db(64, 8);
    let capped_engine = QueryEngine::new(&db, EngineConfig::with_samples(128));
    let capped = capped_engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited().with_max_worlds(64))
        .expect("a world cap degrades, it does not error");
    let honest_engine = QueryEngine::new(&db, EngineConfig::with_samples(64));
    let honest = honest_engine.pforall_nn(&ring_query(), 0.0).expect("query succeeds");
    let pairs = |o: &ust_core::QueryOutcome| -> Vec<(u64, u64)> {
        o.results.iter().map(|r| (u64::from(r.object), r.probability.to_bits())).collect()
    };
    assert_eq!(pairs(&capped), pairs(&honest));
}

#[test]
fn max_diamonds_is_budget_exhausted_with_partial_stats() {
    let db = ring_db(64, 8);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(50));
    let err = engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited().with_max_diamonds(0))
        .expect_err("a zero diamond cap trips on the first streamed diamond");
    match &err {
        QueryError::BudgetExhausted { phase, resource, limit, stats } => {
            assert_eq!(*phase, QueryPhase::Filter);
            assert_eq!(*resource, "diamonds");
            assert_eq!(*limit, 0);
            assert!(stats.budget_checkpoints >= 1);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert!(err.is_transient(), "caps are budget errors: transient, never cached");
    assert_reusable(&engine, &db);
}

#[test]
fn engine_level_budget_governs_plain_entry_points() {
    let db = ring_db(64, 8);
    let config = EngineConfig::with_samples(50)
        .with_budget(QueryBudget::unlimited().with_deadline(std::time::Duration::ZERO));
    let engine = QueryEngine::new(&db, config);
    // The plain entry points inherit the engine budget...
    let err = engine.pforall_nn(&ring_query(), 0.0).expect_err("engine budget applies");
    assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    let err = engine.pexists_nn(&ring_query(), 0.0).expect_err("engine budget applies");
    assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    let err = engine.pcnn(&ring_query(), 0.1).expect_err("engine budget applies");
    assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    // ...and the `_with_budget` variants override it per call.
    engine
        .pforall_nn_with_budget(&ring_query(), 0.0, &QueryBudget::unlimited())
        .expect("a per-call unlimited budget overrides the engine deadline");
}

#[test]
fn pcknn_degrades_under_a_world_cap_and_stays_exact_on_retry() {
    let db = ring_db(64, 8);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(128));
    let capped = engine
        .pcknn_with_budget(&ring_query(), 2, 0.1, &QueryBudget::unlimited().with_max_worlds(64))
        .expect("a world cap degrades the PCNN estimate, it does not error");
    assert!(capped.stats.degraded);
    assert_eq!(capped.stats.worlds, 64);
    assert_eq!(capped.stats.worlds_requested, 128);
    for r in &capped.results {
        for (times, prob) in &r.sets {
            assert!(!times.is_empty(), "every reported timestamp set is a real one");
            assert!((0.0..=1.0).contains(prob), "probabilities stay normalised");
        }
    }
    // Re-running with the full budget on the same engine is exact again.
    let full = engine.pcknn(&ring_query(), 2, 0.1).expect("query succeeds");
    assert!(!full.stats.degraded);
    assert_eq!(full.stats.worlds, 128);
    let fresh = QueryEngine::new(&db, engine.config().clone())
        .pcknn(&ring_query(), 2, 0.1)
        .expect("query succeeds");
    assert_eq!(full.total_result_sets(), fresh.total_result_sets());
}

#[test]
fn budget_checkpoint_counts_are_thread_count_independent() {
    // The checkpoint *counter* is observability, but for a completed
    // evaluation it must not depend on the fan-out width — every world and
    // every cold object polls exactly once regardless of interleaving.
    let db = ring_db(64, 16);
    let mut counts = Vec::new();
    for threads in [1usize, 2, 4] {
        let engine = QueryEngine::new(
            &db,
            EngineConfig::with_samples(128).with_adaptation_threads(threads),
        );
        let outcome = engine.pforall_nn(&ring_query(), 0.0).expect("query succeeds");
        counts.push(outcome.stats.budget_checkpoints);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[0], counts[2]);
    assert!(counts[0] >= 1, "a completed run polled at least one checkpoint");
}
