//! Micro-benchmark: UST-tree construction and the dmin/dmax filter step.
//!
//! Also quantifies the filter's selectivity benefit: query evaluation with and
//! without the index (the pruning ablation called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion};
use ust_bench::args::RunScale;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_core::{EngineConfig, Query, QueryEngine};
use ust_index::UstTree;

fn bench_pruning(c: &mut Criterion) {
    let mut params = ScaleParams::for_scale(RunScale::Quick);
    params.num_queries = 4;
    let dataset = build_synthetic(&params, 2_000, 8.0, 200, 7);
    let workload = build_queries(&dataset, &params, 7);

    let mut group = c.benchmark_group("ust_tree");
    group.sample_size(10);
    group.bench_function("build_200_objects", |b| {
        b.iter(|| UstTree::build(&dataset.database))
    });
    let tree = UstTree::build(&dataset.database);
    let spec = &workload.queries[0];
    group.bench_function("prune_one_query", |b| {
        b.iter(|| tree.prune(&spec.times, |_| spec.location))
    });
    group.finish();

    let mut group = c.benchmark_group("pruning_ablation");
    group.sample_size(10);
    let with_index =
        QueryEngine::new(&dataset.database, EngineConfig { num_samples: 200, ..Default::default() });
    let without_index = QueryEngine::new(
        &dataset.database,
        EngineConfig { num_samples: 200, use_index: false, ..Default::default() },
    );
    let query = Query::at_point(spec.location, spec.times.iter().copied()).unwrap();
    group.bench_function("pforall_with_index", |b| {
        b.iter(|| with_index.pforall_nn(&query, 0.0).unwrap())
    });
    group.bench_function("pforall_without_index", |b| {
        b.iter(|| without_index.pforall_nn(&query, 0.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
