//! Datasets and query workloads.
//!
//! A [`Dataset`] bundles everything the query engine needs (network, database,
//! shared model) together with the per-object ground truth used by the
//! effectiveness experiments. [`QueryWorkload`] generates the query states and
//! query time intervals of Section 7: "Our experiments concentrate on
//! evaluating nearest neighbor queries given a certain query state. These
//! states were uniformly drawn from the underlying state space."

use crate::network::Network;
use crate::objects::{generate_objects, ObjectWorkloadConfig};
use crate::road_network::{generate_taxi_dataset, RoadNetworkConfig, TaxiWorkloadConfig};
use crate::synthetic::SyntheticNetworkConfig;
use crate::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;
use std::sync::Arc;
use ust_spatial::Point;
use ust_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};

/// A fully materialised experimental dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The underlying spatial network.
    pub network: Network,
    /// The uncertain trajectory database (observations only).
    pub database: TrajectoryDatabase,
    /// Ground-truth trajectories, keyed by object id. These are *not* visible
    /// to the query engine; they exist to measure model effectiveness
    /// (Figure 12) in leave-one-out fashion.
    pub ground_truth: FxHashMap<ObjectId, Trajectory>,
}

impl Dataset {
    /// Builds the synthetic dataset of Section 7 ("Artificial Data"): a
    /// uniform random network, a distance-weighted shared Markov model (with
    /// the given self-loop weight to permit lag), and shortest-path objects.
    pub fn synthetic(
        net_cfg: &SyntheticNetworkConfig,
        obj_cfg: &ObjectWorkloadConfig,
        self_loop_weight: f64,
    ) -> Dataset {
        let network = net_cfg.generate();
        let model = Arc::new(network.distance_weighted_model(self_loop_weight));
        let generated = generate_objects(&network, obj_cfg, 0);
        let mut ground_truth = FxHashMap::default();
        let mut objects = Vec::with_capacity(generated.len());
        for g in generated {
            ground_truth.insert(g.object.id(), g.ground_truth);
            objects.push(g.object);
        }
        let database =
            TrajectoryDatabase::with_objects(network.space().clone(), model, objects);
        Dataset { network, database, ground_truth }
    }

    /// Builds the simulated taxi dataset (the substitute for the paper's
    /// Beijing T-Drive setup — see DESIGN.md §4).
    pub fn taxi(road_cfg: &RoadNetworkConfig, taxi_cfg: &TaxiWorkloadConfig) -> Dataset {
        let taxi = generate_taxi_dataset(road_cfg, taxi_cfg);
        let mut ground_truth = FxHashMap::default();
        let mut objects = Vec::with_capacity(taxi.objects.len());
        for g in taxi.objects {
            ground_truth.insert(g.object.id(), g.ground_truth);
            objects.push(g.object);
        }
        let database = TrajectoryDatabase::with_objects(
            taxi.network.space().clone(),
            taxi.model,
            objects,
        );
        Dataset { network: taxi.network, database, ground_truth }
    }

    /// The ground-truth trajectory of an object.
    pub fn ground_truth_of(&self, id: ObjectId) -> Option<&Trajectory> {
        self.ground_truth.get(&id)
    }
}

/// Configuration of a query workload.
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Length of the query time interval `|T|` (paper default: 10).
    pub interval_length: u32,
    /// Database time horizon the query intervals are drawn from.
    pub horizon: Timestamp,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig { num_queries: 10, interval_length: 10, horizon: 1_000, seed: 0 }
    }
}

/// One generated query: a certain query state (location) and a contiguous
/// set of query timestamps.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The (certain) query location.
    pub location: Point,
    /// The query timestamps, contiguous and ascending.
    pub times: Vec<Timestamp>,
}

/// A collection of generated queries.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The generated queries.
    pub queries: Vec<QuerySpec>,
}

impl QueryWorkload {
    /// Generates `cfg.num_queries` queries whose locations are uniformly drawn
    /// states of the network and whose time intervals lie inside the horizon.
    pub fn generate(network: &Network, cfg: &QueryWorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = network.num_states() as u32;
        let queries = (0..cfg.num_queries)
            .map(|_| {
                let state = rng.gen_range(0..n);
                let location = network.position(state);
                let max_start = cfg.horizon.saturating_sub(cfg.interval_length.max(1) - 1);
                let start: Timestamp = if max_start > 0 { rng.gen_range(0..max_start) } else { 0 };
                let times: Vec<Timestamp> =
                    (0..cfg.interval_length.max(1)).map(|k| start + k).collect();
                QuerySpec { location, times }
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Generates queries whose time interval is guaranteed to be covered by at
    /// least `min_covering` database objects (so that the query is not
    /// trivially empty). Falls back to the plain generator if the requirement
    /// cannot be met within a bounded number of attempts.
    pub fn generate_covered(
        network: &Network,
        database: &TrajectoryDatabase,
        cfg: &QueryWorkloadConfig,
        min_covering: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = network.num_states() as u32;
        let mut queries = Vec::with_capacity(cfg.num_queries);
        for _ in 0..cfg.num_queries {
            let mut chosen: Option<QuerySpec> = None;
            for _ in 0..64 {
                let state = rng.gen_range(0..n);
                let location = network.position(state);
                let max_start = cfg.horizon.saturating_sub(cfg.interval_length.max(1) - 1);
                let start: Timestamp = if max_start > 0 { rng.gen_range(0..max_start) } else { 0 };
                let end = start + cfg.interval_length.max(1) - 1;
                if database.objects_covering(start, end).len() >= min_covering {
                    let times = (start..=end).collect();
                    chosen = Some(QuerySpec { location, times });
                    break;
                }
            }
            queries.push(chosen.unwrap_or_else(|| {
                let state = rng.gen_range(0..n);
                let start = 0;
                QuerySpec {
                    location: network.position(state),
                    times: (start..start + cfg.interval_length.max(1)).collect(),
                }
            }));
        }
        QueryWorkload { queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        Dataset::synthetic(
            &SyntheticNetworkConfig { num_states: 400, branching_factor: 8.0, seed: 5 },
            &ObjectWorkloadConfig {
                num_objects: 30,
                lifetime: 30,
                horizon: 100,
                observation_interval: 5,
                lag: 0.6,
                standing_fraction: 0.0,
                seed: 6,
            },
            1.0,
        )
    }

    #[test]
    fn synthetic_dataset_is_consistent() {
        let ds = small_dataset();
        assert_eq!(ds.database.len(), 30);
        assert_eq!(ds.ground_truth.len(), 30);
        for o in ds.database.objects() {
            let gt = ds.ground_truth_of(o.id()).expect("ground truth exists");
            assert!(gt.consistent_with(&o.observation_pairs()));
        }
        assert!(ds.database.shared_model().is_valid());
    }

    #[test]
    fn taxi_dataset_builds() {
        let ds = Dataset::taxi(
            &RoadNetworkConfig { grid_width: 15, grid_height: 15, ..Default::default() },
            &TaxiWorkloadConfig {
                num_objects: 20,
                lifetime: 24,
                horizon: 100,
                training_trips: 100,
                ..Default::default()
            },
        );
        assert_eq!(ds.database.len(), 20);
        assert_eq!(ds.network.num_states(), 225);
    }

    #[test]
    fn query_workload_respects_config() {
        let ds = small_dataset();
        let cfg = QueryWorkloadConfig { num_queries: 25, interval_length: 7, horizon: 100, seed: 9 };
        let wl = QueryWorkload::generate(&ds.network, &cfg);
        assert_eq!(wl.queries.len(), 25);
        for q in &wl.queries {
            assert_eq!(q.times.len(), 7);
            assert!(q.times.windows(2).all(|w| w[1] == w[0] + 1));
            assert!(*q.times.last().unwrap() < 100 + 7);
            assert!((0.0..=1.0).contains(&q.location.x));
        }
        // Deterministic in the seed.
        let wl2 = QueryWorkload::generate(&ds.network, &cfg);
        assert_eq!(wl.queries[0].times, wl2.queries[0].times);
    }

    #[test]
    fn covered_query_workload_hits_populated_intervals() {
        let ds = small_dataset();
        let cfg = QueryWorkloadConfig { num_queries: 10, interval_length: 5, horizon: 100, seed: 1 };
        let wl = QueryWorkload::generate_covered(&ds.network, &ds.database, &cfg, 3);
        for q in &wl.queries {
            let from = q.times[0];
            let to = *q.times.last().unwrap();
            assert!(
                ds.database.objects_covering(from, to).len() >= 3,
                "query interval [{from}, {to}] is not covered by 3 objects"
            );
        }
    }
}
