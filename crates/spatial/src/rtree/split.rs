//! The R*-tree topological split.
//!
//! When a node overflows, its entries are redistributed into two groups:
//!
//! 1. **Choose split axis.** For every axis, the entries are sorted by their
//!    lower and by their upper bound; for each of the `M - 2m + 2` legal
//!    distributions the sum of the two group margins is accumulated. The axis
//!    with the smallest total margin wins.
//! 2. **Choose split index.** Along the chosen axis, the distribution with
//!    the smallest overlap between the two group MBRs is chosen; ties are
//!    broken by the smallest combined area.
//!
//! The implementation is generic over the entry type via a `rect_of` accessor
//! so that the same code splits leaf entries and internal children.

use crate::rect::Rect;

/// Splits `entries` (which overflowed, i.e. `entries.len() == M + 1`) into two
/// groups according to the R* heuristic. Each group has at least
/// `min_entries` elements.
pub(super) fn split_entries<const D: usize, E>(
    mut entries: Vec<E>,
    min_entries: usize,
    rect_of: impl Fn(&E) -> Rect<D>,
) -> (Vec<E>, Vec<E>) {
    let total = entries.len();
    debug_assert!(total >= 2 * min_entries, "not enough entries to split");

    // --- Step 1: choose the split axis by minimum margin sum. ---
    let mut best_axis = 0usize;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        // Consider both the lower-bound and the upper-bound sort; the margin
        // sum of an axis is the sum over both sorts and all distributions.
        let mut margin_sum = 0.0;
        for sort_by_upper in [false, true] {
            sort_axis(&mut entries, axis, sort_by_upper, &rect_of);
            margin_sum += margin_sum_of_distributions(&entries, min_entries, &rect_of);
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // --- Step 2: choose the distribution on the best axis. ---
    let mut best: Option<(bool, usize, f64, f64)> = None; // (sort_by_upper, split_at, overlap, area)
    for sort_by_upper in [false, true] {
        sort_axis(&mut entries, best_axis, sort_by_upper, &rect_of);
        let prefix = prefix_mbrs(&entries, &rect_of);
        let suffix = suffix_mbrs(&entries, &rect_of);
        for split_at in min_entries..=(total - min_entries) {
            let left = prefix[split_at];
            let right = suffix[split_at];
            let overlap = left.overlap_area(&right);
            let area = left.area() + right.area();
            let better = match &best {
                None => true,
                Some((_, _, o, a)) => {
                    overlap < *o || (overlap == *o && area < *a)
                }
            };
            if better {
                best = Some((sort_by_upper, split_at, overlap, area));
            }
        }
    }

    let (sort_by_upper, split_at, _, _) = best.expect("at least one distribution exists");
    sort_axis(&mut entries, best_axis, sort_by_upper, &rect_of);
    let right = entries.split_off(split_at);
    (entries, right)
}

fn sort_axis<const D: usize, E>(
    entries: &mut [E],
    axis: usize,
    by_upper: bool,
    rect_of: &impl Fn(&E) -> Rect<D>,
) {
    entries.sort_by(|a, b| {
        let (ra, rb) = (rect_of(a), rect_of(b));
        let (ka, kb) = if by_upper {
            (ra.max[axis], rb.max[axis])
        } else {
            (ra.min[axis], rb.min[axis])
        };
        ka.total_cmp(&kb).then(ra.min[axis].total_cmp(&rb.min[axis]))
    });
}

/// `prefix[i]` is the MBR of `entries[..i]` (index 0 is the empty rect).
fn prefix_mbrs<const D: usize, E>(
    entries: &[E],
    rect_of: &impl Fn(&E) -> Rect<D>,
) -> Vec<Rect<D>> {
    let mut out = Vec::with_capacity(entries.len() + 1);
    let mut acc = Rect::empty();
    out.push(acc);
    for e in entries {
        acc.extend(&rect_of(e));
        out.push(acc);
    }
    out
}

/// `suffix[i]` is the MBR of `entries[i..]` (index `len` is the empty rect).
fn suffix_mbrs<const D: usize, E>(
    entries: &[E],
    rect_of: &impl Fn(&E) -> Rect<D>,
) -> Vec<Rect<D>> {
    let mut out = vec![Rect::empty(); entries.len() + 1];
    let mut acc = Rect::empty();
    for (i, e) in entries.iter().enumerate().rev() {
        acc.extend(&rect_of(e));
        out[i] = acc;
    }
    out
}

fn margin_sum_of_distributions<const D: usize, E>(
    entries: &[E],
    min_entries: usize,
    rect_of: &impl Fn(&E) -> Rect<D>,
) -> f64 {
    let total = entries.len();
    let prefix = prefix_mbrs(entries, rect_of);
    let suffix = suffix_mbrs(entries, rect_of);
    let mut sum = 0.0;
    for split_at in min_entries..=(total - min_entries) {
        sum += prefix[split_at].margin() + suffix[split_at].margin();
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect2;

    fn rects(coords: &[(f64, f64)]) -> Vec<Rect2> {
        coords.iter().map(|&(x, y)| Rect::new([x, y], [x + 1.0, y + 1.0])).collect()
    }

    #[test]
    fn split_respects_minimum_fill() {
        let entries = rects(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (10.0, 0.0), (11.0, 0.0)]);
        let (left, right) = split_entries(entries, 2, |r| *r);
        assert!(left.len() >= 2);
        assert!(right.len() >= 2);
        assert_eq!(left.len() + right.len(), 5);
    }

    #[test]
    fn split_separates_clusters() {
        // Two well-separated clusters along x must end up in different groups.
        let entries = rects(&[
            (0.0, 0.0),
            (0.5, 0.2),
            (1.0, 0.1),
            (100.0, 0.0),
            (100.5, 0.3),
            (101.0, 0.1),
        ]);
        let (left, right) = split_entries(entries, 2, |r| *r);
        let left_max_x = left.iter().map(|r| r.max[0]).fold(f64::NEG_INFINITY, f64::max);
        let right_min_x = right.iter().map(|r| r.min[0]).fold(f64::INFINITY, f64::min);
        let (lo, hi) = if left_max_x < right_min_x {
            (left_max_x, right_min_x)
        } else {
            let right_max_x = right.iter().map(|r| r.max[0]).fold(f64::NEG_INFINITY, f64::max);
            let left_min_x = left.iter().map(|r| r.min[0]).fold(f64::INFINITY, f64::min);
            (right_max_x, left_min_x)
        };
        assert!(lo < 50.0 && hi > 50.0, "clusters were not separated: {lo} {hi}");
    }

    #[test]
    fn split_chooses_axis_with_smaller_margin() {
        // Entries spread widely along y but tightly along x: the split should
        // partition along y, producing groups with disjoint y ranges.
        let entries = rects(&[(0.0, 0.0), (0.1, 10.0), (0.2, 20.0), (0.0, 30.0), (0.1, 40.0)]);
        let (left, right) = split_entries(entries, 2, |r| *r);
        let left_mbr = left.iter().fold(Rect2::empty(), |mut acc, r| {
            acc.extend(r);
            acc
        });
        let right_mbr = right.iter().fold(Rect2::empty(), |mut acc, r| {
            acc.extend(r);
            acc
        });
        assert_eq!(left_mbr.overlap_area(&right_mbr), 0.0);
    }
}
