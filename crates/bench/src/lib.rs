//! # ust-bench
//!
//! Experiment harness reproducing the evaluation section (Section 7) of
//! Niedermayer et al., PVLDB 7(3), 2013.
//!
//! Every figure of the paper has a corresponding binary in `src/bin/`
//! (`fig06_vary_states`, ..., `fig14_pcnn_vary_tau`). Each binary accepts
//!
//! * `--quick` — a few-second smoke configuration,
//! * `--paper-scale` — parameters close to the paper's original sizes (slow),
//! * `--json <path>` — additionally write the measured series as JSON.
//!
//! The default scale is a laptop-friendly reduction of the paper's setup; the
//! mapping is documented in `DESIGN.md` §3 and the measured outcomes in
//! `EXPERIMENTS.md`.
//!
//! The library part of this crate contains the reusable measurement routines
//! so that the Criterion micro-benchmarks (`benches/`) and the figure binaries
//! share one implementation.

pub mod args;
pub mod continuous;
pub mod datasets;
pub mod effectiveness;
pub mod efficiency;
pub mod errors;
pub mod ingest;
pub mod json;
pub mod perf;
pub mod report;
pub mod sampling_efficiency;
pub mod storecheck;
pub mod walcheck;

pub use args::{RunScale, RunSettings};
pub use report::{ExperimentReport, Row};
