//! The Apriori-style lattice of Algorithm 1 (PCτNN).
//!
//! The PCNN query asks, per object, for the timestamp subsets `T_i ⊆ T` on
//! which the object is a ∀-nearest-neighbor with probability at least `τ`.
//! The number of subsets is exponential, but the probability
//! `P∀NN(o, q, T_i)` is *anti-monotone*: if `T_j ⊆ T_i` then
//! `P∀NN(o, q, T_i) ≤ P∀NN(o, q, T_j)`. Algorithm 1 therefore explores the
//! subset lattice level by level exactly like the Apriori frequent-itemset
//! algorithm \[27\]: a `k`-subset is only generated (and validated) if all of
//! its `(k-1)`-subsets qualified.
//!
//! The validation step — estimating `P∀NN(o, q, T_k)` — uses the Monte-Carlo
//! machinery: for every sampled world the engine records the set of query
//! timestamps at which the object is a nearest neighbor (a
//! [`TimeMask`]), and the probability of a timestamp set is the fraction of
//! worlds whose mask contains it.

use rustc_hash::FxHashSet;
use ust_trajectory::TimeMask;

/// Configuration of the PCNN lattice expansion.
#[derive(Debug, Clone, Copy)]
pub struct PcnnConfig {
    /// Probability threshold `τ`.
    pub tau: f64,
    /// If set, only *maximal* qualifying sets are reported, i.e. sets that are
    /// not a subset of another qualifying set (the redundancy-reducing variant
    /// of Definition 3).
    pub maximal_only: bool,
}

impl PcnnConfig {
    /// Standard configuration: report all qualifying sets.
    pub fn new(tau: f64) -> Self {
        PcnnConfig { tau, maximal_only: false }
    }

    /// Report only maximal qualifying sets.
    pub fn maximal(tau: f64) -> Self {
        PcnnConfig { tau, maximal_only: true }
    }
}

/// Result of the lattice expansion for a single object.
#[derive(Debug, Clone)]
pub struct PcnnResult {
    /// Qualifying timestamp sets, each as sorted indices into the query's
    /// timestamp list, together with their estimated probability.
    pub sets: Vec<(Vec<usize>, f64)>,
    /// Number of candidate sets whose probability was evaluated (the number
    /// of validation steps of Algorithm 1).
    pub candidate_sets_evaluated: usize,
}

/// Estimates `P∀NN(o, q, T_k)` for the timestamp subset given by `indices`
/// (sorted indices into the query timestamps) from per-world membership masks.
pub fn subset_probability(world_masks: &[TimeMask], indices: &[usize]) -> f64 {
    if world_masks.is_empty() {
        return 0.0;
    }
    let num_times = world_masks[0].len();
    let subset = TimeMask::from_indices(num_times, indices.iter().copied());
    let hits = world_masks.iter().filter(|m| m.contains_all(&subset)).count();
    hits as f64 / world_masks.len() as f64
}

/// Runs Algorithm 1 for one object.
///
/// `world_masks` holds, for every sampled possible world, the set of query
/// timestamps (as indices `0..num_times`) at which the object was a nearest
/// neighbor. Returns all qualifying timestamp sets.
pub fn apriori_timesets(
    world_masks: &[TimeMask],
    num_times: usize,
    cfg: &PcnnConfig,
) -> PcnnResult {
    let mut evaluated = 0usize;
    let mut all_results: Vec<(Vec<usize>, f64)> = Vec::new();

    // L1: singleton timestamp sets (line 1 of Algorithm 1).
    let mut current_level: Vec<(Vec<usize>, f64)> = Vec::new();
    for i in 0..num_times {
        evaluated += 1;
        let p = subset_probability(world_masks, &[i]);
        if p >= cfg.tau {
            current_level.push((vec![i], p));
        }
    }
    all_results.extend(current_level.iter().cloned());

    // Lk from Lk-1 (lines 2-5).
    while current_level.len() > 1 {
        let prev_sets: FxHashSet<Vec<usize>> =
            current_level.iter().map(|(s, _)| s.clone()).collect();
        let mut next_level: Vec<(Vec<usize>, f64)> = Vec::new();
        let mut generated: FxHashSet<Vec<usize>> = FxHashSet::default();
        for a in 0..current_level.len() {
            for b in (a + 1)..current_level.len() {
                let (sa, _) = &current_level[a];
                let (sb, _) = &current_level[b];
                // Apriori join: both sets must agree on all but the last element.
                if sa[..sa.len() - 1] != sb[..sb.len() - 1] {
                    continue;
                }
                let mut joined = sa.clone();
                joined.push(*sb.last().expect("non-empty"));
                joined.sort_unstable();
                if !generated.insert(joined.clone()) {
                    continue;
                }
                // Prune: every (k-1)-subset must have qualified.
                let all_subsets_qualify = (0..joined.len()).all(|drop| {
                    let mut sub = joined.clone();
                    sub.remove(drop);
                    prev_sets.contains(&sub)
                });
                if !all_subsets_qualify {
                    continue;
                }
                evaluated += 1;
                let p = subset_probability(world_masks, &joined);
                if p >= cfg.tau {
                    next_level.push((joined, p));
                }
            }
        }
        if next_level.is_empty() {
            break;
        }
        all_results.extend(next_level.iter().cloned());
        current_level = next_level;
    }

    if cfg.maximal_only {
        all_results = keep_maximal(all_results);
    }
    PcnnResult { sets: all_results, candidate_sets_evaluated: evaluated }
}

/// Removes every set that is a proper subset of another qualifying set.
fn keep_maximal(sets: Vec<(Vec<usize>, f64)>) -> Vec<(Vec<usize>, f64)> {
    let mut keep = Vec::new();
    for (i, (s, p)) in sets.iter().enumerate() {
        let is_subsumed = sets.iter().enumerate().any(|(j, (other, _))| {
            i != j && other.len() > s.len() && s.iter().all(|x| other.contains(x))
        });
        if !is_subsumed {
            keep.push((s.clone(), *p));
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds world masks from explicit per-world index lists.
    fn masks(num_times: usize, worlds: &[&[usize]]) -> Vec<TimeMask> {
        worlds
            .iter()
            .map(|w| TimeMask::from_indices(num_times, w.iter().copied()))
            .collect()
    }

    #[test]
    fn subset_probability_counts_containing_worlds() {
        let m = masks(3, &[&[0, 1, 2], &[0, 1], &[2], &[]]);
        assert_eq!(subset_probability(&m, &[0]), 0.5);
        assert_eq!(subset_probability(&m, &[0, 1]), 0.5);
        assert_eq!(subset_probability(&m, &[0, 1, 2]), 0.25);
        assert_eq!(subset_probability(&m, &[]), 1.0, "empty set is contained everywhere");
        assert_eq!(subset_probability(&[], &[0]), 0.0);
    }

    #[test]
    fn lattice_finds_all_qualifying_sets() {
        // Object is NN at {0,1} in 60% of worlds, at {2} in 40%, at all three
        // in 20%.
        let m = masks(
            3,
            &[
                &[0, 1, 2],
                &[0, 1, 2],
                &[0, 1],
                &[0, 1],
                &[0, 1],
                &[0, 1],
                &[2],
                &[2],
                &[],
                &[],
            ],
        );
        let result = apriori_timesets(&m, 3, &PcnnConfig::new(0.5));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0]));
        assert!(sets.contains(&vec![1]));
        assert!(sets.contains(&vec![0, 1]));
        assert!(!sets.contains(&vec![2]), "{{2}} has probability 0.4 < 0.5");
        assert!(!sets.contains(&vec![0, 1, 2]));
        // Probabilities attached to the sets are the world fractions.
        let p01 = result.sets.iter().find(|(s, _)| s == &vec![0, 1]).unwrap().1;
        assert!((p01 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn anti_monotonicity_prunes_supersets_without_evaluation() {
        // Only timestamp 0 ever qualifies; the lattice must stop after level 1
        // and evaluate exactly num_times candidate sets.
        let m = masks(4, &[&[0], &[0], &[0], &[1]]);
        let result = apriori_timesets(&m, 4, &PcnnConfig::new(0.5));
        assert_eq!(result.sets.len(), 1);
        assert_eq!(result.candidate_sets_evaluated, 4);
    }

    #[test]
    fn low_threshold_reaches_the_full_set() {
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2], &[0, 2]]);
        let result = apriori_timesets(&m, 3, &PcnnConfig::new(0.1));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0, 1, 2]));
        // All 7 non-empty subsets qualify at tau = 0.1.
        assert_eq!(sets.len(), 7);
    }

    #[test]
    fn maximal_only_removes_subsumed_sets() {
        let m = masks(3, &[&[0, 1, 2], &[0, 1, 2], &[0, 1, 2]]);
        let all = apriori_timesets(&m, 3, &PcnnConfig::new(0.5));
        assert_eq!(all.sets.len(), 7);
        let maximal = apriori_timesets(&m, 3, &PcnnConfig::maximal(0.5));
        assert_eq!(maximal.sets.len(), 1);
        assert_eq!(maximal.sets[0].0, vec![0, 1, 2]);
    }

    #[test]
    fn qualifying_sets_need_not_be_contiguous() {
        // NN at times 0 and 2 but never at 1: the qualifying pair is {0, 2}.
        let m = masks(3, &[&[0, 2], &[0, 2], &[0, 1]]);
        let result = apriori_timesets(&m, 3, &PcnnConfig::new(0.6));
        let sets: Vec<Vec<usize>> = result.sets.iter().map(|(s, _)| s.clone()).collect();
        assert!(sets.contains(&vec![0, 2]));
        assert!(!sets.contains(&vec![0, 1]));
    }

    #[test]
    fn empty_or_degenerate_inputs() {
        let result = apriori_timesets(&[], 3, &PcnnConfig::new(0.5));
        assert!(result.sets.is_empty());
        let m = masks(1, &[&[0], &[]]);
        let result = apriori_timesets(&m, 1, &PcnnConfig::new(0.5));
        assert_eq!(result.sets.len(), 1);
    }
}
