//! Simulated taxi data — the substitute for the paper's Beijing T-Drive setup.
//!
//! The paper's "real data" experiments (Figures 9 and 12) use GPS logs of
//! Beijing taxis, map-matched onto a reduced OpenStreetMap graph (68 902
//! states), with a shared transition matrix "extracted by aggregating the
//! turning probabilities at crossroads" and a time discretisation of one tic
//! per 10 seconds. We do not have that proprietary pipeline; DESIGN.md §4
//! documents the substitution implemented here:
//!
//! * a **city road network**: a jittered grid of crossings with a few random
//!   street removals (so the graph is irregular like a real road network),
//! * a **learned transition matrix**: training trips are simulated between
//!   waypoints whose distribution is biased towards the city centre (taxi
//!   density in Beijing is "more dense close to the city center"), and turning
//!   counts at crossings are aggregated exactly as the paper describes,
//! * **heterogeneous motion**: a configurable fraction of taxis stand still,
//!   the rest follow shortest paths with lag, so that "there are taxis
//!   standing still, and taxis moving quite fast".
//!
//! The output has the same shape as the paper's real dataset: a state graph,
//! one shared Markov model, uncertain objects with every `l`-th position kept
//! as an observation, and the discarded positions kept as ground truth.

use crate::network::Network;
use crate::network::PathFinder;
use crate::objects::{generate_object_with, GeneratedObject, ObjectWorkloadConfig};
use crate::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;
use std::sync::Arc;
use ust_markov::MarkovModel;
use ust_spatial::{Point, StateId, StateSpace};
use ust_trajectory::ObjectId;

/// Configuration of the simulated city road network.
#[derive(Debug, Clone, Copy)]
pub struct RoadNetworkConfig {
    /// Number of crossing columns.
    pub grid_width: usize,
    /// Number of crossing rows.
    pub grid_height: usize,
    /// Standard deviation of the positional jitter applied to every crossing,
    /// as a fraction of the block size.
    pub jitter: f64,
    /// Fraction of street segments removed to make the network irregular.
    pub removal_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        RoadNetworkConfig {
            grid_width: 140,
            grid_height: 140,
            jitter: 0.2,
            removal_fraction: 0.08,
            seed: 0,
        }
    }
}

impl RoadNetworkConfig {
    /// Number of crossings the generated network will have.
    pub fn num_states(&self) -> usize {
        self.grid_width * self.grid_height
    }

    /// Generates the road network.
    pub fn generate(&self) -> Network {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let w = self.grid_width;
        let h = self.grid_height;
        let block_x = 1.0 / w.max(1) as f64;
        let block_y = 1.0 / h.max(1) as f64;
        let mut points = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let jx = (rng.gen::<f64>() - 0.5) * 2.0 * self.jitter * block_x;
                let jy = (rng.gen::<f64>() - 0.5) * 2.0 * self.jitter * block_y;
                points.push(Point::new(
                    (x as f64 + 0.5) * block_x + jx,
                    (y as f64 + 0.5) * block_y + jy,
                ));
            }
        }
        let id = |x: usize, y: usize| (y * w + x) as StateId;
        let mut edges: Vec<(StateId, StateId)> = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        // Remove a fraction of streets, but keep the network connected enough
        // for trips: never isolate a crossing completely.
        let mut degree = vec![0usize; w * h];
        for &(a, b) in &edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let kept: Vec<(StateId, StateId)> = edges
            .into_iter()
            .filter(|&(a, b)| {
                let remove = rng.gen::<f64>() < self.removal_fraction
                    && degree[a as usize] > 2
                    && degree[b as usize] > 2;
                if remove {
                    degree[a as usize] -= 1;
                    degree[b as usize] -= 1;
                }
                !remove
            })
            .collect();
        let space = Arc::new(StateSpace::from_points(points));
        Network::new(space, kept)
    }
}

/// Configuration of the simulated taxi workload on a road network.
#[derive(Debug, Clone, Copy)]
pub struct TaxiWorkloadConfig {
    /// Number of taxis (objects) in the database.
    pub num_objects: usize,
    /// Lifetime of each taxi trace in tics (capped at 100 in the paper).
    pub lifetime: u32,
    /// Database time horizon.
    pub horizon: Timestamp,
    /// Time between kept observations, in tics (the paper's `l = 8` default
    /// for the real-data experiment).
    pub observation_interval: u32,
    /// Lag parameter of taxi motion (see [`ObjectWorkloadConfig::lag`]).
    pub lag: f64,
    /// Fraction of standing taxis.
    pub standing_fraction: f64,
    /// Number of training trips used to learn the turning probabilities.
    pub training_trips: usize,
    /// Concentration of trip endpoints around the city centre: `0` means
    /// uniform, larger values concentrate trips more strongly.
    pub center_bias: f64,
    /// Laplace smoothing added to every turning count so the learned model
    /// supports the full road graph.
    pub smoothing: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaxiWorkloadConfig {
    fn default() -> Self {
        TaxiWorkloadConfig {
            num_objects: 1_000,
            lifetime: 100,
            horizon: 1_000,
            observation_interval: 8,
            lag: 0.6,
            standing_fraction: 0.1,
            training_trips: 2_000,
            center_bias: 2.0,
            smoothing: 0.05,
            seed: 0,
        }
    }
}

/// Learns a shared Markov model from simulated training trips by aggregating
/// turning counts at crossings (including waiting, i.e. self-loops).
pub fn learn_taxi_model(network: &Network, cfg: &TaxiWorkloadConfig) -> MarkovModel {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x7a71));
    let mut counts: FxHashMap<(StateId, StateId), f64> = FxHashMap::default();
    let mut finder = PathFinder::new(network);
    for _ in 0..cfg.training_trips {
        let from = sample_center_biased_state(network, cfg.center_bias, &mut rng);
        let to = sample_center_biased_state(network, cfg.center_bias, &mut rng);
        let Some(path) = finder.shortest_path(from, to) else { continue };
        for w in path.windows(2) {
            *counts.entry((w[0], w[1])).or_insert(0.0) += 1.0;
            // Occasional waiting at a crossing (traffic lights, congestion).
            if rng.gen::<f64>() < 0.15 {
                *counts.entry((w[0], w[0])).or_insert(0.0) += 1.0;
            }
        }
    }
    network.learned_model(&counts, cfg.smoothing)
}

/// Samples a state with density biased towards the centre of the map.
fn sample_center_biased_state(network: &Network, bias: f64, rng: &mut StdRng) -> StateId {
    let n = network.num_states() as StateId;
    if bias <= 0.0 {
        return rng.gen_range(0..n);
    }
    let center = Point::new(0.5, 0.5);
    // Rejection sampling: accept a uniformly drawn state with probability
    // exp(-bias * distance-to-centre²·8); fall back to uniform after a few
    // rejections so the loop always terminates.
    for _ in 0..32 {
        let s = rng.gen_range(0..n);
        let d2 = network.position(s).dist2(&center);
        if rng.gen::<f64>() < (-bias * 8.0 * d2).exp() {
            return s;
        }
    }
    rng.gen_range(0..n)
}

/// A complete simulated taxi dataset: the road network, the learned shared
/// model, and the generated taxi objects with ground truth.
#[derive(Debug, Clone)]
pub struct TaxiDataset {
    /// The road network.
    pub network: Network,
    /// The learned shared a-priori model.
    pub model: Arc<MarkovModel>,
    /// Generated taxis (uncertain objects + ground truth).
    pub objects: Vec<GeneratedObject>,
}

/// Generates the full simulated taxi dataset.
pub fn generate_taxi_dataset(
    road_cfg: &RoadNetworkConfig,
    taxi_cfg: &TaxiWorkloadConfig,
) -> TaxiDataset {
    let network = road_cfg.generate();
    let model = Arc::new(learn_taxi_model(&network, taxi_cfg));
    let obj_cfg = ObjectWorkloadConfig {
        num_objects: taxi_cfg.num_objects,
        lifetime: taxi_cfg.lifetime,
        horizon: taxi_cfg.horizon,
        observation_interval: taxi_cfg.observation_interval,
        lag: taxi_cfg.lag,
        standing_fraction: taxi_cfg.standing_fraction,
        seed: taxi_cfg.seed,
    };
    let mut rng = StdRng::seed_from_u64(taxi_cfg.seed.wrapping_add(1));
    let mut objects = Vec::with_capacity(taxi_cfg.num_objects);
    let mut finder = PathFinder::new(&network);
    for k in 0..taxi_cfg.num_objects {
        // Bias the taxis' starting areas towards the centre as well, so the
        // non-uniform density the paper mentions is reproduced.
        let start = sample_center_biased_state(&network, taxi_cfg.center_bias, &mut rng);
        let mut g = generate_object_with(&mut finder, &obj_cfg, k as ObjectId, &mut rng);
        // Re-anchor standing taxis at the biased start state to concentrate
        // them downtown; moving taxis keep their generated path.
        if g.object.observations().iter().all(|o| o.state == g.object.observations()[0].state) {
            let times: Vec<Timestamp> =
                g.object.observations().iter().map(|o| o.time).collect();
            let obs: Vec<(Timestamp, StateId)> = times.iter().map(|&t| (t, start)).collect();
            let object = ust_trajectory::UncertainObject::from_pairs(k as ObjectId, obs)
                .expect("strictly increasing");
            let gt = ust_trajectory::Trajectory::new(
                g.ground_truth.start(),
                vec![start; g.ground_truth.len()],
            );
            g = GeneratedObject { object, ground_truth: gt };
        }
        objects.push(g);
    }
    TaxiDataset { network, model, objects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::AdaptedModel;

    fn small_road_cfg() -> RoadNetworkConfig {
        RoadNetworkConfig { grid_width: 20, grid_height: 20, jitter: 0.2, removal_fraction: 0.05, seed: 3 }
    }

    fn small_taxi_cfg() -> TaxiWorkloadConfig {
        TaxiWorkloadConfig {
            num_objects: 30,
            lifetime: 40,
            horizon: 200,
            observation_interval: 8,
            training_trips: 200,
            ..Default::default()
        }
    }

    #[test]
    fn road_network_shape() {
        let cfg = small_road_cfg();
        let net = cfg.generate();
        assert_eq!(net.num_states(), cfg.num_states());
        // A 20x20 grid has 760 street segments; some are removed.
        assert!(net.num_edges() > 600 && net.num_edges() <= 760, "edges {}", net.num_edges());
        // No isolated crossings.
        for s in 0..net.num_states() as StateId {
            assert!(!net.neighbors(s).is_empty(), "crossing {s} is isolated");
        }
    }

    #[test]
    fn learned_model_is_valid_and_covers_the_graph() {
        let net = small_road_cfg().generate();
        let model = learn_taxi_model(&net, &small_taxi_cfg());
        assert!(model.is_valid());
        // Support covers every street out of every crossing (thanks to smoothing).
        for s in 0..net.num_states() as StateId {
            let m = model.matrix_at(0);
            for &(t, _) in net.neighbors(s) {
                assert!(m.get(s, t) > 0.0);
            }
            assert!(m.get(s, s) > 0.0, "waiting must be possible");
        }
    }

    #[test]
    fn center_bias_concentrates_samples() {
        let net = small_road_cfg().generate();
        let mut rng = StdRng::seed_from_u64(1);
        let center = Point::new(0.5, 0.5);
        let n = 400;
        let biased: f64 = (0..n)
            .map(|_| net.position(sample_center_biased_state(&net, 4.0, &mut rng)).dist(&center))
            .sum::<f64>()
            / n as f64;
        let uniform: f64 = (0..n)
            .map(|_| net.position(sample_center_biased_state(&net, 0.0, &mut rng)).dist(&center))
            .sum::<f64>()
            / n as f64;
        assert!(biased < uniform, "biased mean {biased} should be below uniform mean {uniform}");
    }

    #[test]
    fn taxi_dataset_objects_are_adaptable_under_the_learned_model() {
        let ds = generate_taxi_dataset(&small_road_cfg(), &small_taxi_cfg());
        assert_eq!(ds.objects.len(), 30);
        for g in &ds.objects {
            let adapted = AdaptedModel::build(ds.model.as_ref(), &g.object.observation_pairs());
            assert!(adapted.is_ok(), "taxi observations contradict the learned model");
            assert!(g.ground_truth.consistent_with(&g.object.observation_pairs()));
        }
    }

    #[test]
    fn dataset_contains_standing_and_moving_taxis() {
        let cfg = TaxiWorkloadConfig { standing_fraction: 0.3, ..small_taxi_cfg() };
        let ds = generate_taxi_dataset(&small_road_cfg(), &cfg);
        let standing = ds
            .objects
            .iter()
            .filter(|g| {
                let first = g.object.observations()[0].state;
                g.object.observations().iter().all(|o| o.state == first)
            })
            .count();
        assert!(standing > 0, "expected some standing taxis");
        assert!(standing < ds.objects.len(), "expected some moving taxis");
    }
}
