//! A minimal JSON value type, pretty-printer and parser.
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! (which need derive proc-macros) are not available — see `vendor/README.md`.
//! Experiment reports are the only thing this workspace serialises, and this
//! ~200-line module covers exactly that: construct a [`Json`] tree, render it
//! with [`Json::to_pretty`], and read one back with [`Json::parse`] (used by
//! tests to round-trip reports).
//!
//! Strings are escaped per RFC 8259; non-finite numbers serialise as `null`
//! (matching `serde_json`'s default behavior for `f64`).

use std::collections::BTreeSet;
use std::fmt;

/// A JSON document: null, boolean, number, string, array or object.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite double-precision number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Looks up a key in an object; returns [`Json::Null`] for missing keys
    /// or non-objects (mirroring `serde_json`'s indexing behavior).
    pub fn get(&self, key: &str) -> &Json {
        const NULL: Json = Json::Null;
        match self {
            Json::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Renders the document as pretty-printed JSON with two-space indents.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => write_number(out, *x),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Trailing non-whitespace input is an error.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty())
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Json {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without an exponent or trailing fraction.
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced by [`Json::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    /// Reads four hex digits starting at `start` as a code unit.
    fn read_hex4(&self, start: usize) -> Result<u32, ParseError> {
        self.bytes
            .get(start..start + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            if !seen.insert(key.clone()) {
                return Err(self.error(format!("duplicate object key `{key}`")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow immediately (RFC 8259 §7).
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                                let lo = self.read_hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                self.pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..=0xDFFF).contains(&hi) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::object([
            ("name", Json::String("fig 6 \"states\"".into())),
            ("count", Json::Number(3.0)),
            ("ratio", Json::Number(0.125)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "rows",
                Json::Array(vec![Json::object([("x", Json::Number(-1.5))]), Json::Array(vec![])]),
            ),
        ]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(*parsed.get("name"), "fig 6 \"states\"");
        assert_eq!(*parsed.get("count"), 3.0);
        assert_eq!(parsed.get("rows").as_array().unwrap().len(), 2);
        assert_eq!(*parsed.get("nope"), Json::Null);
    }

    #[test]
    fn escapes_control_characters() {
        let text = Json::String("a\tb\nc\u{1}".into()).to_pretty();
        assert_eq!(text, "\"a\\tb\\nc\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), Json::String("a\tb\nc\u{1}".into()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::String("\u{1F600}".into())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err()); // unpaired high
        assert!(Json::parse("\"\\ude00\"").is_err()); // unpaired low
        assert!(Json::parse("\"\\ud83dx\"").is_err()); // high not followed by \u
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Number(f64::NAN).to_pretty(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_pretty(), "null");
    }
}
