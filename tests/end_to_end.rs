//! End-to-end integration tests spanning the whole stack:
//! generator → trajectory database → UST-tree → model adaptation → sampling →
//! query semantics.

use pnnq::prelude::*;
use ust_core::exact::exact_pnn;
use ust_core::snapshot::{snapshot_exists_nn, snapshot_forall_nn};

/// A small but non-trivial synthetic dataset shared by the tests.
fn dataset() -> Dataset {
    Dataset::synthetic(
        &SyntheticNetworkConfig { num_states: 800, branching_factor: 8.0, seed: 42 },
        &ObjectWorkloadConfig {
            num_objects: 60,
            lifetime: 40,
            horizon: 120,
            observation_interval: 5,
            lag: 0.6,
            standing_fraction: 0.0,
            seed: 43,
        },
        1.0,
    )
}

fn covered_query(ds: &Dataset, seed: u64, len: u32) -> Query {
    let workload = QueryWorkload::generate_covered(
        &ds.network,
        &ds.database,
        &QueryWorkloadConfig { num_queries: 1, interval_length: len, horizon: 120, seed },
        3,
    );
    let spec = &workload.queries[0];
    Query::at_point(spec.location, spec.times.iter().copied()).unwrap()
}

#[test]
fn query_semantics_are_mutually_consistent() {
    let ds = dataset();
    let engine = QueryEngine::new(&ds.database, EngineConfig { num_samples: 800, seed: 1, ..Default::default() });
    let query = covered_query(&ds, 7, 8);

    let forall = engine.pforall_nn(&query, 0.0).unwrap();
    let exists = engine.pexists_nn(&query, 0.0).unwrap();

    // Every ∀-result is also an ∃-result with at least the same probability.
    for r in &forall.results {
        let pe = exists.probability_of(r.object);
        assert!(
            pe >= r.probability - 1e-9,
            "object {}: P∃NN {pe} < P∀NN {}",
            r.object,
            r.probability
        );
    }
    // ∀-probabilities sum to at most 1 + ties tolerance: at every timestamp at
    // most one object is strictly closest, ties are rare on continuous
    // coordinates, so the sum over disjoint ∀ events stays near or below 1.
    let sum_forall: f64 = forall.results.iter().map(|r| r.probability).sum();
    assert!(sum_forall <= 1.0 + 1e-6, "sum of P∀NN = {sum_forall}");
    // Filter statistics are coherent.
    assert!(forall.stats.candidates <= forall.stats.influencers);
    assert!(forall.stats.influencers <= ds.database.len());
}

#[test]
fn same_seed_gives_identical_results_and_different_seeds_agree_approximately() {
    let ds = dataset();
    let query = covered_query(&ds, 11, 6);
    let a = QueryEngine::new(&ds.database, EngineConfig { num_samples: 600, seed: 5, ..Default::default() })
        .pforall_nn(&query, 0.0)
        .unwrap();
    let b = QueryEngine::new(&ds.database, EngineConfig { num_samples: 600, seed: 5, ..Default::default() })
        .pforall_nn(&query, 0.0)
        .unwrap();
    assert_eq!(a.results.len(), b.results.len());
    for r in &a.results {
        assert_eq!(r.probability, b.probability_of(r.object), "same seed must be deterministic");
    }
    let c = QueryEngine::new(&ds.database, EngineConfig { num_samples: 4_000, seed: 99, ..Default::default() })
        .pforall_nn(&query, 0.0)
        .unwrap();
    for r in &a.results {
        assert!(
            (r.probability - c.probability_of(r.object)).abs() < 0.15,
            "different seeds should agree within Monte-Carlo error"
        );
    }
}

#[test]
fn index_and_full_scan_agree() {
    let ds = dataset();
    let query = covered_query(&ds, 13, 6);
    let with_index = QueryEngine::new(&ds.database, EngineConfig { num_samples: 1_500, seed: 2, ..Default::default() });
    let without_index = QueryEngine::new(
        &ds.database,
        EngineConfig { num_samples: 1_500, seed: 2, use_index: false, ..Default::default() },
    );
    let a = with_index.pexists_nn(&query, 0.02).unwrap();
    let b = without_index.pexists_nn(&query, 0.02).unwrap();
    // Pruning must not lose any result: every object reported by the full scan
    // with a comfortable margin above the threshold is also reported with the
    // index (and vice versa), with similar probabilities.
    for r in b.results.iter().filter(|r| r.probability > 0.1) {
        assert!(
            a.contains(r.object),
            "object {} (P = {}) lost by the indexed evaluation",
            r.object,
            r.probability
        );
        assert!((a.probability_of(r.object) - r.probability).abs() < 0.1);
    }
    for r in a.results.iter().filter(|r| r.probability > 0.1) {
        assert!(b.contains(r.object));
    }
}

#[test]
fn knn_generalisation_is_monotone_in_k() {
    let ds = dataset();
    let engine = QueryEngine::new(&ds.database, EngineConfig { num_samples: 800, seed: 3, ..Default::default() });
    let query = covered_query(&ds, 17, 5);
    let k1 = engine.pforall_knn(&query, 1, 0.0).unwrap();
    let k3 = engine.pforall_knn(&query, 3, 0.0).unwrap();
    // Being among the 3 nearest neighbors is implied by being the nearest
    // neighbor, so per-object probabilities can only grow with k.
    for r in &k1.results {
        assert!(
            k3.probability_of(r.object) >= r.probability - 0.05,
            "object {}: P∀3NN {} < P∀NN {}",
            r.object,
            k3.probability_of(r.object),
            r.probability
        );
    }
    // And k = 1 coincides with the plain NN query.
    let nn = engine.pforall_nn(&query, 0.0).unwrap();
    assert_eq!(nn.results.len(), k1.results.len());
    for r in &nn.results {
        assert_eq!(k1.probability_of(r.object), r.probability);
    }
}

#[test]
fn pcnn_sets_are_anti_monotone_and_contain_the_forall_results() {
    let ds = dataset();
    let engine = QueryEngine::new(&ds.database, EngineConfig { num_samples: 800, seed: 4, ..Default::default() });
    let query = covered_query(&ds, 19, 6);
    let tau = 0.3;
    let forall = engine.pforall_nn(&query, tau).unwrap();
    let pcnn = engine.pcnn(&query, tau).unwrap();
    // Every object qualifying for the full interval must appear in the PCNN
    // result with the full timestamp set.
    for r in &forall.results {
        let sets = pcnn.sets_of(r.object).expect("object must appear in the PCNN result");
        assert!(
            sets.iter().any(|(ts, _)| ts.len() == query.len()),
            "object {} qualifies for the whole interval but PCNN misses it",
            r.object
        );
    }
    // Anti-monotonicity: each reported superset's probability never exceeds
    // the probability of its subsets (checked pairwise within one object).
    for obj in &pcnn.results {
        for (set_a, p_a) in &obj.sets {
            for (set_b, p_b) in &obj.sets {
                if set_a.len() < set_b.len() && set_a.iter().all(|t| set_b.contains(t)) {
                    assert!(
                        p_b <= &(p_a + 1e-9),
                        "object {}: superset {:?} (P={p_b}) more likely than subset {:?} (P={p_a})",
                        obj.object,
                        set_b,
                        set_a
                    );
                }
            }
        }
    }
}

#[test]
fn sampling_agrees_with_exact_enumeration_on_a_restricted_instance() {
    // A deliberately small instance (short lifetimes, tight observation
    // spacing) so that exact possible-world enumeration is feasible; the
    // Monte-Carlo estimates must agree with the exact probabilities.
    let ds = Dataset::synthetic(
        &SyntheticNetworkConfig { num_states: 400, branching_factor: 6.0, seed: 77 },
        &ObjectWorkloadConfig {
            num_objects: 25,
            lifetime: 4,
            horizon: 20,
            observation_interval: 2,
            lag: 0.6,
            standing_fraction: 0.0,
            seed: 78,
        },
        1.0,
    );
    let engine = QueryEngine::new(&ds.database, EngineConfig { num_samples: 6_000, seed: 8, ..Default::default() });
    let workload = QueryWorkload::generate_covered(
        &ds.network,
        &ds.database,
        &QueryWorkloadConfig { num_queries: 1, interval_length: 3, horizon: 16, seed: 23 },
        2,
    );
    let spec = &workload.queries[0];
    let query = Query::at_point(spec.location, spec.times.iter().copied()).unwrap();
    let (_, influencers) = engine.filter(&query).unwrap();
    let models: Vec<_> = influencers
        .iter()
        .map(|&id| (id, engine.adapted_model(id).unwrap()))
        .collect();
    let exact = match exact_pnn(&models, ds.database.state_space(), &query, 2_000_000) {
        Ok(result) => result,
        Err(_) => return, // instance too large for exact enumeration: skip
    };
    let forall = engine.pforall_nn(&query, 0.0).unwrap();
    let exists = engine.pexists_nn(&query, 0.0).unwrap();
    for (&id, &p_exact) in &exact.forall {
        assert!(
            (forall.probability_of(id) - p_exact).abs() < 0.05,
            "P∀NN mismatch for object {id}: sampled {} vs exact {p_exact}",
            forall.probability_of(id)
        );
    }
    for (&id, &p_exact) in &exact.exists {
        assert!(
            (exists.probability_of(id) - p_exact).abs() < 0.05,
            "P∃NN mismatch for object {id}: sampled {} vs exact {p_exact}",
            exists.probability_of(id)
        );
    }
}

#[test]
fn snapshot_competitor_is_biased_in_the_documented_direction_on_average() {
    let ds = dataset();
    let engine = QueryEngine::new(&ds.database, EngineConfig { num_samples: 4_000, seed: 10, ..Default::default() });
    let query = covered_query(&ds, 29, 6);
    let (_, influencers) = engine.filter(&query).unwrap();
    let models: Vec<_> = influencers
        .iter()
        .map(|&id| (id, engine.adapted_model(id).unwrap()))
        .collect();
    let space = ds.database.state_space();
    let forall_sampled = engine.pforall_nn(&query, 0.0).unwrap();
    let exists_sampled = engine.pexists_nn(&query, 0.0).unwrap();
    let forall_snapshot = snapshot_forall_nn(&models, space, &query);
    let exists_snapshot = snapshot_exists_nn(&models, space, &query);
    let lookup = |v: &Vec<ObjectProbability>, id| {
        v.iter().find(|r| r.object == id).map(|r| r.probability).unwrap_or(0.0)
    };
    // Average over the reported objects: the snapshot ∀-estimate does not
    // exceed the sampled estimate, and the ∃-estimate does not fall below it
    // (allowing Monte-Carlo noise per object, hence the aggregate check).
    let mut forall_diff = 0.0;
    for r in &forall_sampled.results {
        forall_diff += lookup(&forall_snapshot, r.object) - r.probability;
    }
    let mut exists_diff = 0.0;
    for r in &exists_sampled.results {
        exists_diff += lookup(&exists_snapshot, r.object) - r.probability;
    }
    assert!(
        forall_diff <= 0.05 * forall_sampled.results.len().max(1) as f64,
        "snapshot ∀ estimates should underestimate on average (diff {forall_diff})"
    );
    assert!(
        exists_diff >= -0.05 * exists_sampled.results.len().max(1) as f64,
        "snapshot ∃ estimates should overestimate on average (diff {exists_diff})"
    );
}

#[test]
fn taxi_dataset_end_to_end() {
    let ds = Dataset::taxi(
        &RoadNetworkConfig { grid_width: 25, grid_height: 25, seed: 3, ..Default::default() },
        &TaxiWorkloadConfig {
            num_objects: 80,
            lifetime: 40,
            horizon: 150,
            observation_interval: 8,
            training_trips: 300,
            ..Default::default()
        },
    );
    let engine = QueryEngine::new(&ds.database, EngineConfig { num_samples: 500, seed: 6, ..Default::default() });
    let query = covered_query(&ds, 31, 6);
    let exists = engine.pexists_nn(&query, 0.0).unwrap();
    assert!(!exists.results.is_empty(), "some taxi must be a possible nearest neighbor");
    let forall = engine.pforall_nn(&query, 0.0).unwrap();
    let sum: f64 = forall.results.iter().map(|r| r.probability).sum();
    assert!(sum <= 1.0 + 1e-6);
    // UST-tree statistics: one diamond per observation segment.
    let tree = engine.index().expect("index enabled");
    let expected: usize = ds
        .database
        .objects()
        .iter()
        .map(|o| o.num_observations().saturating_sub(1).max(1))
        .sum();
    assert_eq!(tree.num_diamonds(), expected);
}
