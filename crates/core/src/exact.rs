//! Exact query evaluation by possible-world enumeration.
//!
//! Example 1 of the paper computes the query probabilities of the toy scenario
//! "by explicit consideration of all possible worlds". This module implements
//! exactly that: it enumerates, per object, every trajectory realisable under
//! its a-posteriori model together with its probability, forms the cartesian
//! product of the per-object trajectory sets, and sums the probabilities of
//! the worlds in which the query predicate holds.
//!
//! The cost is exponential in both the time horizon and the number of objects
//! (the paper proves P∃NN computation NP-hard, Section 4.1), so the engine
//! enforces an explicit budget. Its purpose is to provide ground truth for
//! unit/property tests and for the effectiveness study of Figure 11, where it
//! plays the role of the `REF` reference probabilities on small instances.

use crate::query::Query;
use crate::ObjectId;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use ust_markov::AdaptedModel;
use ust_spatial::StateSpace;
use ust_trajectory::{NnTimeProfile, TimeMask, Trajectory};

/// Errors of the exact engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactError {
    /// The number of possible trajectories of one object exceeded the budget.
    TooManyTrajectories {
        /// The offending object.
        object: ObjectId,
        /// The configured budget.
        limit: usize,
    },
    /// The total number of possible worlds exceeded the budget.
    TooManyWorlds {
        /// The configured budget.
        limit: usize,
    },
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::TooManyTrajectories { object, limit } => {
                write!(f, "object {object} has more than {limit} possible trajectories")
            }
            ExactError::TooManyWorlds { limit } => {
                write!(f, "more than {limit} possible worlds; use the sampling engine instead")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Exact query probabilities obtained from full possible-world enumeration.
#[derive(Debug, Clone, Default)]
pub struct ExactResult {
    /// `P∀NN(o, q, D, T)` (or the k-NN generalisation) per object.
    pub forall: FxHashMap<ObjectId, f64>,
    /// `P∃NN(o, q, D, T)` per object.
    pub exists: FxHashMap<ObjectId, f64>,
    /// Probability, per object and per subset of `T` (represented as a mask
    /// over the query timestamps), that the object is a NN at every timestamp
    /// of the subset. Only subsets with non-zero probability are stored.
    pub forall_subsets: FxHashMap<ObjectId, FxHashMap<TimeMask, f64>>,
    /// Number of possible worlds enumerated.
    pub worlds: usize,
}

impl ExactResult {
    /// `P∀NN` of an object (zero if it never qualifies).
    pub fn forall_of(&self, id: ObjectId) -> f64 {
        self.forall.get(&id).copied().unwrap_or(0.0)
    }

    /// `P∃NN` of an object (zero if it never qualifies).
    pub fn exists_of(&self, id: ObjectId) -> f64 {
        self.exists.get(&id).copied().unwrap_or(0.0)
    }

    /// Probability that the object is a NN at every timestamp of the subset
    /// given by indices into the query timestamp list.
    pub fn forall_subset_of(&self, id: ObjectId, num_times: usize, indices: &[usize]) -> f64 {
        let Some(per_subset) = self.forall_subsets.get(&id) else { return 0.0 };
        let target = TimeMask::from_indices(num_times, indices.iter().copied());
        per_subset
            .iter()
            .filter(|(mask, _)| mask.contains_all(&target))
            .map(|(_, p)| p)
            .sum()
    }
}

/// Enumerates every trajectory realisable under an adapted model, with its
/// conditional probability. Probabilities sum to one.
pub fn enumerate_trajectories(
    model: &AdaptedModel,
    limit: usize,
) -> Result<Vec<(Trajectory, f64)>, ExactError> {
    let start = model.start();
    let end = model.end();
    let first_state = model.observations()[0].1;
    let mut partial: Vec<(Vec<u32>, f64)> = vec![(vec![first_state], 1.0)];
    for t in start..end {
        let mut next: Vec<(Vec<u32>, f64)> = Vec::new();
        for (states, p) in &partial {
            let current = *states.last().expect("non-empty");
            let row = model
                .transition_row(t, current)
                .expect("reachable state has a transition row");
            for (s, w) in row.iter() {
                let mut ns = states.clone();
                ns.push(s);
                next.push((ns, p * w));
            }
        }
        partial = next;
        if partial.len() > limit {
            return Err(ExactError::TooManyTrajectories { object: 0, limit });
        }
    }
    Ok(partial
        .into_iter()
        .map(|(states, p)| (Trajectory::new(start, states), p))
        .collect())
}

/// Exhaustively evaluates the query over the given objects (each with its
/// adapted model) under k-NN semantics.
///
/// `limit` bounds both the per-object trajectory count and the total number of
/// possible worlds.
pub fn exact_pknn(
    models: &[(ObjectId, Arc<AdaptedModel>)],
    space: &StateSpace,
    query: &Query,
    k: usize,
    limit: usize,
) -> Result<ExactResult, ExactError> {
    // Enumerate per-object trajectory distributions.
    let mut per_object: Vec<(ObjectId, Vec<(Trajectory, f64)>)> = Vec::with_capacity(models.len());
    let mut total_worlds: f64 = 1.0;
    for (id, model) in models {
        let mut trajs = enumerate_trajectories(model, limit)
            .map_err(|_| ExactError::TooManyTrajectories { object: *id, limit })?;
        // Drop numerically impossible branches.
        trajs.retain(|(_, p)| *p > 0.0);
        total_worlds *= trajs.len().max(1) as f64;
        if total_worlds > limit as f64 {
            return Err(ExactError::TooManyWorlds { limit });
        }
        per_object.push((*id, trajs));
    }

    let times = query.times();
    let mut result = ExactResult::default();
    let mut indices = vec![0usize; per_object.len()];
    let mut worlds = 0usize;
    loop {
        // Build the current world.
        let mut world_prob = 1.0;
        let mut refs: Vec<(ObjectId, &Trajectory)> = Vec::with_capacity(per_object.len());
        for (slot, (id, trajs)) in per_object.iter().enumerate() {
            if trajs.is_empty() {
                continue;
            }
            let (tr, p) = &trajs[indices[slot]];
            world_prob *= p;
            refs.push((*id, tr));
        }
        worlds += 1;
        if world_prob > 0.0 {
            let profile = NnTimeProfile::compute_knn(&refs, space, times, |t| {
                query.position_at(t).expect("query validated by the caller")
            }, k);
            for (id, mask) in profile.iter() {
                if mask.all() {
                    *result.forall.entry(id).or_insert(0.0) += world_prob;
                }
                if mask.any() {
                    *result.exists.entry(id).or_insert(0.0) += world_prob;
                }
                *result
                    .forall_subsets
                    .entry(id)
                    .or_default()
                    .entry(mask.clone())
                    .or_insert(0.0) += world_prob;
            }
        }
        // Advance the mixed-radix counter.
        let mut slot = 0usize;
        loop {
            if slot == per_object.len() {
                result.worlds = worlds;
                return Ok(result);
            }
            if per_object[slot].1.is_empty() {
                slot += 1;
                continue;
            }
            indices[slot] += 1;
            if indices[slot] < per_object[slot].1.len() {
                break;
            }
            indices[slot] = 0;
            slot += 1;
        }
    }
}

/// Exhaustive evaluation under plain NN semantics (`k = 1`).
pub fn exact_pnn(
    models: &[(ObjectId, Arc<AdaptedModel>)],
    space: &StateSpace,
    query: &Query,
    limit: usize,
) -> Result<ExactResult, ExactError> {
    exact_pknn(models, space, query, 1, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::{CsrMatrix, MarkovModel};
    use ust_spatial::Point;

    /// Figure 1 of the paper. States s1..s4 = ids 0..3 at increasing distance
    /// from q. Object o1: observed at s2 at t=1, transitions
    /// s2 -> {s1 (0.5), s3 (0.5)}, s1 -> s1, s3 -> {s1 (0.5), s3 (0.5)}.
    /// Object o2: observed at s3 at t=1, transitions s3 -> {s2 (0.5), s4 (0.5)},
    /// s2 -> s2, s4 -> s4.
    fn figure1() -> (StateSpace, Vec<(ObjectId, Arc<AdaptedModel>)>, Query) {
        let space = StateSpace::from_points(vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(4.0, 0.0),
        ]);
        let o1_model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(3, 1.0)],
        ]));
        let o2_model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(1, 1.0)],
            vec![(1, 0.5), (3, 0.5)],
            vec![(3, 1.0)],
        ]));
        // Adapted models require a covering observation interval, so the
        // engine-facing models here span only the observed instant t = 1; the
        // full Figure 1 interval {1, 2, 3} is checked against the a-priori
        // chains in `figure1_reference_probabilities` below.
        let q = Query::at_point(Point::new(0.0, 0.0), vec![1]).unwrap();
        let a1 = Arc::new(AdaptedModel::build(&o1_model, &[(1, 1)]).unwrap());
        let a2 = Arc::new(AdaptedModel::build(&o2_model, &[(1, 2)]).unwrap());
        (space, vec![(1, a1), (2, a2)], q)
    }

    /// Enumerates the a-priori chain of an object from `(t_start, state)` for
    /// `t_end - t_start` steps. Returns (trajectory states, probability).
    fn enumerate_apriori(
        model: &MarkovModel,
        t_start: u32,
        t_end: u32,
        start_state: u32,
    ) -> Vec<(Vec<u32>, f64)> {
        let mut partial = vec![(vec![start_state], 1.0)];
        for t in t_start..t_end {
            let mut next = Vec::new();
            for (states, p) in &partial {
                let cur = *states.last().unwrap();
                for (s, w) in model.matrix_at(t).row_iter(cur) {
                    let mut ns = states.clone();
                    ns.push(s);
                    next.push((ns, p * w));
                }
            }
            partial = next;
        }
        partial
    }

    /// Computes the Figure 1 probabilities by brute force over the a-priori
    /// chains (the "possible worlds" listed in the paper) and checks the
    /// published numbers.
    #[test]
    fn figure1_reference_probabilities() {
        let (space, _, _) = figure1();
        let o1_model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(3, 1.0)],
        ]));
        let o2_model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(1, 1.0)],
            vec![(1, 0.5), (3, 0.5)],
            vec![(3, 1.0)],
        ]));
        let worlds1 = enumerate_apriori(&o1_model, 1, 3, 1);
        let worlds2 = enumerate_apriori(&o2_model, 1, 3, 2);
        assert_eq!(worlds1.len(), 3, "o1 has the 3 possible trajectories listed in the paper");
        assert_eq!(worlds2.len(), 2, "o2 has 2 possible trajectories");
        let q = Point::new(0.0, 0.0);
        let mut p_exists_o2 = 0.0;
        let mut p_forall_o1 = 0.0;
        for (tr1, p1) in &worlds1 {
            for (tr2, p2) in &worlds2 {
                let p = p1 * p2;
                // o2 closer than o1 at some t?
                let exists_o2 = (0..3).any(|i| {
                    space.position(tr2[i]).dist(&q) <= space.position(tr1[i]).dist(&q)
                });
                let forall_o1 = (0..3).all(|i| {
                    space.position(tr1[i]).dist(&q) <= space.position(tr2[i]).dist(&q)
                });
                if exists_o2 {
                    p_exists_o2 += p;
                }
                if forall_o1 {
                    p_forall_o1 += p;
                }
            }
        }
        assert!((p_exists_o2 - 0.25).abs() < 1e-12, "paper: P∃NN(o2) = 0.25, got {p_exists_o2}");
        assert!((p_forall_o1 - 0.75).abs() < 1e-12, "paper: P∀NN(o1) = 0.75, got {p_forall_o1}");
    }

    #[test]
    fn enumeration_of_adapted_models_sums_to_one() {
        let model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(3, 1.0)],
        ]));
        let adapted = AdaptedModel::build(&model, &[(0, 1), (4, 0)]).unwrap();
        let trajs = enumerate_trajectories(&adapted, 10_000).unwrap();
        let total: f64 = trajs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (tr, p) in &trajs {
            assert!(*p > 0.0);
            assert!(tr.consistent_with(adapted.observations()));
        }
    }

    #[test]
    fn exact_engine_on_single_timestamp_matches_hand_computation() {
        let (space, models, q) = figure1();
        let result = exact_pnn(&models, &space, &q, 10_000).unwrap();
        // At t=1 o1 is at s2 (distance 2) and o2 at s3 (distance 3).
        assert!((result.forall_of(1) - 1.0).abs() < 1e-12);
        assert!((result.exists_of(1) - 1.0).abs() < 1e-12);
        assert_eq!(result.forall_of(2), 0.0);
        assert_eq!(result.worlds, 1);
    }

    #[test]
    fn exact_knn_includes_both_objects_for_k2() {
        let (space, models, q) = figure1();
        let result = exact_pknn(&models, &space, &q, 2, 10_000).unwrap();
        assert!((result.forall_of(1) - 1.0).abs() < 1e-12);
        assert!((result.forall_of(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_violations_are_reported() {
        let (space, models, q) = figure1();
        let err = exact_pnn(&models, &space, &q, 0).unwrap_err();
        assert!(matches!(err, ExactError::TooManyWorlds { .. } | ExactError::TooManyTrajectories { .. }));
    }

    #[test]
    fn subset_probabilities_are_consistent_with_forall() {
        let space = StateSpace::from_points(vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(4.0, 0.0),
        ]);
        let model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(3, 1.0)],
        ]));
        let a1 = Arc::new(AdaptedModel::build(&model, &[(0, 1), (2, 0)]).unwrap());
        let a2 = Arc::new(AdaptedModel::build(&model, &[(0, 2), (2, 2)]).unwrap());
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0, 1, 2]).unwrap();
        let result = exact_pnn(&[(1, a1), (2, a2)], &space, &q, 100_000).unwrap();
        // The probability of covering the full timestamp set equals P∀NN.
        let full = result.forall_subset_of(1, 3, &[0, 1, 2]);
        assert!((full - result.forall_of(1)).abs() < 1e-12);
        // Subset probabilities are anti-monotone.
        let single = result.forall_subset_of(1, 3, &[1]);
        let pair = result.forall_subset_of(1, 3, &[1, 2]);
        assert!(single >= pair - 1e-12);
        assert!(pair >= full - 1e-12);
    }
}
