//! The `--store` round trip of the efficiency figures (fig06/fig08).
//!
//! At every sweep point the figure saves its freshly built engine state to a
//! derived path, cold-starts a *second* engine from the written file via
//! [`EngineStore`], re-runs the whole query workload on it and insists the
//! result digest is bit-identical to the fresh engine's. Store size and load
//! wall time land in the report meta next to the index-build time, so one
//! report answers "what does the store cost and what does it save" — the
//! load should be a few percent of the build it replaces.

use crate::efficiency::{measure_efficiency_on, EfficiencyOutcome};
use crate::errors::exit_failure;
use crate::report::ExperimentReport;
use ust_core::{EngineConfig, EngineStore, QueryEngine};
use ust_generator::QueryWorkload;

/// Derives the per-sweep-point store file from the `--store` base path:
/// `fig08.ustore` + `d1000` → `fig08-d1000.ustore` (a missing `.ustore`
/// suffix is appended).
pub fn store_point_path(base: &str, point: &str) -> String {
    let stem = base.strip_suffix(".ustore").unwrap_or(base);
    format!("{stem}-{point}.ustore")
}

/// Saves `engine`'s state to [`store_point_path`]`(base, point)`, cold-starts
/// an engine from the written store, re-measures the workload on it and
/// verifies the result digest matches the `fresh` measurement bit-for-bit.
/// Writes `store_bytes_<point>`, `store_sections_<point>` and
/// `store_load_seconds_<point>` into the report meta. Any failure — write,
/// load, or a digest mismatch — is fatal via [`exit_failure`].
#[allow(clippy::too_many_arguments)]
pub fn store_roundtrip_check(
    binary: &str,
    report: &mut ExperimentReport,
    base: &str,
    point: &str,
    engine: &QueryEngine<'_>,
    config: EngineConfig,
    workload: &QueryWorkload,
    fresh: &EfficiencyOutcome,
) {
    let path = store_point_path(base, point);
    let written = match engine.save_store(&path) {
        Ok(stats) => stats,
        Err(e) => exit_failure(binary, &format!("cannot write store {path}"), &e),
    };
    let store = match EngineStore::load(&path) {
        Ok(store) => store,
        Err(e) => exit_failure(binary, &format!("cannot load store {path}"), &e),
    };
    let cold = store.engine(config);
    let replay = measure_efficiency_on(&cold, workload);
    if replay.digest != fresh.digest {
        exit_failure(
            binary,
            &format!("store round trip at {path}"),
            &"cold-start result digest differs from the fresh engine",
        );
    }
    let load_seconds = store.stats().load_time.as_secs_f64();
    eprintln!(
        "[{binary}] store {path}: {} bytes, {} sections, loaded in {:.1} ms, digest verified",
        written.bytes,
        written.sections,
        load_seconds * 1e3,
    );
    report.set_meta(format!("store_bytes_{point}"), written.bytes as f64);
    report.set_meta(format!("store_sections_{point}"), written.sections as f64);
    report.set_meta(format!("store_load_seconds_{point}"), load_seconds);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_path_inserts_before_the_suffix() {
        assert_eq!(store_point_path("fig08.ustore", "d1000"), "fig08-d1000.ustore");
        assert_eq!(store_point_path("/tmp/fig06", "n2000"), "/tmp/fig06-n2000.ustore");
    }
}
