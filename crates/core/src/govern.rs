//! Query governance (DESIGN.md §8): budgets, cancellation and the
//! deterministic checkpoints that enforce them.
//!
//! Every query phase runs open-loop without this module — a runaway
//! Monte-Carlo loop or a pathological lattice expansion can only be stopped
//! by killing the process. A [`QueryBudget`] bounds one evaluation four ways:
//! a wall-clock **deadline**, a cooperative **cancel token**, and two
//! deterministic resource caps (**max_worlds**, **max_diamonds**). The engine
//! starts a [`BudgetGauge`] per evaluation and polls it at *checkpoints* —
//! every N iterations of each phase's hot loop, never per item — so the
//! disabled cost is a handful of branches per thousands of iterations.
//!
//! ## Degradation contract
//!
//! A breach does not always abort. The contract, phase by phase:
//!
//! * **Filter / adaptation** — nothing partial is usable (a truncated
//!   candidate set would silently change the result set), so a breach is a
//!   typed error: [`QueryError::DeadlineExceeded`] / [`QueryError::Cancelled`]
//!   / [`QueryError::BudgetExhausted`], each carrying the partial
//!   [`QueryStats`] gathered so far.
//! * **Sampling** — fewer worlds is a *coarser estimate*, not a wrong one
//!   (the Monte-Carlo bound of DESIGN.md §2 just widens): a deadline breach
//!   stops the world loop early and the outcome reports
//!   `worlds` < `worlds_requested` with `degraded: true`. `max_worlds`
//!   truncates the loop up front the same way.
//! * **PCNN mining** — the lattice is explored bottom-up, so stopping at a
//!   level keeps every already-validated set exact; a deadline breach ends
//!   the expansion and flags the outcome degraded (an under-approximation:
//!   sets that would have qualified deeper are missing, never wrong ones).
//! * **Cancellation** is always an error: the caller asked for the result to
//!   be thrown away, so there is nothing worth degrading toward.
//!
//! Budget errors are transient by construction (re-running with a fresh
//! deadline can succeed), so they are **never** cached by the adaptation
//! cache — see [`QueryError::is_transient`] and the `Failed`-slot rules in
//! [`crate::prepare`].

use crate::query::QueryError;
use crate::results::QueryStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Checkpoint spacing of the filter phase: the gauge is polled every this
/// many diamonds streamed out of the UST-tree.
pub const FILTER_CHECK_INTERVAL: usize = 256;

/// Checkpoint spacing of the sampling phase: the gauge is polled every this
/// many sampled worlds.
pub const WORLD_CHECK_INTERVAL: usize = 64;

/// Checkpoint spacing of the PCNN mining phase: the gauge is polled at every
/// lattice level and every this many validated candidates within a level.
pub const MINING_CHECK_INTERVAL: usize = 1024;

/// The query phase a budget checkpoint fired in, carried by the budget error
/// variants so callers know how far the evaluation got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPhase {
    /// UST-tree pruning (diamond streaming).
    Filter,
    /// Forward–backward model adaptation (the "TS" phase).
    Adaptation,
    /// Monte-Carlo world sampling.
    Sampling,
    /// PCNN lattice expansion.
    Mining,
}

impl std::fmt::Display for QueryPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            QueryPhase::Filter => "filter",
            QueryPhase::Adaptation => "adaptation",
            QueryPhase::Sampling => "sampling",
            QueryPhase::Mining => "mining",
        };
        f.write_str(name)
    }
}

/// A cooperative cancellation handle. Clones share one flag; any clone can
/// cancel, and every gauge holding a clone observes it at its next
/// checkpoint. Cancellation is sticky — there is deliberately no `reset`.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Running queries observe it at their next
    /// budget checkpoint and return [`QueryError::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Bounds one query evaluation. The default is unlimited — identical to the
/// pre-governance engine. Carried in
/// [`EngineConfig::budget`](crate::EngineConfig) or passed per call via the
/// `*_with_budget` entry points.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Wall-clock deadline, measured from the start of the evaluation. A
    /// zero deadline trips deterministically at the query-start checkpoint.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token.
    pub cancel: Option<CancelToken>,
    /// Upper bound on sampled worlds. Capping below the configured
    /// `num_samples` degrades the estimate (see the module docs), it does
    /// not error.
    pub max_worlds: Option<usize>,
    /// Upper bound on diamonds streamed by the filter phase. Exceeding it is
    /// [`QueryError::BudgetExhausted`]: a partial filter pass is unusable.
    pub max_diamonds: Option<usize>,
}

impl QueryBudget {
    /// The unlimited budget (identical to [`QueryBudget::default`]).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Sets the wall-clock deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`with_deadline`](Self::with_deadline) in milliseconds, for flag
    /// plumbing.
    #[must_use]
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Attaches a cancellation token (builder style). The token is cloned;
    /// the caller keeps the original to call [`CancelToken::cancel`] on.
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Caps the number of sampled worlds (builder style).
    #[must_use]
    pub fn with_max_worlds(mut self, max_worlds: usize) -> Self {
        self.max_worlds = Some(max_worlds);
        self
    }

    /// Caps the number of diamonds the filter phase may stream (builder
    /// style).
    #[must_use]
    pub fn with_max_diamonds(mut self, max_diamonds: usize) -> Self {
        self.max_diamonds = Some(max_diamonds);
        self
    }

    /// Whether this budget can never trip (no deadline, no token, no caps).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.cancel.is_none()
            && self.max_worlds.is_none()
            && self.max_diamonds.is_none()
    }

    /// Starts the per-evaluation gauge: the deadline clock begins now.
    pub fn start(&self) -> BudgetGauge {
        BudgetGauge {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            max_worlds: self.max_worlds,
            max_diamonds: self.max_diamonds,
            started: Instant::now(),
            checkpoints: AtomicU64::new(0),
        }
    }
}

/// What a soft checkpoint ([`BudgetGauge::probe`]) decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No breach: keep going.
    Continue,
    /// The deadline passed. Phases with a degradation semantics stop early
    /// and flag the outcome; the others convert this to
    /// [`QueryError::DeadlineExceeded`] via [`BudgetGauge::check`].
    Degrade,
}

/// The live measurement of one evaluation against its [`QueryBudget`]:
/// the deadline clock, the shared cancel flag and the checkpoint counter.
/// Shared by reference across the phase fan-outs (it is `Sync`); the
/// checkpoint counter is the only mutable state and is atomic.
#[derive(Debug)]
pub struct BudgetGauge {
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    max_worlds: Option<usize>,
    max_diamonds: Option<usize>,
    started: Instant,
    checkpoints: AtomicU64,
}

impl BudgetGauge {
    /// A soft checkpoint: cancellation is a typed error, a passed deadline
    /// is [`Verdict::Degrade`] (the caller decides what that means for its
    /// phase), anything else continues. The comparison is `elapsed >=
    /// deadline`, so a zero deadline trips deterministically at the very
    /// first checkpoint regardless of clock resolution.
    pub fn probe(&self, phase: QueryPhase) -> Result<Verdict, QueryError> {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(QueryError::Cancelled { phase, stats: self.partial_stats() });
            }
        }
        if let Some(deadline) = self.deadline {
            if self.elapsed() >= deadline {
                return Ok(Verdict::Degrade);
            }
        }
        Ok(Verdict::Continue)
    }

    /// A hard checkpoint: like [`probe`](Self::probe), but a passed deadline
    /// is [`QueryError::DeadlineExceeded`] — for phases where a partial
    /// result is unusable (filter, adaptation).
    pub fn check(&self, phase: QueryPhase) -> Result<(), QueryError> {
        match self.probe(phase)? {
            Verdict::Continue => Ok(()),
            Verdict::Degrade => {
                Err(QueryError::DeadlineExceeded { phase, stats: self.partial_stats() })
            }
        }
    }

    /// Builds the typed error for a blown resource cap.
    pub fn exhausted(&self, phase: QueryPhase, resource: &'static str, limit: usize) -> QueryError {
        QueryError::BudgetExhausted { phase, resource, limit, stats: self.partial_stats() }
    }

    /// Wall-clock time since [`QueryBudget::start`].
    pub fn elapsed(&self) -> Duration {
        // lint T001 waiver (lint.toml): the deadline clock is governance
        // observability; it bounds wall time but never feeds result bytes.
        self.started.elapsed()
    }

    /// Number of checkpoints polled so far. Under a parallel fan-out the
    /// exact interleaving varies, but every completed evaluation of the same
    /// query polls the same total.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// The world cap of the underlying budget, if any.
    pub fn max_worlds(&self) -> Option<usize> {
        self.max_worlds
    }

    /// The diamond cap of the underlying budget, if any.
    pub fn max_diamonds(&self) -> Option<usize> {
        self.max_diamonds
    }

    /// The seed of the partial stats every budget error carries: the
    /// checkpoint count is known here, everything else is filled in by the
    /// engine layer that owns those numbers.
    fn partial_stats(&self) -> Box<QueryStats> {
        Box::new(QueryStats {
            budget_checkpoints: self.checkpoints() as usize,
            ..QueryStats::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = QueryBudget::unlimited();
        assert!(budget.is_unlimited());
        let gauge = budget.start();
        for _ in 0..100 {
            assert_eq!(gauge.probe(QueryPhase::Sampling).unwrap(), Verdict::Continue);
        }
        assert!(gauge.check(QueryPhase::Filter).is_ok());
        assert_eq!(gauge.checkpoints(), 101);
        assert_eq!(gauge.max_worlds(), None);
        assert_eq!(gauge.max_diamonds(), None);
    }

    #[test]
    fn zero_deadline_trips_at_the_first_checkpoint() {
        let gauge = QueryBudget::unlimited().with_deadline(Duration::ZERO).start();
        let err = gauge.check(QueryPhase::Filter).unwrap_err();
        match err {
            QueryError::DeadlineExceeded { phase, stats } => {
                assert_eq!(phase, QueryPhase::Filter);
                assert_eq!(stats.budget_checkpoints, 1);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // Soft checkpoints degrade instead.
        assert_eq!(gauge.probe(QueryPhase::Sampling).unwrap(), Verdict::Degrade);
    }

    #[test]
    fn cancellation_beats_the_deadline_and_is_sticky() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let gauge = QueryBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_cancel(&token)
            .start();
        token.cancel();
        // Even with an already-expired deadline, cancellation wins: the
        // caller asked for the work to stop, not for a degraded result.
        let err = gauge.probe(QueryPhase::Mining).unwrap_err();
        assert!(matches!(err, QueryError::Cancelled { phase: QueryPhase::Mining, .. }));
        let clone = token.clone();
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn caps_are_carried_to_the_gauge() {
        let budget = QueryBudget::unlimited().with_max_worlds(128).with_max_diamonds(9);
        assert!(!budget.is_unlimited());
        let gauge = budget.start();
        assert_eq!(gauge.max_worlds(), Some(128));
        assert_eq!(gauge.max_diamonds(), Some(9));
        let err = gauge.exhausted(QueryPhase::Filter, "diamonds", 9);
        match err {
            QueryError::BudgetExhausted { phase, resource, limit, .. } => {
                assert_eq!(phase, QueryPhase::Filter);
                assert_eq!(resource, "diamonds");
                assert_eq!(limit, 9);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn deadline_ms_builder_and_display_names() {
        let budget = QueryBudget::unlimited().with_deadline_ms(5);
        assert_eq!(budget.deadline, Some(Duration::from_millis(5)));
        assert_eq!(QueryPhase::Filter.to_string(), "filter");
        assert_eq!(QueryPhase::Adaptation.to_string(), "adaptation");
        assert_eq!(QueryPhase::Sampling.to_string(), "sampling");
        assert_eq!(QueryPhase::Mining.to_string(), "mining");
    }
}
