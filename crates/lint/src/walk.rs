//! Deterministic workspace walker: collects the `.rs` files a check run
//! visits, in sorted order, with their workspace-relative paths.

use std::path::{Path, PathBuf};

use crate::config::{prefix_match, Config};

/// One file the checker will visit.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute (or root-joined) path for reading.
    pub abs: PathBuf,
    /// Workspace-relative, `/`-separated path for reporting and matching.
    pub rel: String,
    /// Whether the file lives under a `tests/`, `benches/`, `examples/` or
    /// `fixtures/` directory component (integration-test code).
    pub in_test_dir: bool,
}

/// Directory names never descended into, independent of configuration.
const ALWAYS_SKIP: [&str; 4] = [".git", "target", "vendor", "node_modules"];

/// Collects every `.rs` file under `root`, sorted by relative path, skipping
/// build output, vendored code and configured excludes.
pub fn collect(root: &Path, config: &Config) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let rel = relative(root, &path);
            if path.is_dir() {
                if ALWAYS_SKIP.contains(&name.as_str()) || excluded(config, &rel) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !excluded(config, &rel) {
                let in_test_dir = rel
                    .split('/')
                    .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"));
                out.push(SourceFile { abs: path, rel, in_test_dir });
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn excluded(config: &Config, rel: &str) -> bool {
    config.exclude.iter().any(|p| prefix_match(p, rel))
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_crate_deterministically() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect(root, &Config::default()).expect("walk");
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert!(rels.contains(&"src/walk.rs"));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "walk order must be sorted");
        let fixtures: Vec<_> = files.iter().filter(|f| f.rel.contains("fixtures")).collect();
        assert!(fixtures.iter().all(|f| f.in_test_dir));
    }
}
