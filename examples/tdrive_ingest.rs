//! End-to-end real-data ingestion: T-Drive CSV → map matching → PNN queries.
//!
//! The paper's real-data experiments run on Beijing T-Drive taxi logs
//! (`id,datetime,lon,lat` rows) map-matched onto a road graph and
//! discretised to one tic per 10 seconds. This example walks the whole
//! ingestion pipeline offline:
//!
//! 1. render a deterministic fixture in T-Drive format (in a real deployment
//!    this is the external file),
//! 2. stream-parse it with typed, line-numbered errors,
//! 3. snap the fixes onto the road network (nearest-state snap, tic
//!    discretisation, shortest-path gap interpolation),
//! 4. learn the shared transition matrix from the matched traces,
//! 5. answer a P∀NN query on the ingested database.
//!
//! Run with:
//! ```text
//! cargo run --release --example tdrive_ingest
//! ```

use pnnq::prelude::*;
use pnnq::generator::tdrive;
use std::sync::Arc;

fn main() {
    // A small city road network; the ingestion target.
    let road = RoadNetworkConfig { grid_width: 25, grid_height: 25, seed: 9, ..Default::default() };
    let network = road.generate();

    // --- 1. A T-Drive file. Here: taxis simulated on the same network and
    // rendered through the deterministic fixture writer (10 s per tic,
    // georeferenced to the half-degree Beijing frame), plus two malformed
    // rows a real log could contain.
    let taxis = TaxiWorkloadConfig {
        num_objects: 40,
        lifetime: 64,
        horizon: 200,
        observation_interval: 8,
        training_trips: 300,
        ..Default::default()
    };
    let simulated = Dataset::taxi(&road, &taxis);
    let frame = GeoFrame::beijing();
    let mut csv = tdrive::render_workload(
        simulated.database.state_space(),
        simulated.database.objects(),
        &frame,
        10,
        tdrive::parse_datetime("2008-02-02 13:30:00").unwrap(),
    );
    csv.push_str("oops,2008-02-02 13:30:00,116.2,39.7\n");
    csv.push_str("41,2008-02-31 13:30:00,116.2,39.7\n");

    // --- 2. Stream-parse. Malformed rows become typed errors, not aborts.
    let load = tdrive::parse_str(&csv);
    println!("parsed {} fixes from {} lines", load.fixes.len(), load.lines);
    for e in &load.errors {
        println!("  skipped malformed row — {e}");
    }

    // --- 3. Map-match onto the network.
    let cfg = MapMatchConfig { frame: Some(frame), ..Default::default() };
    let matched = map_match(&network, &load.fixes, &cfg);
    println!(
        "map-matched {} objects ({} fixes kept, {} dropped)",
        matched.stats.objects_matched,
        matched.stats.snapped,
        matched.stats.dropped_fixes()
    );

    // --- 4. Learn the shared model by aggregating turning counts over the
    // matched traces, then assemble the database.
    let model = Arc::new(learn_model_from_matches(&network, &matched.objects, 0.05));
    let database =
        TrajectoryDatabase::with_objects(network.space().clone(), model, matched.into_objects());
    let summary = database.summary();
    println!(
        "ingested database: {} objects, {} observations (mean {:.1}/object), horizon {:?}",
        summary.objects,
        summary.observations,
        summary.mean_observations(),
        summary.horizon
    );

    // --- 5. Query the ingested data, from the scene of one taxi's
    // mid-trace observation (the paper's witness-search scenario).
    let engine = QueryEngine::new(&database, EngineConfig::with_samples(2_000));
    let witness = &database.objects()[0];
    let anchor = witness.observations()[witness.num_observations() / 2];
    let location = database.state_space().position(anchor.state);
    let (_, to) = summary.horizon.expect("database is non-empty");
    let (from, until) = (anchor.time, (anchor.time + 3).min(to));
    let query = Query::at_point(location, from..=until).unwrap();
    let forall = engine.pforall_nn(&query, 0.05).expect("query succeeds");
    let exists = engine.pexists_nn(&query, 0.05).expect("query succeeds");
    println!(
        "queries over tics {}..={}: {} candidates, {} influencers",
        from, until, forall.stats.candidates, forall.stats.influencers
    );
    for (name, outcome) in [("P∀NN", &forall), ("P∃NN", &exists)] {
        println!("{name}: {} qualifying objects", outcome.results.len());
        for r in outcome.results.iter().take(5) {
            println!("  taxi {:>3} with probability {:.3}", r.object, r.probability);
        }
    }
}
