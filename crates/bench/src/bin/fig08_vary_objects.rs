//! Figure 8: P∀NNQ / P∃NNQ efficiency while varying the number of objects
//! `|D|` on synthetic data.
//!
//! Paper sweep: |D| ∈ {1k, 10k, 20k}. Default harness sweep: a proportional
//! reduction. Reported series: TS/FA/EX CPU times, |C(q)|/|I(q)|, the
//! UST-tree build time (`IDX`) and a thread-independent `digest` of the
//! result sets — CI runs this figure at `--build-threads 1` and
//! `--build-threads 2` and diffs the digests, witnessing that the sharded
//! index build changes no answer.
//!
//! `--store <base>` additionally exercises the on-disk store round trip at
//! every sweep point: the engine state is saved to `<base>-d<D>.ustore`, a
//! second engine is cold-started from the file and its result digest must
//! match the fresh engine's; store size and load time land in the meta.

use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::try_measure_efficiency_on;
use ust_bench::errors::exit_failure;
use ust_bench::storecheck::store_roundtrip_check;
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;
use ust_core::{EngineConfig, QueryEngine};

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig08_vary_objects");
    settings.reject_wal_flags("fig08_vary_objects");
    let budget = settings.query_budget();
    let params = ScaleParams::for_scale(settings.scale);
    // The paper's TS series is a *serial* adaptation time, so this figure
    // defaults to one TS worker for comparability across machines; parallel
    // adaptation is opt-in via `--threads N` (`0` = available parallelism),
    // recorded in the report meta. fig06 reports the serial/parallel split
    // explicitly. The index build defaults to available parallelism — it
    // produces a byte-identical index at every thread count.
    let threads = settings.adaptation_threads.map_or(1, resolve_adaptation_threads);
    let build_threads = settings.build_threads.unwrap_or(0);
    let sweep: Vec<usize> = match settings.scale {
        RunScale::Quick => vec![50, 100, 200],
        RunScale::Default => vec![250, 1_000, 4_000],
        RunScale::Paper => vec![1_000, 10_000, 20_000],
    };
    let mut report = ExperimentReport::new(
        "figure08_vary_objects",
        "Efficiency of P∀NNQ/P∃NNQ while varying the number of objects |D| on synthetic data \
         (paper: Figure 8; series TS/FA/EX in seconds, |C(q)|/|I(q)| in objects, IDX = UST-tree \
         build seconds, digest = thread-independent FNV-1a of the result sets)",
    )
    .with_meta("adaptation_threads", threads as f64)
    .with_meta("index_build_threads", ust_index::par::resolve_threads(build_threads) as f64);
    if let Some(ms) = settings.deadline_ms {
        report.set_meta("deadline_ms", ms as f64);
    }
    for d in sweep {
        eprintln!("[fig08] |D| = {d}");
        let dataset = build_synthetic(&params, params.num_states, params.branching, d, settings.seed);
        let queries = build_queries(&dataset, &params, settings.seed);
        let config = EngineConfig {
            num_samples: params.num_samples,
            seed: settings.seed,
            adaptation_threads: threads,
            index_build_threads: build_threads,
            ..Default::default()
        };
        let engine = QueryEngine::new(&dataset.database, config.clone());
        let build = *engine.index_build_stats().expect("filter step enabled");
        let m = match try_measure_efficiency_on(&engine, &queries, &budget) {
            Ok(m) => m,
            Err(error) => exit_failure("fig08_vary_objects", "query budget breached", &error),
        };
        report.set_meta(format!("budget_checkpoints_d{d}"), m.budget_checkpoints);
        report.set_meta(format!("worlds_sampled_d{d}"), m.worlds_sampled);
        report.set_meta(format!("worlds_requested_d{d}"), m.worlds_requested);
        report.set_meta(format!("degraded_queries_d{d}"), m.degraded_queries as f64);
        if let Some(base) = &settings.store_path {
            store_roundtrip_check(
                "fig08_vary_objects",
                &mut report,
                base,
                &format!("d{d}"),
                &engine,
                config,
                &queries,
                &m,
            );
        }
        report.set_meta(format!("index_build_seconds_d{d}"), build.build_time.as_secs_f64());
        report.set_meta(format!("index_diamonds_d{d}"), build.diamonds as f64);
        report.set_meta(format!("reach_memo_hits_d{d}"), build.reach_memo_hits as f64);
        report.push(
            Row::new(format!("|D|={d}"))
                .with("TS", m.ts_seconds)
                .with("FA", m.fa_seconds)
                .with("EX", m.ex_seconds)
                .with("|C(q)|", m.candidates)
                .with("|I(q)|", m.influencers)
                .with("IDX", build.build_time.as_secs_f64())
                // 53-bit truncation keeps the digest exactly representable as
                // an f64 series value.
                .with("digest", (m.digest & ((1 << 53) - 1)) as f64),
        );
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
