//! Compact bit sets over query timestamps.
//!
//! A probabilistic NN query is parameterised by a set of timestamps `T`
//! (Definitions 1–3). The sampling-based query engine records, for every
//! sampled possible world and every candidate object, *at which timestamps of
//! `T` the object is a nearest neighbor*. [`TimeMask`] stores that information
//! as a bit set indexed by position within `T`, which makes the aggregation of
//! `P∃NN` (any bit set), `P∀NN` (all bits set) and the Apriori lattice of the
//! PCNN query (subset containment) cheap bit operations.

/// A fixed-length bit set indexed by `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TimeMask {
    len: usize,
    words: Vec<u64>,
}

impl TimeMask {
    /// Creates an all-zero mask of the given length.
    pub fn new(len: usize) -> Self {
        TimeMask { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Creates an all-one mask of the given length.
    pub fn full(len: usize) -> Self {
        let mut m = Self::new(len);
        for i in 0..len {
            m.set(i);
        }
        m
    }

    /// Creates a mask with exactly the given indices set.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut m = Self::new(len);
        for i in indices {
            m.set(i);
        }
        m
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Whether all `len` bits are set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Whether every set bit of `other` is also set in `self`
    /// (i.e. `other ⊆ self`).
    pub fn contains_all(&self, other: &TimeMask) -> bool {
        debug_assert_eq!(self.len, other.len, "masks must have equal length");
        self.words.iter().zip(&other.words).all(|(&a, &b)| b & !a == 0)
    }

    /// Number of bits set in both `self` and `other` (`|self ∩ other|`),
    /// without materialising the intersection mask.
    pub fn intersection_count(&self, other: &TimeMask) -> usize {
        debug_assert_eq!(self.len, other.len, "masks must have equal length");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Indices of set bits, ascending. Iterates word-wise via
    /// [`iter_set_bits`], so sparse masks cost one iteration per *set* bit
    /// (plus one per word), not one per addressable bit.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        iter_set_bits(&self.words)
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &TimeMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &TimeMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }
}

/// Indices of the set bits of a raw `u64` bitset, ascending (bit 0 of
/// `words[0]` is index 0). The word-wise `trailing_zeros` loop shared by
/// [`TimeMask::iter_ones`] and the vertical PCNN world-set columns in
/// `ust-core`, which store worlds-per-timestamp bitsets as plain word slices.
pub fn iter_set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &word)| {
        std::iter::from_fn({
            let mut rest = word;
            move || {
                if rest == 0 {
                    None
                } else {
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(wi * 64 + bit)
                }
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut m = TimeMask::new(70);
        assert!(!m.get(0) && !m.get(69));
        m.set(0);
        m.set(69);
        assert!(m.get(0) && m.get(69));
        assert_eq!(m.count_ones(), 2);
        m.clear(0);
        assert!(!m.get(0));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn full_and_all_any() {
        let f = TimeMask::full(65);
        assert!(f.all());
        assert!(f.any());
        assert_eq!(f.count_ones(), 65);
        let e = TimeMask::new(65);
        assert!(!e.any());
        assert!(!e.all());
        let zero = TimeMask::new(0);
        assert!(zero.all(), "vacuous truth: an empty mask has all bits set");
        assert!(!zero.any());
    }

    #[test]
    fn subset_containment() {
        let big = TimeMask::from_indices(10, [1, 3, 5, 7]);
        let small = TimeMask::from_indices(10, [3, 7]);
        let other = TimeMask::from_indices(10, [3, 8]);
        assert!(big.contains_all(&small));
        assert!(!big.contains_all(&other));
        assert!(big.contains_all(&TimeMask::new(10)), "empty set is a subset of anything");
    }

    #[test]
    fn union_and_intersection() {
        let mut a = TimeMask::from_indices(8, [0, 1, 2]);
        let b = TimeMask::from_indices(8, [2, 3]);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut m = TimeMask::new(4);
        m.set(4);
    }

    #[test]
    fn word_wise_iter_ones_matches_bit_by_bit() {
        // Indices straddling word boundaries, including bit 63/64 and the tail.
        let indices = [0usize, 1, 7, 62, 63, 64, 65, 100, 129];
        let m = TimeMask::from_indices(130, indices.iter().copied());
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), indices);
        let reference: Vec<usize> = (0..m.len()).filter(|&i| m.get(i)).collect();
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), reference);
        assert!(TimeMask::new(130).iter_ones().next().is_none());
        let full = TimeMask::full(70);
        assert_eq!(full.iter_ones().count(), 70);
    }

    #[test]
    fn intersection_count_avoids_materialising_the_mask() {
        let a = TimeMask::from_indices(130, [0, 5, 63, 64, 100, 129]);
        let b = TimeMask::from_indices(130, [5, 63, 65, 129]);
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(b.intersection_count(&a), 3);
        let mut materialised = a.clone();
        materialised.intersect_with(&b);
        assert_eq!(a.intersection_count(&b), materialised.count_ones());
        assert_eq!(a.intersection_count(&TimeMask::new(130)), 0);
    }

    #[test]
    fn raw_word_iteration_matches_mask_iteration() {
        let indices = [3usize, 64, 65, 127, 128];
        let m = TimeMask::from_indices(129, indices.iter().copied());
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), indices);
        assert_eq!(iter_set_bits(&[0b1010, 0b1]).collect::<Vec<_>>(), vec![1, 3, 64]);
        assert!(iter_set_bits(&[]).next().is_none());
    }
}
