//! Deterministic, structure-aware byte mutation for fuzzing the load paths.
//!
//! The fuzz-smoke tests mutate *valid* store bytes (and valid T-Drive text)
//! rather than throwing pure noise at the decoders: noise dies at the magic
//! check, while mutants of valid input exercise the deep validation paths —
//! length frames, checksums, sortedness and range checks. The mutator is a
//! self-contained xorshift64* generator, so a failing mutation is pinned by
//! `(seed, iteration)` alone and reproduces exactly — no RNG crate, no
//! global state.

/// Deterministic byte mutator. Same seed, same call sequence → same mutants.
#[derive(Debug, Clone)]
pub struct Mutator {
    state: u64,
}

impl Mutator {
    /// Creates a mutator from a seed (a zero seed is remapped — xorshift has
    /// an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        Mutator { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw pseudo-random word (xorshift64*).
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (`n` must be non-zero).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Produces one mutant of `base` by applying 1–4 random mutation
    /// operators: bit flips, byte overwrites, truncation, chunk removal,
    /// chunk duplication, random insertion, and 8-byte little-endian
    /// scribbles (the shape of the format's length and count fields, which
    /// is where a decoder is most likely to over-trust the input).
    pub fn mutate(&mut self, base: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        let ops = 1 + self.below(4);
        for _ in 0..ops {
            if out.is_empty() {
                // Everything was truncated away; re-seed with a few bytes so
                // the remaining operators have something to chew on.
                out.extend((0..8).map(|_| self.next() as u8));
                continue;
            }
            match self.below(7) {
                0 => {
                    let i = self.below(out.len());
                    out[i] ^= 1 << self.below(8);
                }
                1 => {
                    let i = self.below(out.len());
                    out[i] = self.next() as u8;
                }
                2 => {
                    out.truncate(self.below(out.len() + 1));
                }
                3 => {
                    let from = self.below(out.len());
                    let len = 1 + self.below(out.len() - from);
                    out.drain(from..from + len);
                }
                4 => {
                    let from = self.below(out.len());
                    let len = 1 + self.below((out.len() - from).min(64));
                    let chunk: Vec<u8> = out[from..from + len].to_vec();
                    let at = self.below(out.len() + 1);
                    out.splice(at..at, chunk);
                }
                5 => {
                    let len = 1 + self.below(16);
                    let chunk: Vec<u8> = (0..len).map(|_| self.next() as u8).collect();
                    let at = self.below(out.len() + 1);
                    out.splice(at..at, chunk);
                }
                _ => {
                    if out.len() >= 8 {
                        let at = self.below(out.len() - 7);
                        // Huge counts and lengths are the interesting cases;
                        // bias toward them but keep small values in the mix.
                        let value = match self.below(4) {
                            0 => u64::MAX,
                            1 => u64::MAX / 2,
                            2 => self.next(),
                            _ => self.next() % 1024,
                        };
                        out[at..at + 8].copy_from_slice(&value.to_le_bytes());
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic() {
        let base: Vec<u8> = (0u8..=255).collect();
        let mut a = Mutator::new(42);
        let mut b = Mutator::new(42);
        for _ in 0..100 {
            assert_eq!(a.mutate(&base), b.mutate(&base));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let base: Vec<u8> = (0u8..=255).collect();
        let mut a = Mutator::new(1);
        let mut b = Mutator::new(2);
        let same = (0..32).filter(|_| a.mutate(&base) == b.mutate(&base)).count();
        assert!(same < 32, "two seeds should not produce identical streams");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut m = Mutator::new(0);
        let mutant = m.mutate(&[1, 2, 3, 4]);
        // The all-zero xorshift fixed point must be avoided.
        assert_ne!(m.state, 0);
        let _ = mutant;
    }

    #[test]
    fn empty_base_still_produces_mutants() {
        let mut m = Mutator::new(7);
        for _ in 0..50 {
            let _ = m.mutate(&[]);
        }
    }
}
