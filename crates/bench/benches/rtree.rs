//! Micro-benchmark: the R*-tree substrate (bulk loading, insertion, queries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ust_spatial::{RTree, Rect, Rect3};

fn random_boxes(n: usize, seed: u64) -> Vec<(Rect3, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>();
            let y = rng.gen::<f64>();
            let t = rng.gen::<f64>() * 1000.0;
            (Rect::new([x, y, t], [x + 0.01, y + 0.01, t + 10.0]), i)
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let boxes = random_boxes(20_000, 1);
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(10);
    group.bench_function("bulk_load_20k", |b| {
        b.iter_batched(|| boxes.clone(), RTree::bulk_load, BatchSize::LargeInput)
    });
    group.bench_function("insert_5k", |b| {
        b.iter_batched(
            || boxes[..5_000].to_vec(),
            |items| {
                let mut tree = RTree::with_capacity(32);
                for (r, i) in items {
                    tree.insert(r, i);
                }
                tree
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let tree = RTree::bulk_load(random_boxes(20_000, 2));
    let mut group = c.benchmark_group("rtree_query");
    group.bench_function("time_slice_query", |b| {
        let q = Rect::new([0.0, 0.0, 100.0], [1.0, 1.0, 110.0]);
        b.iter(|| tree.query_intersecting(&q).len())
    });
    group.bench_function("small_window_query", |b| {
        let q = Rect::new([0.4, 0.4, 0.0], [0.6, 0.6, 1000.0]);
        b.iter(|| tree.query_intersecting(&q).len())
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
