//! Offline, API-compatible subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! Only the pieces this workspace uses are provided: [`RwLock`] and [`Mutex`]
//! with `parking_lot`'s non-poisoning API (`lock()` / `read()` / `write()`
//! return guards directly, without a `Result`).
//!
//! The implementation simply wraps the `std::sync` primitives and recovers
//! from poisoning: the workspace holds locks only around small in-memory
//! cache operations that uphold their invariants even if a panic unwinds
//! mid-update, so continuing past poison is sound here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Re-export of the std guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Re-export of the std guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Re-export of the std guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value without locking
    /// (possible because `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
