//! Golden corpus of hostile store files. Every fixture under
//! `tests/data/stores/` is checked in and pinned to one exact typed
//! [`StoreError`] — a refactor that changes which error a corruption class
//! yields (or worse, panics) fails here, not in production.
//!
//! The fixtures derive from one deterministic database-only store (the
//! workload builder is fully seeded and the DATABASE section contains no
//! wall-clock data, so regeneration is byte-reproducible). To regenerate
//! after a deliberate format change:
//!
//! ```text
//! cargo test -p ust-persist --test hostile_corpus -- --ignored
//! ```

mod common;

use std::path::PathBuf;

use ust_persist::format::{fnv1a64, section, ByteWriter, FORMAT_VERSION, MAGIC};
use ust_persist::{decode_store, encode_store, StoreContents, StoreError};

/// Directory holding the checked-in fixtures.
fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/data/stores"))
}

/// Reads one fixture, with a pointer at the regen command when absent.
fn fixture(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {} ({e}); regenerate the corpus with \
             `cargo test -p ust-persist --test hostile_corpus -- --ignored`",
            path.display()
        )
    })
}

/// The deterministic base store every fixture derives from: database only —
/// the TREE section embeds build wall time, which would make the bytes
/// machine-dependent.
fn base_store() -> Vec<u8> {
    let w = common::build_workload(16, 3, 5, 11);
    encode_store(&StoreContents { database: &w.db, index: None, models: &[] })
}

/// Byte offset where the DATABASE payload starts in the base store:
/// magic (8) + version (4) + section count (4) + frame id (4) +
/// payload length (8) + checksum (8).
const PAYLOAD_OFFSET: usize = 36;

/// All hostile fixtures: file name, bytes, and the exact pinned error.
fn hostile_fixtures() -> Vec<(&'static str, Vec<u8>, StoreError)> {
    let base = base_store();

    let truncated_header = base[..6].to_vec();

    let mut bad_magic = base.clone();
    bad_magic[..8].copy_from_slice(b"NOTSTORE");

    let mut future_version = base.clone();
    future_version[8..12].copy_from_slice(&99u32.to_le_bytes());

    let mut checksum_flip = base.clone();
    let last = checksum_flip.len() - 1;
    checksum_flip[last] ^= 0x20;

    // A frame announcing far more payload than the container holds.
    let mut w = ByteWriter::new();
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(1);
    w.u32(section::DATABASE);
    w.u64(1 << 62);
    w.u64(0);
    let section_overflow = w.into_bytes();

    // The DATABASE payload cut off mid-structure, with the frame length and
    // checksum fixed up so the corruption reaches the codec layer instead of
    // the checksum gate.
    let cut = &base[PAYLOAD_OFFSET..PAYLOAD_OFFSET + 4];
    let mut w = ByteWriter::new();
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(1);
    w.u32(section::DATABASE);
    w.u64(cut.len() as u64);
    w.u64(fnv1a64(cut));
    w.bytes(cut);
    let truncated_body = w.into_bytes();

    vec![
        (
            "truncated_header.ustore",
            truncated_header,
            StoreError::Truncated { context: "store header" },
        ),
        ("bad_magic.ustore", bad_magic, StoreError::BadMagic),
        (
            "future_version.ustore",
            future_version,
            StoreError::UnsupportedVersion { found: 99 },
        ),
        (
            "checksum_flip.ustore",
            checksum_flip,
            StoreError::ChecksumMismatch { section: section::DATABASE },
        ),
        (
            "section_overflow.ustore",
            section_overflow,
            StoreError::SectionOverflow { section: section::DATABASE, length: 1 << 62 },
        ),
        (
            "truncated_body.ustore",
            truncated_body,
            StoreError::Truncated { context: "state space" },
        ),
    ]
}

#[test]
fn valid_fixture_decodes() {
    let loaded = decode_store(&fixture("valid_database_only.ustore")).expect("valid fixture");
    assert_eq!(loaded.stats.sections, 1);
    assert_eq!(loaded.stats.objects, 3);
    assert!(loaded.index.is_none());
    assert!(loaded.models.is_empty());
}

#[test]
fn every_hostile_fixture_yields_its_pinned_error() {
    for (name, _, expected) in hostile_fixtures() {
        let bytes = fixture(name);
        let err = decode_store(&bytes)
            .map(|_| ())
            .expect_err(&format!("{name} must not decode"));
        assert_eq!(err, expected, "fixture {name} drifted from its pinned error");
    }
}

#[test]
fn checked_in_fixtures_match_their_generators() {
    // The files on disk are the authority, but they must not silently drift
    // from the construction documented here.
    assert_eq!(
        fixture("valid_database_only.ustore"),
        base_store(),
        "valid fixture drifted; regenerate with -- --ignored"
    );
    for (name, bytes, _) in hostile_fixtures() {
        assert_eq!(fixture(name), bytes, "fixture {name} drifted; regenerate with -- --ignored");
    }
}

/// Writes the whole corpus. Run once (and re-check in the files) after a
/// deliberate format change; ignored in normal runs so the checked-in corpus
/// stays the authority.
#[test]
#[ignore = "writes the fixture corpus; run explicitly after a format change"]
fn regenerate_fixtures() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    std::fs::write(dir.join("valid_database_only.ustore"), base_store()).unwrap();
    for (name, bytes, expected) in hostile_fixtures() {
        // A regen that would pin a wrong expectation refuses to write.
        let err = decode_store(&bytes).map(|_| ()).expect_err(name);
        assert_eq!(err, expected, "generator for {name} does not yield its pinned error");
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}
