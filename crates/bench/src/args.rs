//! Minimal command-line handling shared by the figure binaries.

/// The scale at which an experiment is run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Smoke-test scale: seconds, shapes only roughly visible.
    Quick,
    /// Default scale: laptop-friendly reduction of the paper's setup.
    Default,
    /// Close to the paper's original parameters (slow).
    Paper,
}

/// Parsed command-line settings of a figure binary.
#[derive(Debug, Clone)]
pub struct RunSettings {
    /// Selected scale.
    pub scale: RunScale,
    /// Optional path to write the JSON report to.
    pub json_path: Option<String>,
    /// RNG seed override.
    pub seed: u64,
    /// Worker threads of the model-adaptation ("TS") phase: `None` if
    /// `--threads` was not given (each binary picks its own default — the
    /// paper-series figures default to serial, fig06/fig12 to auto),
    /// `Some(0)` = explicitly requested available parallelism, `Some(n)` = a
    /// fixed count.
    pub adaptation_threads: Option<usize>,
    /// Worker threads of the UST-tree build (filter-phase index): `None` if
    /// `--build-threads` was not given (binaries default to available
    /// parallelism — the built index is byte-identical at every count),
    /// `Some(0)` = explicitly requested available parallelism, `Some(n)` = a
    /// fixed count. `1` is the exact serial build.
    pub build_threads: Option<usize>,
    /// Path to a T-Drive-format CSV to ingest instead of generating the
    /// simulated workload. Only fig09 honours this; the other figure
    /// binaries reject it via [`RunSettings::reject_ingest_flags`].
    pub csv_path: Option<String>,
    /// Explicit object-count override for the sweep (fig09 only, like
    /// `--csv`). With `--csv`, requesting more objects than the file yields
    /// is a typed `UnknownObject` error.
    pub objects: Option<usize>,
    /// Base path for on-disk engine stores (fig06/fig08/fig09 only). Each
    /// sweep point saves its engine state to a derived path, immediately
    /// cold-starts a second engine from that store and cross-checks the
    /// result digests; the load wall time lands in the report meta. Binaries
    /// without store support reject it via
    /// [`RunSettings::reject_store_flag`].
    pub store_path: Option<String>,
    /// Incremental-ingest mode (fig09 only, requires `--csv` and `--store`):
    /// each sweep point holds back the tail observations of the ingested
    /// objects, saves a pre-append store, WAL-appends the held-back batch
    /// through [`ust_core::EngineStore::append_batch`], and cross-checks the
    /// recovered digest against a from-scratch engine over the full data.
    /// The store and its WAL are left on disk for `--wal-recover`. Binaries
    /// without WAL support reject it via [`RunSettings::reject_wal_flags`].
    pub wal: bool,
    /// Recovery half of the incremental-ingest smoke (fig09 only, requires
    /// `--csv` and `--store`): loads the store a previous `--wal` run left
    /// behind — replaying its WAL, in this (separate) process — and
    /// re-measures, proving the digests survive a cross-process recovery.
    pub wal_recover: bool,
    /// Per-query deadline in milliseconds (fig06/fig08/fig09 only). Each
    /// measured query runs under a [`ust_core::QueryBudget`] with this
    /// deadline; a breach during the filter or TS phase is a typed error that
    /// aborts the figure with exit code 2, a breach during sampling degrades
    /// (fewer worlds, recorded in the report meta). Binaries without budget
    /// support reject it via [`RunSettings::reject_deadline_flag`].
    pub deadline_ms: Option<u64>,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            scale: RunScale::Default,
            json_path: None,
            seed: 0,
            adaptation_threads: None,
            build_threads: None,
            csv_path: None,
            objects: None,
            store_path: None,
            wal: false,
            wal_recover: false,
            deadline_ms: None,
        }
    }
}

impl RunSettings {
    /// Parses `std::env::args()`. Unknown flags abort with a usage message.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Aborts with a usage error if the ingestion flags (`--csv`,
    /// `--objects`) were given to a binary that does not honour them — only
    /// `fig09_realdata_vary_objects` ingests real data, and silently running
    /// the simulated workload after the user pointed at a file would record
    /// results with wrong provenance.
    pub fn reject_ingest_flags(&self, binary: &str) {
        if self.csv_path.is_some() || self.objects.is_some() {
            usage_and_exit(&format!(
                "{binary} does not support --csv/--objects; only \
                 fig09_realdata_vary_objects ingests real data"
            ));
        }
    }

    /// Aborts with a usage error if `--store` was given to a binary that
    /// does not save/load engine stores — only fig06, fig08 and fig09
    /// exercise the persistence round trip, and silently ignoring the flag
    /// would let the user believe a store was written.
    pub fn reject_store_flag(&self, binary: &str) {
        if self.store_path.is_some() {
            usage_and_exit(&format!(
                "{binary} does not support --store; only fig06_vary_states, \
                 fig08_vary_objects and fig09_realdata_vary_objects exercise the \
                 on-disk store round trip"
            ));
        }
    }

    /// Aborts with a usage error if `--wal`/`--wal-recover` was given to a
    /// binary that does not run the incremental-ingest path — only
    /// fig09_realdata_vary_objects appends to a live store, and silently
    /// ignoring the flag would let the user believe the WAL was exercised.
    pub fn reject_wal_flags(&self, binary: &str) {
        if self.wal || self.wal_recover {
            usage_and_exit(&format!(
                "{binary} does not support --wal/--wal-recover; only \
                 fig09_realdata_vary_objects runs the incremental-ingest path"
            ));
        }
    }

    /// Aborts with a usage error if `--deadline-ms` was given to a binary
    /// that does not run its queries under a budget — only the efficiency
    /// figures (fig06/fig08/fig09) do, and silently ignoring the flag would
    /// let the user believe the reported timings were deadline-bounded.
    pub fn reject_deadline_flag(&self, binary: &str) {
        if self.deadline_ms.is_some() {
            usage_and_exit(&format!(
                "{binary} does not support --deadline-ms; only the efficiency figures \
                 (fig06/fig08/fig09) run queries under a budget"
            ));
        }
    }

    /// Aborts with a usage error unless the WAL flags form a runnable fig09
    /// mode: at most one of `--wal`/`--wal-recover` per process (the whole
    /// point is recovering in a *separate* process), each requiring `--csv`
    /// (the ingest data) and `--store` (the container the WAL rides along),
    /// and neither combined with `--deadline-ms` (a degraded run would
    /// change the digest baseline the ingest check compares against).
    pub fn validate_wal_mode(&self) {
        if !self.wal && !self.wal_recover {
            return;
        }
        if self.wal && self.wal_recover {
            usage_and_exit(
                "--wal and --wal-recover are mutually exclusive: run --wal, then \
                 --wal-recover as a second process over the same --store path",
            );
        }
        if self.csv_path.is_none() || self.store_path.is_none() {
            usage_and_exit("--wal/--wal-recover require both --csv and --store");
        }
        if self.deadline_ms.is_some() {
            usage_and_exit(
                "--wal/--wal-recover cannot run under --deadline-ms: a degraded run \
                 would invalidate the digest comparison",
            );
        }
    }

    /// The [`ust_core::QueryBudget`] the efficiency figures run each query
    /// under: deadline-only when `--deadline-ms` was given, unlimited
    /// otherwise.
    pub fn query_budget(&self) -> ust_core::QueryBudget {
        match self.deadline_ms {
            Some(ms) => ust_core::QueryBudget::default().with_deadline_ms(ms),
            None => ust_core::QueryBudget::default(),
        }
    }

    /// Parses an explicit argument list (used by tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut settings = RunSettings::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => settings.scale = RunScale::Quick,
                "--paper-scale" => settings.scale = RunScale::Paper,
                "--scale" => match iter.next().as_deref() {
                    Some("quick") => settings.scale = RunScale::Quick,
                    Some("default") => settings.scale = RunScale::Default,
                    Some("paper") => settings.scale = RunScale::Paper,
                    _ => usage_and_exit("--scale requires one of: quick, default, paper"),
                },
                "--json" => {
                    settings.json_path = iter.next();
                    if settings.json_path.is_none() {
                        usage_and_exit("--json requires a path argument");
                    }
                }
                "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                    Some(seed) => settings.seed = seed,
                    None => usage_and_exit("--seed requires an integer argument"),
                },
                "--threads" => match iter.next().and_then(|s| s.parse().ok()) {
                    Some(threads) => settings.adaptation_threads = Some(threads),
                    None => usage_and_exit("--threads requires an integer argument (0 = auto)"),
                },
                "--build-threads" => match iter.next().and_then(|s| s.parse().ok()) {
                    Some(threads) => settings.build_threads = Some(threads),
                    None => {
                        usage_and_exit("--build-threads requires an integer argument (0 = auto)")
                    }
                },
                "--csv" => {
                    settings.csv_path = iter.next();
                    if settings.csv_path.is_none() {
                        usage_and_exit("--csv requires a path argument");
                    }
                }
                "--objects" => match iter.next().and_then(|s| s.parse().ok()) {
                    Some(objects) => settings.objects = Some(objects),
                    None => usage_and_exit("--objects requires an integer argument"),
                },
                "--store" => {
                    settings.store_path = iter.next();
                    if settings.store_path.is_none() {
                        usage_and_exit("--store requires a path argument");
                    }
                }
                "--wal" => settings.wal = true,
                "--wal-recover" => settings.wal_recover = true,
                "--deadline-ms" => match iter.next().and_then(|s| s.parse().ok()) {
                    Some(ms) => settings.deadline_ms = Some(ms),
                    None => usage_and_exit(
                        "--deadline-ms requires an integer argument (milliseconds per query)",
                    ),
                },
                // `cargo bench` appends `--bench` to every harness = false
                // bench target (the `index_build` report bench parses these
                // settings); accept and ignore it.
                "--bench" => {}
                "--help" | "-h" => usage_and_exit(""),
                other => usage_and_exit(&format!("unknown argument: {other}")),
            }
        }
        settings
    }
}

fn usage_and_exit(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: <figure binary> [--quick | --paper-scale | --scale <quick|default|paper>] \
         [--seed N] [--threads N] [--build-threads N] [--json <path>] [--csv <path>] \
         [--objects N] [--store <path>] [--wal] [--wal-recover] [--deadline-ms N]"
    );
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunSettings {
        RunSettings::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_settings() {
        let s = parse(&[]);
        assert_eq!(s.scale, RunScale::Default);
        assert!(s.json_path.is_none());
        assert_eq!(s.seed, 0);
    }

    #[test]
    fn quick_and_paper_flags() {
        assert_eq!(parse(&["--quick"]).scale, RunScale::Quick);
        assert_eq!(parse(&["--paper-scale"]).scale, RunScale::Paper);
    }

    #[test]
    fn scale_flag_names_all_presets() {
        assert_eq!(parse(&["--scale", "quick"]).scale, RunScale::Quick);
        assert_eq!(parse(&["--scale", "default"]).scale, RunScale::Default);
        assert_eq!(parse(&["--scale", "paper"]).scale, RunScale::Paper);
    }

    #[test]
    fn build_threads_flag() {
        assert_eq!(parse(&["--build-threads", "2"]).build_threads, Some(2));
        assert_eq!(
            parse(&["--build-threads", "0"]).build_threads,
            Some(0),
            "an explicit 0 (= auto) is distinct from the flag being absent"
        );
        assert_eq!(parse(&[]).build_threads, None);
    }

    #[test]
    fn json_and_seed() {
        let s = parse(&["--json", "/tmp/out.json", "--seed", "42"]);
        assert_eq!(s.json_path.as_deref(), Some("/tmp/out.json"));
        assert_eq!(s.seed, 42);
        assert_eq!(s.adaptation_threads, None, "absent flag stays distinguishable");
    }

    #[test]
    fn csv_and_objects_flags() {
        let s = parse(&["--csv", "tests/data/tdrive_small.csv", "--objects", "4"]);
        assert_eq!(s.csv_path.as_deref(), Some("tests/data/tdrive_small.csv"));
        assert_eq!(s.objects, Some(4));
        let s = parse(&[]);
        assert_eq!(s.csv_path, None);
        assert_eq!(s.objects, None);
    }

    #[test]
    fn store_flag() {
        let s = parse(&["--store", "/tmp/fig08.ustore"]);
        assert_eq!(s.store_path.as_deref(), Some("/tmp/fig08.ustore"));
        assert_eq!(parse(&[]).store_path, None);
    }

    #[test]
    fn wal_flags() {
        let s = parse(&["--wal"]);
        assert!(s.wal);
        assert!(!s.wal_recover);
        let s = parse(&["--wal-recover"]);
        assert!(!s.wal);
        assert!(s.wal_recover);
        let s = parse(&[]);
        assert!(!s.wal && !s.wal_recover);
    }

    #[test]
    fn deadline_flag() {
        let s = parse(&["--deadline-ms", "250"]);
        assert_eq!(s.deadline_ms, Some(250));
        assert!(!s.query_budget().is_unlimited());
        let s = parse(&[]);
        assert_eq!(s.deadline_ms, None);
        assert!(s.query_budget().is_unlimited());
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse(&["--threads", "4"]).adaptation_threads, Some(4));
        assert_eq!(
            parse(&["--threads", "0"]).adaptation_threads,
            Some(0),
            "an explicit 0 (= auto) is distinct from the flag being absent"
        );
    }
}
