//! Uniform rendering of fatal and per-row errors across the figure binaries.
//!
//! Historically each binary formatted its own failures ad hoc. The `--store`
//! flag added a second error family (`ust_persist::StoreError`) next to the
//! loader's `ust_generator::LoadError`, so the rendering now lives in one
//! place: both families (and plain I/O errors) funnel through
//! [`exit_failure`], and the per-row skip report of the real-data binaries
//! through [`report_skipped_rows`].

use ust_generator::LoadError;

/// Renders a fatal error uniformly — `error: [<binary>] <what>: <error>` —
/// and exits with status 2, the failure convention of the harness. Works for
/// every error family a figure binary meets (`LoadError`, `StoreError`,
/// `QueryError`, `std::io::Error`): anything `Display`.
pub fn exit_failure(binary: &str, what: &str, error: &dyn std::fmt::Display) -> ! {
    eprintln!("error: [{binary}] {what}: {error}");
    std::process::exit(2);
}

/// Prints the typed, line-numbered load errors of an ingestion: the first few
/// verbatim, then a count — enough to diagnose a malformed file without
/// flooding the terminal on a million-row CSV.
pub fn report_skipped_rows(binary: &str, errors: &[LoadError]) {
    const SHOWN: usize = 5;
    for e in errors.iter().take(SHOWN) {
        eprintln!("[{binary}] skipped malformed row — {e}");
    }
    if errors.len() > SHOWN {
        eprintln!("[{binary}] ... and {} further malformed rows", errors.len() - SHOWN);
    }
}
