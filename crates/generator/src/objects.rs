//! Uncertain object generation (Section 7, "object creation").
//!
//! "To create observations of an object o, we sample a sequence of states and
//! compute the shortest paths between them, modeling the motion of o during
//! its whole lifetime (which we set to 100 steps by default). To add
//! uncertainty to the resulting path, every l-th node, l = i · v, v ∈ [0, 1],
//! of this trajectory is used as an observed state. i denotes the time between
//! consecutive observations and v denotes a lag parameter describing the extra
//! time that o requires due to deviation from the shortest path; the smaller
//! v, the more lag is introduced to o's motion. The resulting uncertain
//! trajectories were distributed over the database time horizon (default:
//! 1000 timestamps)."
//!
//! In addition to the uncertain object (its observations), the generator keeps
//! the full per-tic ground-truth trajectory; the discarded positions "serve as
//! ground truth for effectiveness experiments" (Figure 12).

use crate::network::{Network, PathFinder};
use crate::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ust_spatial::StateId;
use ust_trajectory::{ObjectId, Trajectory, UncertainObject};

/// Configuration of the uncertain-object workload.
#[derive(Debug, Clone, Copy)]
pub struct ObjectWorkloadConfig {
    /// Number of objects `|D|` (paper default: 10 000).
    pub num_objects: usize,
    /// Lifetime of every object in tics (paper default: 100).
    pub lifetime: u32,
    /// Database time horizon over which object lifetimes are distributed
    /// (paper default: 1 000).
    pub horizon: Timestamp,
    /// Time `i` between consecutive observations, in tics (paper default: 10,
    /// which yields 11 observations per object).
    pub observation_interval: u32,
    /// Lag parameter `v ∈ (0, 1]`: between two observations the object only
    /// advances `l = max(1, round(i · v))` nodes of its path (paper default
    /// for the effectiveness experiments: 0.2–1.0; we default to 0.5).
    pub lag: f64,
    /// Fraction of objects that do not move at all ("standing taxis" in the
    /// real-data discussion of Section 7.1). Zero for the synthetic setup.
    pub standing_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ObjectWorkloadConfig {
    fn default() -> Self {
        ObjectWorkloadConfig {
            num_objects: 1_000,
            lifetime: 100,
            horizon: 1_000,
            observation_interval: 10,
            lag: 0.5,
            standing_fraction: 0.0,
            seed: 0,
        }
    }
}

impl ObjectWorkloadConfig {
    /// The number of path nodes the object advances between two observations.
    pub fn nodes_per_interval(&self) -> usize {
        ((self.observation_interval as f64 * self.lag).round() as usize).max(1)
    }

    /// Number of observations each object receives.
    pub fn observations_per_object(&self) -> usize {
        (self.lifetime / self.observation_interval) as usize + 1
    }
}

/// One generated object: its uncertain (observation-only) representation plus
/// the per-tic ground truth it was derived from.
#[derive(Debug, Clone)]
pub struct GeneratedObject {
    /// The uncertain object stored in the database.
    pub object: UncertainObject,
    /// The true trajectory (one state per tic over the object's lifetime).
    pub ground_truth: Trajectory,
}

/// Generates `cfg.num_objects` uncertain objects moving on `network`.
///
/// Object ids are assigned consecutively starting at `first_id`.
pub fn generate_objects(
    network: &Network,
    cfg: &ObjectWorkloadConfig,
    first_id: ObjectId,
) -> Vec<GeneratedObject> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // One shared path finder: its epoch-stamped scratch makes the thousands
    // of waypoint-leg queries of a paper-scale workload allocation-free.
    let mut finder = PathFinder::new(network);
    (0..cfg.num_objects)
        .map(|k| generate_object_with(&mut finder, cfg, first_id + k as ObjectId, &mut rng))
        .collect()
}

/// Generates a single object with the given id.
pub fn generate_object(
    network: &Network,
    cfg: &ObjectWorkloadConfig,
    id: ObjectId,
    rng: &mut StdRng,
) -> GeneratedObject {
    generate_object_with(&mut PathFinder::new(network), cfg, id, rng)
}

/// [`generate_object`] over a caller-provided [`PathFinder`], so loops reuse
/// one search scratch across objects.
pub fn generate_object_with(
    finder: &mut PathFinder<'_>,
    cfg: &ObjectWorkloadConfig,
    id: ObjectId,
    rng: &mut StdRng,
) -> GeneratedObject {
    let num_obs = cfg.observations_per_object();
    let interval = cfg.observation_interval;
    let covered = (num_obs as u32 - 1) * interval;
    let start_time: Timestamp = if cfg.horizon > covered {
        rng.gen_range(0..=(cfg.horizon - covered))
    } else {
        0
    };

    let standing = rng.gen::<f64>() < cfg.standing_fraction;
    let l = if standing { 0 } else { cfg.nodes_per_interval() };
    let needed_nodes = (num_obs - 1) * l + 1;
    let path = random_path(finder, needed_nodes, rng);

    // Observations: every i tics, the object has advanced l path nodes.
    let observations: Vec<(Timestamp, StateId)> = (0..num_obs)
        .map(|k| (start_time + k as u32 * interval, path[(k * l).min(path.len() - 1)]))
        .collect();

    // Ground truth per tic: inside segment k the object moves one node per tic
    // for the first l tics and then waits at the segment's end node.
    let mut states: Vec<StateId> = Vec::with_capacity(covered as usize + 1);
    for tic in 0..=covered {
        let k = (tic / interval) as usize;
        let within = (tic % interval) as usize;
        let idx = if tic == covered {
            (num_obs - 1) * l
        } else {
            k * l + within.min(l)
        };
        states.push(path[idx.min(path.len() - 1)]);
    }

    let object = UncertainObject::from_pairs(id, observations)
        .expect("generated observations are strictly increasing");
    GeneratedObject { object, ground_truth: Trajectory::new(start_time, states) }
}

/// Builds a path of at least `needed` nodes by concatenating shortest paths
/// between uniformly sampled waypoint states ("we sample a sequence of states
/// and compute the shortest paths between them").
fn random_path(finder: &mut PathFinder<'_>, needed: usize, rng: &mut StdRng) -> Vec<StateId> {
    let n = finder.network().num_states() as StateId;
    let mut path: Vec<StateId> = vec![rng.gen_range(0..n)];
    let mut attempts = 0usize;
    while path.len() < needed && attempts < 64 {
        let target = rng.gen_range(0..n);
        let last = *path.last().expect("path is never empty");
        if target == last {
            attempts += 1;
            continue;
        }
        match finder.shortest_path(last, target) {
            Some(seg) if seg.len() > 1 => {
                path.extend_from_slice(&seg[1..]);
                attempts = 0;
            }
            _ => attempts += 1,
        }
    }
    // If the graph is too disconnected to build a long path, pad by waiting at
    // the final node (consistent with the self-loop in the derived model).
    while path.len() < needed {
        path.push(*path.last().expect("path is never empty"));
    }
    path.truncate(needed.max(1));
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticNetworkConfig;
    use ust_markov::AdaptedModel;

    fn network() -> Network {
        SyntheticNetworkConfig { num_states: 500, branching_factor: 8.0, seed: 11 }.generate()
    }

    fn config() -> ObjectWorkloadConfig {
        ObjectWorkloadConfig {
            num_objects: 20,
            lifetime: 40,
            horizon: 200,
            observation_interval: 5,
            lag: 0.6,
            standing_fraction: 0.0,
            seed: 99,
        }
    }

    #[test]
    fn derived_quantities() {
        let cfg = config();
        assert_eq!(cfg.nodes_per_interval(), 3);
        assert_eq!(cfg.observations_per_object(), 9);
        let paper = ObjectWorkloadConfig {
            num_objects: 10_000,
            lifetime: 100,
            observation_interval: 10,
            ..Default::default()
        };
        assert_eq!(paper.observations_per_object(), 11, "paper: 11 observations per object");
    }

    #[test]
    fn objects_have_expected_observation_layout() {
        let net = network();
        let cfg = config();
        let objs = generate_objects(&net, &cfg, 100);
        assert_eq!(objs.len(), 20);
        for (k, g) in objs.iter().enumerate() {
            assert_eq!(g.object.id(), 100 + k as ObjectId);
            assert_eq!(g.object.num_observations(), cfg.observations_per_object());
            let times: Vec<_> = g.object.observations().iter().map(|o| o.time).collect();
            for w in times.windows(2) {
                assert_eq!(w[1] - w[0], cfg.observation_interval);
            }
            assert!(g.object.last_time() <= cfg.horizon);
        }
    }

    #[test]
    fn ground_truth_is_consistent_with_observations() {
        let net = network();
        let cfg = config();
        for g in generate_objects(&net, &cfg, 0) {
            assert!(g.ground_truth.consistent_with(&g.object.observation_pairs()));
            assert_eq!(g.ground_truth.start(), g.object.first_time());
            assert_eq!(g.ground_truth.end(), g.object.last_time());
        }
    }

    #[test]
    fn ground_truth_moves_along_network_edges_or_waits() {
        let net = network();
        let cfg = config();
        for g in generate_objects(&net, &cfg, 0).into_iter().take(5) {
            for w in g.ground_truth.states().windows(2) {
                let stays = w[0] == w[1];
                let moves_on_edge = net.neighbors(w[0]).iter().any(|&(s, _)| s == w[1]);
                assert!(stays || moves_on_edge, "ground truth jumps between {} and {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn observations_are_consistent_with_the_derived_markov_model() {
        // The crucial compatibility property: the forward-backward adaptation
        // must succeed for every generated object.
        let net = network();
        let cfg = config();
        let model = net.distance_weighted_model(1.0);
        for g in generate_objects(&net, &cfg, 0) {
            let adapted = AdaptedModel::build(&model, &g.object.observation_pairs());
            assert!(adapted.is_ok(), "adaptation failed: {:?}", adapted.err());
        }
    }

    #[test]
    fn standing_objects_do_not_move() {
        let net = network();
        let cfg = ObjectWorkloadConfig { standing_fraction: 1.0, ..config() };
        for g in generate_objects(&net, &cfg, 0) {
            let first = g.object.observations()[0].state;
            assert!(g.object.observations().iter().all(|o| o.state == first));
            assert!(g.ground_truth.states().iter().all(|&s| s == first));
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let net = network();
        let cfg = config();
        let a = generate_objects(&net, &cfg, 0);
        let b = generate_objects(&net, &cfg, 0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.object.observation_pairs(), y.object.observation_pairs());
        }
    }
}
